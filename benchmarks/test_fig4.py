"""Benchmark: Figure 4 — ISP speedup vs significance threshold."""

import pytest

from repro.experiments import fig4
from repro.experiments.report import render_table

from conftest import FULL, emit

THRESHOLDS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9) if FULL else (0.0, 0.3, 0.7)


@pytest.mark.figure
@pytest.mark.parametrize(
    "workload", ["lr-criteo", "pmf-ml10m", "pmf-ml20m"]
)
def test_fig4_significance_sweep(benchmark, workload):
    rows = benchmark.pedantic(
        fig4.fig4_significance_sweep,
        kwargs={
            "workload_names": (workload,),
            "thresholds": THRESHOLDS,
            "n_workers": 24,
            "max_steps": 1200,
        },
        rounds=1, iterations=1,
    )
    emit(render_table(rows, f"Fig 4 ({workload}): normalized time vs v"))

    assert all(r["converged"] for r in rows)
    best = min(r["normalized_time"] for r in rows)
    if workload.startswith("pmf"):
        # PMF benefits substantially from ISP (paper: up to 3x on ML-20M).
        assert best <= 0.75, f"expected >=1.33x ISP speedup, got {1/best:.2f}x"
    else:
        # LR benefits at most mildly (paper: small gains).
        assert best >= 0.55, "LR should not enjoy PMF-sized ISP gains"
