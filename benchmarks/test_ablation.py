"""Benchmark: ablations of the design choices DESIGN.md calls out."""

import pytest

from repro.experiments import ablation
from repro.experiments.report import render_table

from conftest import emit


@pytest.mark.figure
def test_ablation_accumulation(benchmark):
    rows = benchmark.pedantic(
        ablation.ablation_accumulation, rounds=1, iterations=1
    )
    emit(render_table(rows, "Ablation: ISP accumulation vs drop vs top-k"))
    by = {r["filter"]: r for r in rows}
    # Accumulation must converge; dropping updates outright loses mass and
    # must not converge *faster* (in steps) than the conserving filter.
    assert by["isp (accumulate)"]["converged"]
    if by["drop (no accumulation)"]["converged"]:
        assert (
            by["drop (no accumulation)"]["steps"]
            >= by["isp (accumulate)"]["steps"] * 0.9
        )


@pytest.mark.figure
def test_ablation_knee_gate(benchmark):
    rows = benchmark.pedantic(ablation.ablation_knee_gate, rounds=1, iterations=1)
    emit(render_table(rows, "Ablation: knee-gated vs immediate scale-in"))
    by = {r["variant"]: r for r in rows}
    # Immediate scale-in starts evicting before the knee; it must not end
    # with more workers than the gated variant, and both must converge.
    assert by["immediate"]["workers_end"] <= by["knee-gated"]["workers_end"]
    assert all(r["converged"] for r in rows)


@pytest.mark.figure
def test_ablation_curve_family(benchmark):
    rows = benchmark.pedantic(
        ablation.ablation_curve_family, rounds=1, iterations=1
    )
    emit(render_table(rows, "Ablation: slow-curve family (Eq. 3 vs power law)"))
    assert all(r["converged"] for r in rows)
    # Both families must produce working schedulers (they may differ in
    # aggressiveness); neither should blow up cost by more than 2x.
    costs = [r["cost_usd"] for r in rows]
    assert max(costs) / min(costs) < 2.0


@pytest.mark.figure
def test_ablation_reintegration(benchmark):
    rows = benchmark.pedantic(
        ablation.ablation_reintegration, rounds=1, iterations=1
    )
    emit(render_table(rows, "Ablation: eviction-time model averaging"))
    assert all(r["converged"] for r in rows)


@pytest.mark.figure
def test_ablation_sync_protocol(benchmark):
    rows = benchmark.pedantic(
        ablation.ablation_sync_protocol, rounds=1, iterations=1
    )
    emit(render_table(rows, "Ablation: BSP barrier vs SSP staleness"))
    by = {r["sync"]: r for r in rows}
    assert all(r["converged"] for r in rows)
    # Relaxing the barrier must not make steps slower.
    assert by["ssp(s=4)"]["step_duration_s"] <= by["bsp"]["step_duration_s"]


@pytest.mark.figure
def test_ablation_knee_method(benchmark):
    rows = benchmark.pedantic(
        ablation.ablation_knee_method, rounds=1, iterations=1
    )
    emit(render_table(rows, "Ablation: slope heuristic vs Kneedle"))
    assert all(r["converged"] for r in rows)
    # Both detectors must let the tuner shrink the pool.
    assert all(r["workers_end"] < 16 for r in rows)
