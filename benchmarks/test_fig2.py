"""Benchmark: Figure 2 — training speed and curve-prediction accuracy."""

import pytest

from repro.experiments import fig2
from repro.experiments.report import render_table

from conftest import FULL, emit


@pytest.mark.figure
def test_fig2a_training_speed(benchmark):
    counts = (4, 8, 12, 16, 24) if FULL else (4, 8, 12)
    rows = benchmark.pedantic(
        fig2.fig2a_training_speed,
        kwargs={"worker_counts": counts, "max_steps": 40},
        rounds=1, iterations=1,
    )
    emit(render_table(rows, "Fig 2a: training speed vs workers"))
    # Shape: steps/s decreases monotonically with the worker count.
    speeds = [r["steps_per_s"] for r in rows]
    assert all(b < a for a, b in zip(speeds, speeds[1:]))


@pytest.mark.figure
def test_fig2b_reference_fit(benchmark):
    row = benchmark.pedantic(
        fig2.fig2b_reference_fit, kwargs={"max_steps": 200},
        rounds=1, iterations=1,
    )
    emit(render_table([row], "Fig 2b: reference curve fit (Eq. 2)"))
    # The fit must track the smoothed curve closely.
    assert row["fit_rmse"] < 0.02


@pytest.mark.figure
def test_fig2c_horizon_error(benchmark):
    rows = benchmark.pedantic(
        fig2.fig2c_horizon_error,
        kwargs={"max_steps": 320 if FULL else 280,
                "horizons": (50, 100, 150, 200) if FULL else (50, 100, 150)},
        rounds=1, iterations=1,
    )
    emit(render_table(rows, "Fig 2c: prediction error vs horizon"))
    assert rows, "no horizons evaluated"
    # Paper: both curve families stay under ~1.5% error up to 200 steps
    # ahead; the scaled-down runs are far noisier per step, so allow a
    # loose multiple for the decision-making (slow) curve.
    for row in rows:
        assert row["slow_curve_err_pct"] < 8.0


@pytest.mark.figure
def test_fig2d_error_vs_points(benchmark):
    rows = benchmark.pedantic(
        fig2.fig2d_error_vs_points,
        kwargs={"max_steps": 320 if FULL else 280},
        rounds=1, iterations=1,
    )
    emit(render_table(rows, "Fig 2d: slow-curve error vs fitting points"))
    assert rows
    # Shape: more fitting points should not make prediction much worse.
    assert rows[-1]["slow_curve_err_pct"] <= rows[0]["slow_curve_err_pct"] + 2.0
