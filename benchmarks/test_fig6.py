"""Benchmark: Figure 6 — loss vs time across all five systems."""

import pytest

from repro.experiments import fig6
from repro.experiments.report import render_series, render_table

from conftest import FULL, emit


@pytest.mark.figure
@pytest.mark.parametrize("workload", ["lr-criteo", "pmf-ml10m", "pmf-ml20m"])
def test_fig6_comparison(benchmark, workload):
    rows = benchmark.pedantic(
        fig6.fig6_comparison,
        kwargs={
            "workload_names": (workload,),
            "n_workers": 24,
            "max_steps": 1500,
            "pywren_step_cap": 40 if FULL else 25,
        },
        rounds=1, iterations=1,
    )
    emit(render_table(rows, f"Fig 6 ({workload}): time to deep target"))

    by_system = {r["system"]: r for r in rows}
    mll_best = min(
        by_system["mlless+isp"]["time_to_target_s"] or 1e18,
        by_system["mlless+all"]["time_to_target_s"] or 1e18,
    )
    serverful = by_system["serverful"]["time_to_target_s"]

    # Headline shape: optimized MLLess converges much faster than the
    # serverful baseline (paper: ~15x on PMF; large gaps on LR too).
    assert serverful is not None, "serverful must converge"
    assert mll_best < 1e18, "optimized MLLess must converge"
    speedup = serverful / mll_best
    if workload.startswith("pmf"):
        assert speedup >= 5.0, f"expected >=5x over serverful, got {speedup:.1f}x"
    else:
        assert speedup >= 2.0, f"expected >=2x over serverful, got {speedup:.1f}x"

    # PyWren is far from the target inside its window (the paper's curves
    # for PyWren-IBM stay well above every other system).
    assert by_system["pywren"]["time_to_target_s"] is None

    # Plain BSP MLLess sits between the optimized variants and serverful.
    bsp = by_system["mlless"]["time_to_target_s"]
    assert bsp is not None and mll_best <= bsp < serverful


@pytest.mark.figure
def test_fig6_loss_curves_printed(benchmark):
    """Emit the actual loss-vs-time series for one workload (plot data)."""
    results = benchmark.pedantic(
        fig6.run_all_systems,
        kwargs={"workload_name": "pmf-ml10m", "n_workers": 24,
                "max_steps": 1200, "pywren_step_cap": 20},
        rounds=1, iterations=1,
    )
    lines = []
    for system, result in results.items():
        times, losses = result.losses()
        lines.append(
            render_series(f"{system:>12}", times - result.started_at, losses)
        )
    emit("Fig 6 (pmf-ml10m) loss-vs-time series:\n" + "\n".join(lines))
    assert len(results) == 5
