"""Benchmark: Tables 1-3 of the paper."""

import pytest

from repro.experiments import tables
from repro.experiments.report import render_table

from conftest import FULL, emit


@pytest.mark.figure
def test_table1_settings(benchmark):
    rows = benchmark.pedantic(tables.table1_settings, rounds=1, iterations=1)
    emit(render_table(rows, "Table 1: models, datasets, settings"))
    assert {r["model"] for r in rows} == {"LogisticRegression", "PMF"}
    assert {r["optimizer"] for r in rows} == {"Adam", "MomentumSGD"}


@pytest.mark.figure
def test_table2_pricing(benchmark):
    rows = benchmark.pedantic(tables.table2_pricing, rounds=1, iterations=1)
    emit(render_table(rows, "Table 2: IBM Cloud pricing (us-east, Apr 2021)"))
    by_name = {r["instance"]: r for r in rows}
    assert by_name["C1.4x4"]["price"] == "0.15 $/hour"
    assert by_name["M1.2x16"]["price"] == "0.17 $/hour"
    assert by_name["B1.4x8"]["price"] == "0.2 $/hour"
    assert by_name["Functions"]["price"] == "3.4e-05 $/s"


@pytest.mark.figure
def test_table3_constant_global_batch(benchmark):
    counts = (12, 24, 48) if FULL else (12, 24)
    rows = benchmark.pedantic(
        tables.table3_constant_global_batch,
        kwargs={"worker_counts": counts},
        rounds=1, iterations=1,
    )
    emit(render_table(rows, "Table 3: LR exec time, constant global batch"))

    assert all(r["converged"] for r in rows)
    # Global batch is actually constant.
    globals_ = {r["global_batch"] for r in rows}
    assert len(globals_) == 1
    # The paper reports roughly flat times (437/395/426 s).  In this
    # reproduction the decentralized optimizer (average of per-worker
    # Adam steps) loses statistical efficiency at small per-worker
    # batches, so full flatness does not hold — a documented deviation
    # (EXPERIMENTS.md).  The qualitative claim that survives: doubling
    # the pool never blows execution time up the way a scalability
    # bottleneck would (no superlinear cliff).
    first, last = rows[0], rows[-1]
    pool_growth = last["workers"] / first["workers"]
    time_growth = last["exec_time_s"] / first["exec_time_s"]
    assert time_growth < 1.5 * pool_growth
