"""Benchmark: Figure 7 — convergence under fixed budgets; cost savings."""

import pytest

from repro.experiments import fig7
from repro.experiments.report import render_table

from conftest import FULL, emit

BUDGETS = (0.03, 0.06, 0.09, 0.15, 0.30) if FULL else (0.03, 0.09, 0.30)


@pytest.mark.figure
def test_fig7_budget_comparison(benchmark):
    rows = benchmark.pedantic(
        fig7.fig7_budget_comparison,
        kwargs={
            "workload_names": ("pmf-ml10m",),
            "budgets": BUDGETS,
            "n_workers": 24,
            "max_steps": 1500,
            "pywren_step_cap": 25,
        },
        rounds=1, iterations=1,
    )
    emit(render_table(rows, "Fig 7 (pmf-ml10m): best loss under fixed budgets"))

    # Per budget: 'mlless+all' reaches the best (or tied-best) loss among
    # systems that got any loss report at all — the paper's key claim.
    for budget in BUDGETS:
        at_budget = {
            r["system"]: r for r in rows if r["budget_usd"] == budget
        }
        losses = {
            s: r["best_loss"]
            for s, r in at_budget.items()
            if r["best_loss"] is not None
        }
        if "mlless+all" in losses and len(losses) > 1:
            best = min(losses.values())
            assert losses["mlless+all"] <= best + 0.02

    # Serverful VMs buy the most raw time per dollar (lower unit price).
    for budget in BUDGETS:
        at_budget = {r["system"]: r for r in rows if r["budget_usd"] == budget}
        assert (
            at_budget["serverful"]["affordable_time_s"]
            >= at_budget["mlless+all"]["affordable_time_s"]
        )


@pytest.mark.figure
def test_fig7_cost_savings_to_target(benchmark):
    rows = benchmark.pedantic(
        fig7.cheapest_to_target,
        kwargs={
            "workload_names": ("pmf-ml10m",) if not FULL else
            ("pmf-ml10m", "pmf-ml20m"),
            "n_workers": 24,
            "max_steps": 1500,
            "pywren_step_cap": 20,
        },
        rounds=1, iterations=1,
    )
    emit(render_table(rows, "Fig 7 companion: cost to reach deep target"))

    by = {(r["workload"], r["system"]): r for r in rows}
    for workload in {r["workload"] for r in rows}:
        best = by[(workload, "mlless+all")]["savings_vs_serverful"]
        isp = by[(workload, "mlless+isp")]["savings_vs_serverful"]
        top = max(v for v in (best, isp) if v is not None)
        # Paper: 4.9x-6.3x cheaper than PyTorch on the PMF jobs.
        assert top >= 3.0, f"expected >=3x cost savings, got {top}"
