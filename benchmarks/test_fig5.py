"""Benchmark: Figure 5 — scale-in auto-tuner Perf/$ and execution time."""

import pytest

from repro.experiments import fig5
from repro.experiments.report import render_table

from conftest import FULL, emit


@pytest.mark.figure
@pytest.mark.parametrize("workload", ["lr-criteo", "pmf-ml10m", "pmf-ml20m"])
def test_fig5_autotuner(benchmark, workload):
    rows = benchmark.pedantic(
        fig5.fig5_autotuner,
        kwargs={
            "workload_names": (workload,),
            "worker_counts": (12, 24) if FULL else (24,),
            "max_steps": 1500,
        },
        rounds=1, iterations=1,
    )
    emit(render_table(rows, f"Fig 5 ({workload}): auto-tuner effect"))

    for row in rows:
        # The tuner must actually shrink the pool...
        assert row["workers_end"] < row["workers"]
        # ...and never hurt cost-efficiency materially (the paper reports
        # 1.4x-1.6x gains; the scaled runs land lower but must be >= ~1).
        assert row["perf_per_$_gain"] >= 0.97
        # Execution time stays within the paper's observed band
        # (-10% .. +7.1% => allow a slightly wider margin).
        assert row["time_delta_pct"] <= 12.0
    # At least one setting shows a clear improvement.
    assert max(r["perf_per_$_gain"] for r in rows) >= 1.05
