"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper and prints
the rows/series it reports, so ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction artifact.  ``pytest-benchmark`` measures the
harness's real (wall-clock) runtime; the *simulated* results themselves
are printed.

Scale note: benchmarks default to a reduced-but-faithful scale (fewer
sweep points / steps than the full figures) so the whole suite finishes
in minutes.  Set ``REPRO_BENCH_SCALE=full`` for the full sweeps.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


def pytest_configure(config):
    config.addinivalue_line("markers", "figure: reproduces a paper figure")


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Tag everything under benchmarks/ so ``-m "not benchmark"`` skips it."""
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.benchmark)


@pytest.fixture(scope="session")
def bench_scale():
    return "full" if FULL else "quick"


def emit(text: str) -> None:
    """Print a rendered table so it lands in the benchmark output."""
    print()
    print(text)
