"""Benchmark: Figure 3 — thread-level parallelism inside a function."""

import pytest

from repro.experiments import fig3
from repro.experiments.report import render_table

from conftest import emit


@pytest.mark.figure
def test_fig3_thread_speedup(benchmark):
    rows = benchmark.pedantic(fig3.fig3_thread_speedup, rounds=1, iterations=1)
    emit(render_table(rows, "Fig 3: 2-thread speedup vs function memory"))

    by_memory = {r["memory_mb"]: r["speedup_2_threads"] for r in rows}
    # Paper's observations: no meaningful TLP even at the full 2 GB
    # allocation, and *worse* than single-threaded at 1536 MiB.
    assert by_memory[2048] <= 1.2
    assert by_memory[1536] < 1.0
    # CPU share grows with memory.
    shares = [r["cpu_share_vcpus"] for r in rows]
    assert shares == sorted(shares)
