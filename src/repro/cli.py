"""Command-line entry point: run any workload on any system.

Examples::

    python -m repro.cli --workload pmf-ml10m --system mlless --v 0.7
    python -m repro.cli --workload lr-criteo --system mlless --autotune
    python -m repro.cli --workload pmf-ml20m --system serverful --workers 12
    python -m repro.cli --list
"""

from __future__ import annotations

import argparse
import sys

from .experiments.common import (
    mlless_config,
    run_mlless,
    run_pywren_workload,
    run_serverful_workload,
)
from .experiments.report import fault_summary_rows, render_table
from .experiments.settings import WORKLOADS, make_workload
from .faults import FAULT_PROFILES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run an MLLess-reproduction training job.",
    )
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="pmf-ml10m",
        help="which Table 1 workload to train",
    )
    parser.add_argument(
        "--system", choices=["mlless", "serverful", "pywren"],
        default="mlless", help="which system runs the job",
    )
    parser.add_argument("--workers", type=int, default=12,
                        help="worker/rank pool size")
    parser.add_argument("--v", type=float, default=0.0,
                        help="ISP significance threshold (0 = BSP)")
    parser.add_argument("--autotune", action="store_true",
                        help="enable the scale-in auto-tuner")
    parser.add_argument("--target", type=float, default=None,
                        help="override the convergence loss target")
    parser.add_argument("--deep", action="store_true",
                        help="use the workload's deep target")
    parser.add_argument("--max-steps", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--faults", choices=["off"] + sorted(FAULT_PROFILES), default="off",
        help="inject a named fault profile (mlless only; seed-deterministic)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace (mlless only): Chrome trace JSON at PATH "
        "(Perfetto-loadable), lossless JSONL at PATH.jsonl",
    )
    parser.add_argument(
        "--backend", choices=["sim", "local", "procs"], default="sim",
        help="execution backend (mlless only): 'sim' = discrete-event "
        "simulation (default), 'local' = real threads + wall-clock time, "
        "'procs' = one OS process per role + shared-memory gradients",
    )
    parser.add_argument("--list", action="store_true",
                        help="list workloads and exit")
    parser.epilog = (
        "Declarative scenarios: `repro scenario list|validate|run ...` "
        "forwards to python -m repro.scenarios."
    )
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenario":
        # Declarative scenario engine: `repro scenario run <name>` etc.
        # (same forwarding pattern as `repro.bench platform`).
        from .scenarios.cli import main as scenario_main

        return scenario_main(argv[1:])
    args = build_parser().parse_args(argv)

    if args.list:
        rows = []
        for name in sorted(WORKLOADS):
            wl = make_workload(name)
            rows.append(
                {
                    "workload": name,
                    "metric": wl.metric,
                    "target": wl.target_loss,
                    "deep_target": wl.deep_target_loss,
                    "batch": wl.batch_size,
                    "description": wl.description,
                }
            )
        print(render_table(rows, "available workloads"))
        return 0

    workload = make_workload(args.workload)
    target = args.target
    if target is None:
        target = workload.deep_target_loss if args.deep else workload.target_loss

    print(
        f"running {args.workload} on {args.system} "
        f"(P={args.workers}, target {workload.metric}={target})..."
    )
    profile = None if args.faults == "off" else FAULT_PROFILES[args.faults]
    if profile is not None and args.system != "mlless":
        print("--faults is only supported with --system mlless", file=sys.stderr)
        return 2
    if args.trace is not None and args.system != "mlless":
        print("--trace is only supported with --system mlless", file=sys.stderr)
        return 2
    if args.backend in ("local", "procs"):
        if args.system != "mlless":
            print(f"--backend {args.backend} is only supported with "
                  "--system mlless", file=sys.stderr)
            return 2
        if profile is not None:
            print(f"--backend {args.backend} cannot inject faults "
                  "(use the sim backend)", file=sys.stderr)
            return 2
        if args.trace is not None:
            print(f"--backend {args.backend} does not support --trace",
                  file=sys.stderr)
            return 2

    tracer = None
    if args.system == "mlless":
        config = mlless_config(
            workload, n_workers=args.workers, v=args.v,
            autotune=args.autotune, target_loss=target,
            max_steps=args.max_steps, seed=args.seed,
            faults=profile,
        )
        if args.trace is not None:
            from .trace import Tracer

            tracer = Tracer()
        result = run_mlless(config, tracer=tracer, backend=args.backend)
    elif args.system == "serverful":
        result = run_serverful_workload(
            workload, args.workers, target_loss=target,
            max_steps=args.max_steps, seed=args.seed,
        )
    else:
        result = run_pywren_workload(
            workload, args.workers, target_loss=target,
            max_steps=min(args.max_steps, 60), seed=args.seed,
        )

    print(render_table([result.summary()], "result"))
    if args.backend in ("local", "procs"):
        print(f"({args.backend} backend: {result.exec_time:.2f}s real "
              "wall-clock, no billed platform — cost metering is sim-only)")
    else:
        print(render_table(
            [{"component": k, "cost_usd": round(v, 6)}
             for k, v in sorted(result.meter.breakdown().items())],
            "cost breakdown",
        ))
    fault_rows = fault_summary_rows(result)
    if fault_rows:
        print(render_table(fault_rows, f"faults ({args.faults})"))
    if tracer is not None:
        from .trace import CostLedger
        from .trace_cli import write_run_trace

        billing = result.meter.faas
        ledger = CostLedger.from_trace(tracer, billing)
        print(render_table(ledger.category_table(),
                           "FaaS cost attribution by category"))
        chrome_path, jsonl_path = write_run_trace(
            tracer, args.trace, billing=billing
        )
        print(f"trace written to {chrome_path} "
              f"(open in https://ui.perfetto.dev); JSONL at {jsonl_path}")
    return 0 if result.converged or result.total_steps > 0 else 1


if __name__ == "__main__":
    sys.exit(main())
