"""Bandwidth-shared links.

A :class:`Link` models a network pipe of fixed capacity (bits/s) shared by
concurrent transfers with fair sharing approximated by serialized charging:
each transfer holds a slot while its bytes drain at the full or divided
rate.  Two models are provided:

``Link``
    Processor-sharing approximation: a transfer of ``n`` bytes observes a
    rate of ``capacity / active`` where ``active`` includes itself.  This
    captures the paper-relevant effect that pulling updates from Redis gets
    slower as more workers pull at once (per-step communication overhead
    grows ~linearly with the number of workers, Fig. 2a).

``Nic``
    A per-endpoint wrapper that charges both the sender's and receiver's
    NIC, used by the VM cluster's all-reduce.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Environment
from ..trace.tracer import NO_SPAN, NULL_TRACER

__all__ = ["Link", "Nic", "transfer_time"]


def transfer_time(size_bytes: float, rate_bits_per_s: float) -> float:
    """Ideal (uncontended) time to move ``size_bytes`` over a link."""
    if size_bytes < 0:
        raise ValueError(f"size must be >= 0, got {size_bytes}")
    if rate_bits_per_s <= 0:
        raise ValueError(f"rate must be > 0, got {rate_bits_per_s}")
    return (size_bytes * 8.0) / rate_bits_per_s


class Link:
    """A shared pipe with processor-sharing bandwidth division.

    The sharing model is approximate: a transfer computes its duration when
    it starts, using the instantaneous number of active transfers
    (including itself).  This keeps the kernel simple while preserving the
    qualitative contention behaviour the experiments rely on.
    """

    def __init__(
        self,
        env: Environment,
        capacity_bps: float,
        name: str = "link",
        tracer=None,
    ):
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity_bps}")
        self.env = env
        self.capacity_bps = float(capacity_bps)
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._active = 0
        self.bytes_moved = 0.0
        self.transfers = 0

    @property
    def active_transfers(self) -> int:
        return self._active

    def transfer(self, size_bytes: float) -> Generator:
        """Process generator: move ``size_bytes`` through the link.

        Usage (inside a simulation process)::

            yield from link.transfer(1_000_000)
        """
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        self._active += 1
        try:
            rate = self.capacity_bps / self._active
            duration = transfer_time(size_bytes, rate)
            sp = NO_SPAN
            if self.tracer.enabled and size_bytes > 0:
                sp = self.tracer.begin(
                    "net.transfer",
                    self.name,
                    bytes=size_bytes,
                    active=self._active,
                    duration_s=duration,
                )
            try:
                yield self.env.timeout(duration)
                self.bytes_moved += size_bytes
                self.transfers += 1
            finally:
                if sp >= 0:
                    self.tracer.end(sp)
        finally:
            self._active -= 1

    def __repr__(self) -> str:
        gbps = self.capacity_bps / 1e9
        return f"<Link {self.name!r} {gbps:g}Gbps active={self._active}>"


class Nic:
    """A host network interface: one ingress link and one egress link."""

    def __init__(self, env: Environment, capacity_bps: float, host: str = "host"):
        self.host = host
        self.tx = Link(env, capacity_bps, name=f"{host}.tx")
        self.rx = Link(env, capacity_bps, name=f"{host}.rx")

    def send(self, size_bytes: float) -> Generator:
        yield from self.tx.transfer(size_bytes)

    def recv(self, size_bytes: float) -> Generator:
        yield from self.rx.transfer(size_bytes)

    def __repr__(self) -> str:
        return f"<Nic {self.host!r}>"
