"""Latency models for simulated service requests.

Each model turns a named RNG stream into per-request latency samples.
The object store, KV store and message queue each own one model; the
defaults in :mod:`repro.experiments.calibration` set them to the orders of
magnitude the paper reports (object storage: hundreds of milliseconds,
Redis: ~1 ms, messaging: a few ms).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
]


class LatencyModel(ABC):
    """Produces one latency sample (seconds) per request."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one latency in seconds."""

    @abstractmethod
    def mean(self) -> float:
        """Expected latency in seconds (used by capacity planners/tests)."""


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Fixed latency — handy for fully deterministic tests."""

    seconds: float

    def __post_init__(self):
        if self.seconds < 0:
            raise ValueError(f"latency must be >= 0, got {self.seconds}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.seconds

    def mean(self) -> float:
        return self.seconds


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform jitter in ``[low, high]`` seconds."""

    low: float
    high: float

    def __post_init__(self):
        if not 0 <= self.low <= self.high:
            raise ValueError(f"need 0 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class LognormalLatency(LatencyModel):
    """Heavy-tailed latency, the realistic choice for cloud storage.

    Parameterized by its median and a shape sigma (of the underlying
    normal), which is how cloud-latency studies usually report tails.
    """

    median: float
    sigma: float = 0.25
    cap: float = float("inf")

    def __post_init__(self):
        if self.median <= 0:
            raise ValueError(f"median must be > 0, got {self.median}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.lognormal(mean=np.log(self.median), sigma=self.sigma))
        return min(value, self.cap)

    def mean(self) -> float:
        # E[lognormal] = exp(mu + sigma^2/2); the cap is ignored here since
        # it exists only to bound pathological tail draws.
        return float(self.median * np.exp(self.sigma**2 / 2.0))
