"""Network models: latency distributions and bandwidth-shared links."""

from .bandwidth import Link, Nic, transfer_time
from .latency import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    UniformLatency,
)

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "Link",
    "Nic",
    "transfer_time",
]
