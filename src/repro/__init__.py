"""MLLess reproduction: cost-efficient serverless ML training.

A from-scratch Python reproduction of "Experience Paper: Towards Enhancing
Cost Efficiency in Serverless Machine Learning Training" (Middleware '21):
the MLLess system (ISP significance filter + scale-in auto-tuner), every
substrate it runs on (discrete-event simulated FaaS platform, object/KV/
message-queue storage, VM clusters), both comparison baselines, and the
full experiment harness regenerating each table and figure.

Quick start::

    from repro import JobConfig, run_mlless
    from repro.ml.data import movielens_like
    from repro.ml.models import PMF
    from repro.ml.optim import MomentumSGD, InverseSqrtLR

    dataset = movielens_like()
    config = JobConfig(
        model=PMF(1_200, 800, rank=8, rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(InverseSqrtLR(2.0), nesterov=True),
        dataset=dataset,
        n_workers=8,
        significance_v=0.7,       # ISP filter on
        target_loss=0.75,
    )
    result = run_mlless(config)
    print(result.summary())
"""

from .calibration import Calibration, DEFAULT_CALIBRATION
from .core import (
    AutoTunerConfig,
    JobConfig,
    MLLessDriver,
    RunResult,
    perf_per_dollar,
)
from .experiments.common import SimWorld, build_world, run_mlless
from .faults import FAULT_PROFILES, FaultInjector, FaultProfile

__version__ = "1.0.0"

__all__ = [
    "JobConfig",
    "AutoTunerConfig",
    "MLLessDriver",
    "RunResult",
    "perf_per_dollar",
    "run_mlless",
    "build_world",
    "SimWorld",
    "FaultProfile",
    "FaultInjector",
    "FAULT_PROFILES",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "__version__",
]
