"""A PyWren-style map-reduce framework over the FaaS platform.

Mirrors PyWren-IBM's programming model (§5, [33]): user-defined Python
functions fan out as serverless activations, exchanging *all* data through
the object store — inputs staged as objects, outputs written back as
objects.  No function-to-function communication whatsoever, which is
exactly why the PyWren ML baseline is so slow in Fig. 6.

Used for (a) dataset preparation (the paper normalizes Criteo with two
chained map-reduce jobs) and (b) the non-specialized ML training baseline.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List

from ..calibration import Calibration, DEFAULT_CALIBRATION
from ..faas import FaaSPlatform, FunctionSpec, InvocationContext
from ..storage import ObjectStore

__all__ = ["PyWrenExecutor"]

_SCRATCH_BUCKET = "pywren-scratch"


def _map_shim(ctx: InvocationContext, payload: dict) -> Generator:
    """Generic map task: load input, run UDF, store output."""
    executor: "PyWrenExecutor" = payload["executor"]
    cos = executor.cos
    task_input = yield from cos.get(_SCRATCH_BUCKET, payload["input_key"])
    yield from ctx.compute(executor.calibration.pywren_task_overhead_s)
    result = payload["udf"](task_input)
    flops = payload.get("flops_hint", 0.0)
    if flops:
        yield from ctx.compute(flops / executor.calibration.pywren_flops_per_s)
    yield from cos.put(_SCRATCH_BUCKET, payload["output_key"], result)
    return payload["output_key"]


def _reduce_shim(ctx: InvocationContext, payload: dict) -> Generator:
    """Generic reduce task: load all map outputs, run UDF, store output."""
    executor: "PyWrenExecutor" = payload["executor"]
    cos = executor.cos
    inputs: List[Any] = []
    for key in payload["input_keys"]:
        inputs.append((yield from cos.get(_SCRATCH_BUCKET, key)))
    yield from ctx.compute(executor.calibration.pywren_task_overhead_s)
    result = payload["udf"](inputs)
    flops = payload.get("flops_hint", 0.0)
    if flops:
        yield from ctx.compute(flops / executor.calibration.pywren_flops_per_s)
    yield from cos.put(_SCRATCH_BUCKET, payload["output_key"], result)
    return payload["output_key"]


class PyWrenExecutor:
    """Map/reduce over serverless functions with object-store data plane."""

    def __init__(
        self,
        platform: FaaSPlatform,
        cos: ObjectStore,
        calibration: Calibration = DEFAULT_CALIBRATION,
        memory_mb: int = 2048,
    ):
        self.platform = platform
        self.cos = cos
        self.calibration = calibration
        self.cos.create_bucket(_SCRATCH_BUCKET)
        self._job_counter = 0
        if not platform.is_registered("pywren-map"):
            platform.register(
                FunctionSpec("pywren-map", _map_shim, memory_mb=memory_mb)
            )
        if not platform.is_registered("pywren-reduce"):
            platform.register(
                FunctionSpec("pywren-reduce", _reduce_shim, memory_mb=memory_mb)
            )

    def _next_job_id(self) -> str:
        self._job_counter += 1
        return f"job-{self._job_counter:05d}"

    # -- primitives (simulation process generators) -----------------------
    def map(
        self,
        udf: Callable[[Any], Any],
        items: List[Any],
        flops_hint: float = 0.0,
    ) -> Generator:
        """Apply ``udf`` to each item in parallel; returns the results.

        ``flops_hint`` charges per-task compute time beyond the fixed
        runtime overhead (the UDF's real arithmetic runs in zero simulated
        time otherwise).
        """
        if not items:
            return []
        job = self._next_job_id()
        input_keys = []
        for i, item in enumerate(items):
            key = f"{job}/in-{i:05d}"
            self.cos.preload(_SCRATCH_BUCKET, key, item)
            input_keys.append(key)
        activations = []
        for i, in_key in enumerate(input_keys):
            payload = {
                "executor": self,
                "udf": udf,
                "input_key": in_key,
                "output_key": f"{job}/out-{i:05d}",
                "flops_hint": flops_hint,
            }
            activations.append(self.platform.invoke("pywren-map", payload))
        yield self.platform.env.all_of([a.process for a in activations])
        results = []
        for a in activations:
            out_key = a.result()
            results.append(self.cos.peek(_SCRATCH_BUCKET, out_key))
        return results

    def map_reduce(
        self,
        map_udf: Callable[[Any], Any],
        reduce_udf: Callable[[List[Any]], Any],
        items: List[Any],
        map_flops_hint: float = 0.0,
        reduce_flops_hint: float = 0.0,
    ) -> Generator:
        """Chained map then single reduce; returns the reduce result."""
        job = self._next_job_id()
        input_keys = []
        for i, item in enumerate(items):
            key = f"{job}/in-{i:05d}"
            self.cos.preload(_SCRATCH_BUCKET, key, item)
            input_keys.append(key)
        map_acts = []
        for i, in_key in enumerate(input_keys):
            payload = {
                "executor": self,
                "udf": map_udf,
                "input_key": in_key,
                "output_key": f"{job}/map-{i:05d}",
                "flops_hint": map_flops_hint,
            }
            map_acts.append(self.platform.invoke("pywren-map", payload))
        yield self.platform.env.all_of([a.process for a in map_acts])
        map_keys = [a.result() for a in map_acts]
        reduce_payload = {
            "executor": self,
            "udf": reduce_udf,
            "input_keys": map_keys,
            "output_key": f"{job}/reduce",
            "flops_hint": reduce_flops_hint,
        }
        activation = self.platform.invoke("pywren-reduce", reduce_payload)
        yield activation.process
        return self.cos.peek(_SCRATCH_BUCKET, activation.result())

    @property
    def env(self):
        return self.platform.env
