"""Dataset preparation as chained map-reduce jobs (§3.2).

The paper normalizes datasets by chaining two PyWren map-reduce jobs:
the first computes per-feature min/max, the second applies the scaling.
:func:`normalize_via_mapreduce` reproduces that pipeline on this repo's
executor (the pure kernels live in :mod:`repro.ml.data.normalize`).
"""

from __future__ import annotations

from typing import Generator

from ..ml.data.dataset import Dataset, LRBatch
from ..ml.data.normalize import (
    FeatureStats,
    combine_stats,
    minmax_apply,
    minmax_stats,
)
from .executor import PyWrenExecutor

__all__ = ["normalize_via_mapreduce"]


def normalize_via_mapreduce(
    executor: PyWrenExecutor, dataset: Dataset, dense_cols: int
) -> Generator:
    """Min-max normalize an LR dataset with two chained map-reduce jobs.

    Simulation process generator; returns ``(normalized_dataset, stats)``.
    """
    batches = list(dataset)

    # Job 1: map = per-batch min/max, reduce = combine.
    stats: FeatureStats = yield from executor.map_reduce(
        map_udf=lambda batch: minmax_stats(batch.X, dense_cols),
        reduce_udf=combine_stats,
        items=batches,
        map_flops_hint=float(sum(b.X.nnz for b in batches)) / len(batches),
    )

    # Job 2: map = apply scaling (no reduce needed; plain map).
    scaled = yield from executor.map(
        lambda batch: LRBatch(minmax_apply(batch.X, stats), batch.y),
        batches,
        flops_hint=float(sum(b.X.nnz for b in batches)) / len(batches),
    )
    return Dataset(scaled, name=f"{dataset.name}-mr-norm"), stats
