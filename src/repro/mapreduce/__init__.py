"""PyWren-style map-reduce over the FaaS platform."""

from .executor import PyWrenExecutor
from .prep import normalize_via_mapreduce

__all__ = ["PyWrenExecutor", "normalize_via_mapreduce"]
