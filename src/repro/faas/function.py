"""Function specifications and activation context.

A *function* is registered code plus a memory setting.  Handlers are
simulation-process generator functions, written in one of two styles:

1. **Direct DES style** — yield simulation events and service-process
   generators straight from the handler::

       def handler(ctx, payload):
           yield from ctx.compute(cpu_seconds=0.05)
           data = yield from ctx.services.cos.get("bucket", "key")
           return result

2. **Backend-neutral machine style** — write the logic as a plain
   machine against :class:`repro.exec.protocols.ExecutionContext` and
   wrap it with :func:`repro.exec.sim.as_sim_handler` (how the MLLess
   worker/supervisor are registered).  Such machines also run unchanged
   on the real local backend (:mod:`repro.exec.local`); use
   :meth:`InvocationContext.execution_context` to build the sim-side
   context by hand when composing manually.

``ctx`` (an :class:`InvocationContext`) provides the simulated clock, the
platform services, and :meth:`InvocationContext.compute`, which charges CPU
time scaled by the activation's vCPU share (a 1024 MB function computes at
half speed — the memory→CPU coupling of IBM Cloud Functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..sim import Environment
from ..trace.tracer import NO_SPAN, NULL_TRACER
from .limits import FaaSLimits

__all__ = [
    "FunctionSpec",
    "InvocationContext",
    "ActivationTimeout",
    "ActivationCrash",
]


class ActivationTimeout(Exception):
    """Raised inside a handler when the platform duration cap is hit."""

    def __init__(self, function: str, limit_s: float):
        super().__init__(f"activation of {function!r} exceeded {limit_s:.0f}s limit")
        self.function = function
        self.limit_s = limit_s


class ActivationCrash(Exception):
    """An injected fault killed the activation mid-flight.

    Models a container OOM-kill or host failure: the handler stops at an
    arbitrary point, the container is lost (no warm reuse), and the
    consumed GB-seconds are still billed.
    """

    def __init__(self, function: str, after_s: float):
        super().__init__(
            f"activation of {function!r} crashed {after_s:.3f}s after start "
            "(injected fault)"
        )
        self.function = function
        self.after_s = after_s


@dataclass(frozen=True)
class FunctionSpec:
    """Registered function: name, handler generator-function, memory."""

    name: str
    handler: Callable[["InvocationContext", Any], Generator]
    memory_mb: int = 2048

    def validate(self, limits: FaaSLimits) -> None:
        limits.validate_memory(self.memory_mb)
        if not callable(self.handler):
            raise TypeError(f"handler for {self.name!r} is not callable")


class InvocationContext:
    """What a running activation sees: clock, services, compute charging."""

    def __init__(
        self,
        env: Environment,
        platform: "FaaSPlatform",  # noqa: F821 - forward ref
        function: str,
        activation_id: int,
        memory_mb: int,
        services: Any = None,
        compute_scale: float = 1.0,
        tracer: Any = NULL_TRACER,
        span_id: int = NO_SPAN,
    ):
        self.env = env
        self.platform = platform
        self.function = function
        self.activation_id = activation_id
        self.memory_mb = memory_mb
        self.cpu_share = platform.limits.cpu_share(memory_mb)
        #: service bundle (object store, KV store, MQ, ...) given at invoke
        self.services = services
        #: >1.0 when a straggler fault degrades this activation's host
        self.compute_scale = compute_scale
        self.cpu_seconds_used = 0.0
        #: observability hooks — the enclosing invoke span, if tracing
        self.tracer = tracer
        self.span_id = span_id

    @property
    def now(self) -> float:
        return self.env.now

    def compute(self, cpu_seconds: float) -> Generator:
        """Charge ``cpu_seconds`` of single-vCPU work at this activation's share."""
        if cpu_seconds < 0:
            raise ValueError(f"cpu_seconds must be >= 0, got {cpu_seconds}")
        wall = cpu_seconds / self.cpu_share * self.compute_scale
        self.cpu_seconds_used += cpu_seconds
        sp = NO_SPAN
        if self.tracer.enabled:
            sp = self.tracer.begin(
                "compute", "compute", cpu_s=cpu_seconds, wall_s=wall
            )
        try:
            yield self.env.timeout(wall)
        finally:
            if sp >= 0:
                self.tracer.end(sp)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to this activation's invoke span (no-op untraced)."""
        if self.tracer.enabled and self.span_id >= 0:
            self.tracer.annotate(self.span_id, **attrs)

    def sleep(self, seconds: float) -> Generator:
        """Idle wait (still billed by the platform — FaaS charges wall time)."""
        yield self.env.timeout(seconds)

    def remaining_time(self, started_at: float) -> float:
        """Seconds left before the duration cap, given the start time."""
        return self.platform.limits.max_duration_s - (self.env.now - started_at)

    def execution_context(self, runtime: Any) -> Any:
        """A backend-neutral execution context over this activation.

        Builds the :class:`repro.exec.sim.SimExecutionContext` that lets
        a backend-neutral machine (see :mod:`repro.exec.protocols`) run
        inside this activation against ``runtime``'s service handles.
        """
        from ..exec.sim import SimExecutionContext

        return SimExecutionContext(self, runtime)

    def __repr__(self) -> str:
        return (
            f"<InvocationContext {self.function}#{self.activation_id} "
            f"{self.memory_mb}MB>"
        )
