"""The simulated FaaS platform: registry, scheduler, containers, billing.

Responsibilities:

* **Registry** — functions are registered once (:meth:`FaaSPlatform.register`)
  and invoked by name.
* **Dispatch** — each invocation pays a warm or cold dispatch latency.
  Warm containers are tracked per function with a keep-alive window, so
  repeated invocations (e.g. PyWren's per-iteration maps) mostly hit warm
  containers after the first wave.
* **Limits** — platform-wide concurrency cap and the 10-minute duration
  cap; an activation that overruns is interrupted and fails with
  :class:`ActivationTimeout`.
* **Billing** — every activation produces an
  :class:`~repro.faas.billing.ActivationRecord` (100 ms-rounded GB-s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..sim import Environment, Interrupt, Process, RandomStreams, Resource
from ..trace.tracer import NO_SPAN, NULL_TRACER
from .billing import ActivationRecord, FaaSBilling
from .coldstart import ColdStartModel
from .function import (
    ActivationCrash,
    ActivationTimeout,
    FunctionSpec,
    InvocationContext,
)
from .limits import FaaSLimits, IBM_CLOUD_FUNCTIONS_LIMITS

__all__ = ["FaaSPlatform", "Activation"]


@dataclass
class _WarmPool:
    """Idle warm containers for one function: (container id, idle since)."""

    idle: List[Tuple[int, float]] = field(default_factory=list)

    def try_take(self, now: float, keep_alive: float) -> Optional[int]:
        """Claim a still-alive warm container (most recently used first),
        evicting expired ones; returns its id, or None on a miss."""
        self.idle = [(c, t) for c, t in self.idle if now - t <= keep_alive]
        if self.idle:
            return self.idle.pop()[0]
        return None

    def put_back(self, container_id: int, now: float) -> None:
        self.idle.append((container_id, now))


class Activation:
    """A handle to one running (or finished) function activation."""

    def __init__(
        self,
        platform: "FaaSPlatform",
        spec: FunctionSpec,
        activation_id: int,
        process: Optional[Process],
        cold: bool,
        submitted_at: float,
    ):
        self.platform = platform
        self.function = spec.name
        self.memory_mb = spec.memory_mb
        self.activation_id = activation_id
        self.process = process
        self.cold = cold
        self.submitted_at = submitted_at
        #: when execution actually began (queue wait excluded) — billing
        #: starts here, not at submission
        self.started_at = submitted_at
        #: identity of the container that ran (or is running) this
        #: activation; -1 until dispatch assigns one
        self.container_id = -1
        self.record: Optional[ActivationRecord] = None
        #: tracer span id of the "invoke" span (NO_SPAN when untraced)
        self.span_id = NO_SPAN

    @property
    def done(self) -> bool:
        return self.record is not None

    def result(self) -> Any:
        """Return value of the handler; raises its exception on failure."""
        if not self.process.triggered:
            raise RuntimeError(f"activation {self.activation_id} still running")
        if not self.process.ok:
            raise self.process.value
        return self.process.value

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"<Activation {self.function}#{self.activation_id} {state}>"


class FaaSPlatform:
    """The platform facade: register and invoke functions."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        limits: FaaSLimits = IBM_CLOUD_FUNCTIONS_LIMITS,
        cold_start: ColdStartModel = ColdStartModel(),
        billing: Optional[FaaSBilling] = None,
        services: Any = None,
        queue_when_full: bool = False,
        faults: Any = None,
        tracer: Any = None,
        label: str = "faas",
    ):
        self.env = env
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind(env)
        self.limits = limits
        self.cold_start = cold_start
        self.billing = billing if billing is not None else FaaSBilling()
        self.services = services
        #: optional :class:`~repro.faults.FaultInjector`; None = no faults
        self.faults = faults
        #: at the concurrency cap: queue invocations (real platform
        #: behaviour) instead of rejecting them with an error
        self.queue_when_full = queue_when_full
        #: identity of this platform instance on billing records and
        #: invoke spans — activation ids are only unique per platform, so
        #: worlds with several pools feeding one consolidated bill must
        #: give each pool a distinct label (see CostLedger)
        self.label = label
        self._rng = streams.stream("faas.dispatch")
        self._functions: Dict[str, FunctionSpec] = {}
        self._warm: Dict[str, _WarmPool] = {}
        self._next_activation_id = 0
        self._next_container_id = 0
        self._running = 0
        self._slots = Resource(env, capacity=limits.max_concurrency)
        self.activations: List[Activation] = []
        #: container lifecycle, for warm-reuse and idle-cost analysis:
        #: (sim time, event, function, container_id, activation_id) with
        #: event one of "provision" (cold boot), "acquire" (warm hit),
        #: "release" (back to the warm pool), "lost" (crashed container)
        self.container_log: List[Tuple[float, str, str, int, int]] = []

    # -- registry ---------------------------------------------------------
    def register(self, spec: FunctionSpec) -> None:
        spec.validate(self.limits)
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already registered")
        self._functions[spec.name] = spec
        self._warm[spec.name] = _WarmPool()

    def is_registered(self, name: str) -> bool:
        return name in self._functions

    @property
    def running_count(self) -> int:
        return self._running

    # -- invocation ---------------------------------------------------------
    def invoke(self, name: str, payload: Any = None) -> Activation:
        """Start an activation of function ``name``; returns immediately.

        The returned :class:`Activation` wraps a simulation process; wait
        on ``activation.process`` inside another process, or run the
        environment until it completes.
        """
        if name not in self._functions:
            raise KeyError(f"function {name!r} is not registered")
        spec = self._functions[name]
        if (
            not self.queue_when_full
            and self._running >= self.limits.max_concurrency
        ):
            raise RuntimeError(
                f"platform concurrency cap ({self.limits.max_concurrency}) reached"
            )

        activation_id = self._next_activation_id
        self._next_activation_id += 1
        self._running += 1

        activation = Activation(
            self, spec, activation_id, None, cold=True, submitted_at=self.env.now
        )
        if self.tracer.enabled:
            activation.span_id = self.tracer.begin(
                "invoke",
                f"{name}#{activation_id}",
                function=name,
                activation_id=activation_id,
                memory_mb=spec.memory_mb,
                pool=self.label,
            )
        process = self.env.process(
            self._run_activation(spec, activation_id, payload, activation),
            name=f"{name}#{activation_id}",
        )
        if activation.span_id >= 0:
            # Spans opened by the activation process (coldstart, compute,
            # storage ops) nest under the invoke span, not the caller's.
            self.tracer.adopt(process, activation.span_id)
        activation.process = process
        self.activations.append(activation)
        # Record billing when the process finishes, whatever the outcome.
        process.callbacks.append(lambda _evt: self._finalize(activation))
        return activation

    def _run_activation(
        self,
        spec: FunctionSpec,
        activation_id: int,
        payload: Any,
        activation: "Activation",
    ) -> Generator:
        slot = self._slots.request()
        crashed = False
        container_id: Optional[int] = None
        try:
            yield slot
            # Warm/cold is decided at dispatch (after any queueing delay).
            container_id = self._warm[spec.name].try_take(
                self.env.now, self.cold_start.keep_alive
            )
            cold = container_id is None
            if cold:
                container_id = self._next_container_id
                self._next_container_id += 1
                self.container_log.append(
                    (self.env.now, "provision", spec.name, container_id, activation_id)
                )
            else:
                self.container_log.append(
                    (self.env.now, "acquire", spec.name, container_id, activation_id)
                )
            activation.cold = cold
            activation.container_id = container_id
            activation.started_at = self.env.now
            dispatch_base, cold_extra = self.cold_start.dispatch_components(
                not cold, self._rng
            )
            dispatch = dispatch_base + cold_extra
            compute_scale = 1.0
            crash_after: Optional[float] = None
            if self.faults is not None:
                if cold:
                    dispatch *= self.faults.coldstart_multiplier()
                crash_after = self.faults.crash_delay(spec.name)
                compute_scale = self.faults.compute_scale(spec.name)
            sp = NO_SPAN
            if self.tracer.enabled:
                sp = self.tracer.begin(
                    "coldstart",
                    "dispatch",
                    cold=cold,
                    dispatch_s=dispatch,
                    cold_extra_s=cold_extra,
                )
            try:
                yield self.env.timeout(dispatch)
            finally:
                if sp >= 0:
                    self.tracer.end(sp)
            ctx = InvocationContext(
                self.env,
                self,
                spec.name,
                activation_id,
                spec.memory_mb,
                services=self.services,
                compute_scale=compute_scale,
                tracer=self.tracer,
                span_id=activation.span_id,
            )
            body = self.env.process(
                spec.handler(ctx, payload), name=f"{spec.name}#{activation_id}.body"
            )
            if activation.span_id >= 0:
                self.tracer.adopt(body, activation.span_id)
            deadline = self.env.timeout(self.limits.max_duration_s)
            racers = [body, deadline]
            crash = None
            if crash_after is not None:
                crash = self.env.timeout(crash_after)
                racers.append(crash)
            result = yield self.env.any_of(racers)
            if body in result:
                return result[body]
            if crash is not None and crash in result and deadline not in result:
                # Injected crash fired before the handler finished: the
                # container is lost, so no warm reuse, but the consumed
                # GB-seconds are still billed (via _finalize).
                crashed = True
                self.faults.stats.note_injected("activation_crash")
                if body.is_alive:
                    body.interrupt(cause="fault-injected-crash")
                    try:
                        yield body
                    except (Interrupt, Exception):
                        pass
                raise ActivationCrash(spec.name, crash_after)
            # Duration cap hit: kill the handler.
            if body.is_alive:
                body.interrupt(cause="duration-limit")
                try:
                    yield body
                except (Interrupt, Exception):
                    pass
            raise ActivationTimeout(spec.name, self.limits.max_duration_s)
        finally:
            self._running -= 1
            # Only an activation that actually acquired a container can
            # return one — a failure while still queued must not conjure a
            # phantom warm container.
            if container_id is not None:
                if crashed:
                    self.container_log.append(
                        (self.env.now, "lost", spec.name, container_id, activation_id)
                    )
                else:
                    self._warm[spec.name].put_back(container_id, self.env.now)
                    self.container_log.append(
                        (self.env.now, "release", spec.name, container_id, activation_id)
                    )
            self._slots.release(slot)

    def _finalize(self, activation: Activation) -> None:
        process = activation.process
        record = ActivationRecord(
            function=activation.function,
            activation_id=activation.activation_id,
            memory_mb=activation.memory_mb,
            start=activation.started_at,
            end=self.env.now,
            cold=activation.cold,
            ok=bool(process.ok),
            pool=self.label,
            container_id=activation.container_id,
        )
        activation.record = record
        self.billing.add(record)
        if activation.span_id >= 0:
            self.tracer.end(
                activation.span_id,
                cold=record.cold,
                ok=record.ok,
                billed_s=record.billed_duration,
                gb_s=record.gb_seconds,
            )
        if not process.ok:
            # The platform observed the failure; don't crash the kernel if
            # no caller is waiting (failed activations are a normal FaaS
            # outcome surfaced via activation.result()).
            process.defused = True

    # -- warm-pool control ----------------------------------------------
    def warm_count(self, name: Optional[str] = None) -> int:
        """Idle warm containers for ``name`` (or across all functions).

        Counts lazily — containers whose keep-alive has expired but were
        not yet evicted by a dispatch are still included; billing-side
        accounting computes expiry times from :attr:`container_log`.
        """
        if name is not None:
            return len(self._warm[name].idle)
        return sum(len(pool.idle) for pool in self._warm.values())

    def reclaim_warm(self) -> List[Tuple[str, int]]:
        """Tear down every idle warm container (pool scale-to-zero).

        The next invocation of each function pays a cold start again.
        Returns the reclaimed ``(function, container_id)`` pairs and logs
        a ``"reclaim"`` container event for each, so idle-cost accounting
        can bound each container's billable idle tail at the reclaim.
        """
        reclaimed: List[Tuple[str, int]] = []
        for fn in sorted(self._warm):
            pool = self._warm[fn]
            for container_id, _idle_since in pool.idle:
                reclaimed.append((fn, container_id))
                self.container_log.append(
                    (self.env.now, "reclaim", fn, container_id, -1)
                )
            pool.idle = []
        return reclaimed

    # -- convenience ----------------------------------------------------
    def invoke_and_wait(self, name: str, payload: Any = None) -> Generator:
        """Process generator: invoke and return the handler's result."""
        activation = self.invoke(name, payload)
        yield activation.process
        return activation.result()

    def map(self, name: str, payloads: List[Any]) -> List[Activation]:
        """Fan out one activation per payload (PyWren-style map)."""
        return [self.invoke(name, p) for p in payloads]

    def __repr__(self) -> str:
        return (
            f"<FaaSPlatform functions={len(self._functions)} "
            f"running={self._running} activations={len(self.activations)}>"
        )
