"""FaaS metering: GB-second billing with 100 ms rounding.

IBM Cloud Functions bills ``memory(GB) x duration`` where duration is
rounded **up** to the next 100 ms, at a fixed $ per GB-s rate.  Table 2 of
the paper quotes 3.4e-5 $/s for a 2 GB / 1 vCPU function, i.e.
1.7e-5 $ per GB-second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ActivationRecord", "FaaSBilling"]

#: $ per GB-second, derived from Table 2 (3.4e-5 $/s at 2 GB).
DEFAULT_RATE_PER_GB_S = 1.7e-5
#: billing granularity, seconds
BILLING_QUANTUM_S = 0.100


@dataclass(frozen=True)
class ActivationRecord:
    """One completed (or failed) activation, as the meter sees it."""

    function: str
    activation_id: int
    memory_mb: int
    start: float
    end: float
    cold: bool
    ok: bool
    #: label of the platform instance that billed this activation.
    #: Activation ids are only unique *within* one platform, so a
    #: consolidated bill spanning several pools (one per memory grade,
    #: or the per-job isolation baseline) needs the pool in the identity
    #: — the cost ledger joins spans on (pool, function, activation_id).
    pool: str = "faas"
    #: identity of the (possibly warm-reused) container that ran the
    #: activation; -1 when the activation never reached dispatch
    container_id: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def billed_duration(self) -> float:
        """Duration rounded up to the billing quantum."""
        if self.duration <= 0:
            return BILLING_QUANTUM_S
        quanta = math.ceil(round(self.duration / BILLING_QUANTUM_S, 9))
        return quanta * BILLING_QUANTUM_S

    @property
    def gb_seconds(self) -> float:
        """Billed GB-seconds: memory in GB times the rounded duration."""
        return (self.memory_mb / 1024.0) * self.billed_duration

    def cost(self, rate_per_gb_s: float = DEFAULT_RATE_PER_GB_S) -> float:
        return (self.memory_mb / 1024.0) * self.billed_duration * rate_per_gb_s


@dataclass
class FaaSBilling:
    """Accumulates activation records and prices them."""

    rate_per_gb_s: float = DEFAULT_RATE_PER_GB_S
    records: List[ActivationRecord] = field(default_factory=list)

    def add(self, record: ActivationRecord) -> None:
        self.records.append(record)

    def total_cost(self) -> float:
        return sum(r.cost(self.rate_per_gb_s) for r in self.records)

    def total_gb_seconds(self) -> float:
        return sum(r.gb_seconds for r in self.records)

    def cost_by_function(self) -> Dict[str, float]:
        costs: Dict[str, float] = {}
        for r in self.records:
            costs[r.function] = costs.get(r.function, 0.0) + r.cost(self.rate_per_gb_s)
        return costs

    def cost_up_to(self, time: float) -> float:
        """Cost accrued by simulated ``time``, counting live activations.

        An activation spanning ``time`` is charged for its elapsed portion —
        this is what a "cost so far" curve (Fig. 7) needs.

        Boundary semantics: a record with ``start >= time`` contributes
        nothing (an activation starting exactly at ``time`` has not accrued
        yet); an in-flight record (``start < time < end``) is charged as if
        it ended at ``time``, including the minimum-quantum round-up; at
        ``time == end`` the record is charged in full, so for any ``time``
        past the last end the result equals :meth:`total_cost`.
        """
        total = 0.0
        for r in self.records:
            if r.start >= time:
                continue
            end = min(r.end, time)
            partial = ActivationRecord(
                r.function, r.activation_id, r.memory_mb, r.start, end, r.cold, r.ok,
                pool=r.pool, container_id=r.container_id,
            )
            total += partial.cost(self.rate_per_gb_s)
        return total
