"""Cold-start model for the simulated FaaS platform.

An invocation hitting a warm container pays a small dispatch latency; a
cold invocation additionally pays container provisioning plus runtime
initialization (the Python runtime and the MLLess library import, which
the paper's prototype ships inside the function image).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ColdStartModel"]


@dataclass(frozen=True)
class ColdStartModel:
    """Latency parameters for dispatching an activation."""

    #: warm dispatch latency (controller + scheduler), seconds
    warm_median: float = 0.010
    warm_sigma: float = 0.3
    #: cold container provision + runtime init, seconds
    cold_median: float = 0.600
    cold_sigma: float = 0.4
    #: idle time after which a warm container is reclaimed, seconds
    keep_alive: float = 600.0

    def warm_latency(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(np.log(self.warm_median), self.warm_sigma))

    def cold_latency(self, rng: np.random.Generator) -> float:
        return self.warm_latency(rng) + float(
            rng.lognormal(np.log(self.cold_median), self.cold_sigma)
        )

    def dispatch_components(
        self, warm: bool, rng: np.random.Generator
    ) -> "tuple[float, float]":
        """``(base, cold_extra)`` of the dispatch latency.

        Draw order and float math match :meth:`dispatch_latency` exactly
        (warm draw first, cold draw only when cold, summed in the same
        order), so callers that want the split — e.g. to annotate a trace
        span — consume the RNG identically to ones that don't.
        """
        base = self.warm_latency(rng)
        if warm:
            return base, 0.0
        extra = float(rng.lognormal(np.log(self.cold_median), self.cold_sigma))
        return base, extra

    def dispatch_latency(self, warm: bool, rng: np.random.Generator) -> float:
        base, extra = self.dispatch_components(warm, rng)
        return base + extra
