"""Resource limits of the simulated FaaS platform.

Modeled on IBM Cloud Functions at the time of the paper:

* memory per activation configurable up to 2048 MB;
* CPU share proportional to memory — the full 2048 MB buys the
  equivalent of **one** vCPU, and there is *no* thread-level parallelism
  beyond that (§5 and Fig. 3 of the paper);
* activations are killed at the 10-minute mark.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaaSLimits", "IBM_CLOUD_FUNCTIONS_LIMITS"]


@dataclass(frozen=True)
class FaaSLimits:
    """Platform-wide activation limits."""

    max_memory_mb: int = 2048
    min_memory_mb: int = 128
    max_duration_s: float = 600.0
    #: memory that buys one full vCPU of compute share
    memory_per_vcpu_mb: int = 2048
    #: hard cap on CPU share per activation regardless of memory
    max_vcpus: float = 1.0
    #: platform-wide concurrent activation cap (IBM default: 1000)
    max_concurrency: int = 1000

    def validate_memory(self, memory_mb: int) -> None:
        if not self.min_memory_mb <= memory_mb <= self.max_memory_mb:
            raise ValueError(
                f"memory {memory_mb} MB outside platform range "
                f"[{self.min_memory_mb}, {self.max_memory_mb}] MB"
            )

    def cpu_share(self, memory_mb: int) -> float:
        """Fraction of a vCPU an activation with ``memory_mb`` receives."""
        self.validate_memory(memory_mb)
        return min(memory_mb / self.memory_per_vcpu_mb, self.max_vcpus)

    def thread_speedup(self, memory_mb: int, threads: int) -> float:
        """Effective speedup of ``threads`` threads vs one, same activation.

        The platform's CPU cgroup share is :meth:`cpu_share` vCPUs no
        matter how many threads run, so extra threads cannot add compute.
        What they *can* do is overlap stalls (memory waits), worth a few
        percent when the share is a full core — and they *cost* scheduler
        contention, which dominates at fractional shares.  This reproduces
        the Fig. 3 observation: ~1.0–1.1x speedup at 2048 MB, and *below*
        1.0 at 1536 MB.
        """
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if threads == 1:
            return 1.0
        share = self.cpu_share(memory_mb)
        overlap_bonus = 0.10 if share >= self.max_vcpus else 0.0
        contention = 0.07 * (threads - 1) * (2.0 - share)
        return max(1.0 + overlap_bonus - contention, 0.05)


#: Defaults matching the paper's platform.
IBM_CLOUD_FUNCTIONS_LIMITS = FaaSLimits()
