"""Simulated Function-as-a-Service platform (IBM Cloud Functions stand-in)."""

from .billing import ActivationRecord, FaaSBilling
from .coldstart import ColdStartModel
from .function import (
    ActivationCrash,
    ActivationTimeout,
    FunctionSpec,
    InvocationContext,
)
from .limits import FaaSLimits, IBM_CLOUD_FUNCTIONS_LIMITS
from .platform import Activation, FaaSPlatform

__all__ = [
    "FaaSPlatform",
    "Activation",
    "FunctionSpec",
    "InvocationContext",
    "ActivationTimeout",
    "ActivationCrash",
    "FaaSLimits",
    "IBM_CLOUD_FUNCTIONS_LIMITS",
    "ColdStartModel",
    "FaaSBilling",
    "ActivationRecord",
]
