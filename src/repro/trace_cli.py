"""Host-side trace tooling: file writers and the ``repro-trace`` CLI.

Lives outside the simulated layers (like :mod:`repro.cli`) because it
opens files and prints; everything it calls in :mod:`repro.trace` is pure.

Usage::

    repro-trace summary  RUN.trace.json.jsonl         # text report
    repro-trace cost     RUN.trace.json.jsonl         # cost attribution
    repro-trace chrome   RUN.trace.json.jsonl -o t.json   # re-export

    python -m repro.trace <same arguments>

Traces are produced by the ``--trace PATH`` option of
``examples/quickstart.py``, ``python -m repro.cli`` and the fig scripts:
PATH receives the Chrome trace-event JSON (drag into
https://ui.perfetto.dev) and ``PATH.jsonl`` the lossless dump these
subcommands read.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Optional, Sequence, Tuple

from .experiments.report import render_table
from .trace import (
    CostLedger,
    TraceData,
    chrome_trace,
    critical_path,
    parse_jsonl,
    straggler_report,
    to_jsonl_lines,
)

__all__ = [
    "main",
    "write_chrome_trace",
    "write_jsonl",
    "write_run_trace",
    "summary_text",
]


# -- file writers -------------------------------------------------------


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def write_chrome_trace(trace: Any, path: str) -> str:
    """Write the Chrome trace-event JSON for ``trace`` to ``path``."""
    _ensure_parent(path)
    with open(path, "w") as fh:
        json.dump(chrome_trace(trace), fh)
        fh.write("\n")
    return path


def write_jsonl(trace: Any, path: str, billing: Any = None) -> str:
    """Write the lossless JSONL dump (spans, events, billing records)."""
    _ensure_parent(path)
    with open(path, "w") as fh:
        for line in to_jsonl_lines(trace, billing=billing):
            fh.write(line)
            fh.write("\n")
    return path


def write_run_trace(trace: Any, path: str, billing: Any = None) -> Tuple[str, str]:
    """Write both exports for one run: Chrome JSON at ``path``, JSONL next
    to it at ``path + ".jsonl"``.  Returns the two paths."""
    chrome_path = write_chrome_trace(trace, path)
    jsonl_path = write_jsonl(trace, path + ".jsonl", billing=billing)
    return chrome_path, jsonl_path


# -- text summary -------------------------------------------------------


def summary_text(trace: Any, billing: Any = None, max_steps: int = 12) -> str:
    """Tables: cost by category (when billing is known), critical path,
    stragglers."""
    sections = []
    if billing is not None:
        ledger = CostLedger.from_trace(trace, billing)
        sections.append(
            render_table(ledger.category_table(), "cost attribution by category")
        )
        rec = ledger.reconcile()
        sections.append(
            f"bill: ${rec['billing_total_cost']:.6f}  "
            f"ledger: ${rec['ledger_row_cost']:.6f}  "
            f"(abs error {rec['abs_error']:.2e}; "
            f"{100 * rec['attributed_fraction']:.2f}% of GB-s attributed)"
        )
    path_rows = critical_path(trace)
    if path_rows:
        shown = path_rows
        if len(path_rows) > max_steps:
            stride = max(1, len(path_rows) // max_steps)
            shown = path_rows[::stride]
        sections.append(
            render_table(shown, f"critical path ({len(path_rows)} steps)")
        )
        sections.append(render_table(straggler_report(trace), "straggler report"))
    if not sections:
        sections.append("(no step spans and no billing records in this trace)")
    return "\n\n".join(sections)


# -- CLI ----------------------------------------------------------------


def _load(path: str) -> TraceData:
    with open(path) as fh:
        return parse_jsonl(fh)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Analyse and convert saved simulation traces (.jsonl).",
    )
    sub = parser.add_subparsers(dest="command")
    p_summary = sub.add_parser(
        "summary", help="text report: cost breakdown, critical path, stragglers"
    )
    p_summary.add_argument("trace", help="JSONL trace file (PATH.jsonl of --trace PATH)")
    p_cost = sub.add_parser("cost", help="cost-attribution ledger tables")
    p_cost.add_argument("trace")
    p_cost.add_argument(
        "--by",
        choices=["category", "phase", "worker", "function"],
        default="category",
        help="grouping dimension (default: category)",
    )
    p_chrome = sub.add_parser(
        "chrome", help="re-export as Chrome trace-event JSON (Perfetto)"
    )
    p_chrome.add_argument("trace")
    p_chrome.add_argument("-o", "--output", required=True, metavar="PATH")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        data = _load(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2

    if args.command == "summary":
        billing = data.billing if data.records else None
        print(summary_text(data, billing=billing))
        return 0
    if args.command == "cost":
        if not data.records:
            print(
                "error: trace has no billing records; re-run the experiment "
                "with --trace to embed them",
                file=sys.stderr,
            )
            return 2
        ledger = CostLedger.from_trace(data, data.billing)
        grouped = {
            "category": ledger.by_category,
            "phase": ledger.by_phase,
            "worker": ledger.by_worker,
            "function": ledger.by_function,
        }[args.by]()
        rows = [
            {
                args.by: key,
                "seconds": round(grouped[key]["seconds"], 4),
                "gb_s": round(grouped[key]["gb_s"], 4),
                "cost_usd": round(grouped[key]["cost"], 8),
            }
            for key in sorted(grouped, key=lambda k: (-grouped[k]["cost"], str(k)))
        ]
        print(render_table(rows, f"cost attribution by {args.by}"))
        rec = ledger.reconcile()
        print(
            f"\nbill total: ${rec['billing_total_cost']:.6f}  "
            f"attributed: {100 * rec['attributed_fraction']:.2f}% of GB-s  "
            f"(row-sum error {rec['abs_error']:.2e})"
        )
        return 0
    if args.command == "chrome":
        out = args.output
        _ensure_parent(out)
        with open(out, "w") as fh:
            json.dump(chrome_trace(data), fh)
            fh.write("\n")
        print(f"chrome trace written to {out} (open in https://ui.perfetto.dev)")
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
