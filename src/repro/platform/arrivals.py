"""Deterministic arrival traffic: diurnal rate curves with bursts.

Each tenant submits jobs as an inhomogeneous Poisson process whose rate
follows a diurnal curve (one compressed "day" over the scenario horizon)
plus short random burst windows (a retraining campaign, a backfill).
Arrivals are sampled by thinning against the peak rate, drawing *only*
from named seed streams (``platform.arrivals.<tenant>`` for timing,
``platform.jobs.<tenant>`` for job sizing) so adding a tenant, or
resizing one tenant's jobs, never perturbs another tenant's schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..sim import RandomStreams
from .jobs import JobSpec
from .tenants import Tenant

__all__ = [
    "TrafficProfile",
    "JobSizeProfile",
    "Submission",
    "diurnal_rate",
    "generate_arrivals",
]


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of one tenant's submission traffic."""

    #: mean submissions per hour (averaged over the diurnal cycle)
    mean_rate_per_h: float = 6.0
    #: diurnal modulation depth in [0, 1): rate swings between
    #: ``mean*(1-amp)`` and ``mean*(1+amp)``
    diurnal_amplitude: float = 0.6
    #: sim time of the diurnal peak, seconds
    peak_time_s: float = 2700.0
    #: length of one (compressed) diurnal cycle, seconds
    period_s: float = 7200.0
    #: expected burst windows per hour per tenant
    bursts_per_h: float = 0.5
    #: burst window length, seconds
    burst_len_s: float = 300.0
    #: rate multiplier inside a burst window
    burst_multiplier: float = 5.0


@dataclass(frozen=True)
class JobSizeProfile:
    """Ranges the per-tenant job sampler draws sizes from."""

    min_workers: int = 1
    max_workers: int = 4
    min_steps: int = 20
    max_steps: int = 60
    #: lognormal median / sigma of per-step CPU seconds
    step_cpu_median_s: float = 0.35
    step_cpu_sigma: float = 0.45
    memory_grades_mb: Tuple[int, ...] = (1024, 2048)
    sync_every: int = 5


#: one scheduled submission: (sim time, job spec)
Submission = Tuple[float, JobSpec]


def diurnal_rate(
    profile: TrafficProfile, t: float, bursts: List[Tuple[float, float]]
) -> float:
    """Submissions/second at sim time ``t`` given active burst windows."""
    cycle = 2.0 * math.pi * (t - profile.peak_time_s) / profile.period_s
    rate = (profile.mean_rate_per_h / 3600.0) * (
        1.0 + profile.diurnal_amplitude * math.cos(cycle)
    )
    for start, end in bursts:
        if start <= t < end:
            rate *= profile.burst_multiplier
    return rate


def _tenant_bursts(
    profile: TrafficProfile, rng, horizon_s: float
) -> List[Tuple[float, float]]:
    """Deterministic burst windows (homogeneous Poisson starts)."""
    bursts: List[Tuple[float, float]] = []
    rate_per_s = profile.bursts_per_h / 3600.0
    if rate_per_s <= 0:
        return bursts
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= horizon_s:
            return bursts
        bursts.append((t, t + profile.burst_len_s))


def _tenant_arrivals(
    tenant: Tenant,
    profile: TrafficProfile,
    sizes: JobSizeProfile,
    streams: RandomStreams,
    horizon_s: float,
) -> List[Submission]:
    """Thinned inhomogeneous Poisson arrivals + sampled job sizes."""
    arrival_rng = streams.stream(f"platform.arrivals.{tenant.tenant_id}")
    size_rng = streams.stream(f"platform.jobs.{tenant.tenant_id}")
    bursts = _tenant_bursts(profile, arrival_rng, horizon_s)
    peak_rate = (
        (profile.mean_rate_per_h / 3600.0)
        * (1.0 + profile.diurnal_amplitude)
        * max(profile.burst_multiplier, 1.0)
    )
    out: List[Submission] = []
    t = 0.0
    seq = 0
    while True:
        t += float(arrival_rng.exponential(1.0 / peak_rate))
        if t >= horizon_s:
            return out
        # Thinning: accept with probability rate(t)/peak_rate.  The draw
        # happens for every candidate, so acceptance of one arrival never
        # shifts the RNG stream consumed by later candidates.
        u = float(arrival_rng.random())
        if u * peak_rate > diurnal_rate(profile, t, bursts):
            continue
        n_workers = int(size_rng.integers(sizes.min_workers, sizes.max_workers + 1))
        steps = int(size_rng.integers(sizes.min_steps, sizes.max_steps + 1))
        step_cpu = float(
            size_rng.lognormal(
                math.log(sizes.step_cpu_median_s), sizes.step_cpu_sigma
            )
        )
        grade = sizes.memory_grades_mb[
            int(size_rng.integers(0, len(sizes.memory_grades_mb)))
        ]
        out.append(
            (
                t,
                JobSpec(
                    job_id=f"{tenant.tenant_id}/job-{seq:04d}",
                    tenant_id=tenant.tenant_id,
                    n_workers=n_workers,
                    steps=steps,
                    step_cpu_s=step_cpu,
                    memory_mb=grade,
                    sync_every=sizes.sync_every,
                ),
            )
        )
        seq += 1


def generate_arrivals(
    tenants: List[Tenant],
    profile: TrafficProfile,
    sizes: JobSizeProfile,
    streams: RandomStreams,
    horizon_s: float,
) -> List[Submission]:
    """The full submission schedule, sorted by (time, job id).

    The tie-break on job id makes the order total, so equal-timestamp
    submissions from different tenants enqueue identically in every run.
    """
    merged: List[Submission] = []
    for tenant in tenants:
        merged.extend(_tenant_arrivals(tenant, profile, sizes, streams, horizon_s))
    merged.sort(key=lambda sub: (sub[0], sub[1].job_id))
    return merged
