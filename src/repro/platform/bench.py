"""The platform-scale benchmark: jobs/hour, p95 queue wait, cost/job.

Unlike the kernel microbenchmarks (``repro.bench.ops``), the unit of
work here is a whole multi-tenant scenario: hundreds of jobs from
dozens of tenants through the queue, the fair-share scheduler, the
shared pool and the invoicing pipeline.  Two ops are timed and
checksummed:

* ``platform.shared_diurnal`` — the shared multi-tenant platform under
  the default diurnal/bursty traffic;
* ``platform.isolated_baseline`` — the same jobs priced with naive
  per-job isolation (own platform, own cold starts, own idle tails).

Checksums cover the scenario's bit-exact monitor trace digest *and*
every reported metric (``float.hex`` encoded), so CI's committed
baseline catches any scheduling, billing, or RNG drift, not just a
changed headline number.  The checksums are portable: the simulation is
scalar sequential float math plus numpy ``Generator`` draws, both
bit-stable across the CPython/numpy builds CI runs (the repo's only
non-portable op is the SIMD-reassociated e2e einsum).

``--quick`` cuts timing repetitions only — never the scenario size — so
quick-mode checksums compare against a full-mode baseline.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..bench.runner import BenchOp, checksum_bytes, run_suite
from .scenario import (
    ScenarioConfig,
    ScenarioResult,
    run_isolated_baseline,
    run_scenario,
)

__all__ = ["build_ops", "run_platform_suite", "metrics_checksum"]


def metrics_checksum(metrics: Dict[str, float], digest: str = "") -> str:
    """sha256 over a metrics dict (bit-exact floats) and a trace digest."""
    chunks = [digest.encode()]
    for key in sorted(metrics):
        chunks.append(f"{key}={float(metrics[key]).hex()}".encode())
    return checksum_bytes(*chunks)


def _shared_checksum(result: ScenarioResult) -> str:
    return metrics_checksum(result.metrics, result.digest)


def _isolated_checksum(metrics: Dict[str, float]) -> str:
    return metrics_checksum(metrics)


def build_ops(config: ScenarioConfig):
    """The two platform-scale benchmark ops over ``config``."""
    return [
        BenchOp(
            name="platform.shared_diurnal",
            group="platform",
            make_state=lambda: config,
            run=lambda state, _payload: run_scenario(state),
            checksum=_shared_checksum,
            portable=True,
            note="multi-tenant shared pool under diurnal+burst traffic",
        ),
        BenchOp(
            name="platform.isolated_baseline",
            group="platform",
            make_state=lambda: config,
            run=lambda state, _payload: run_isolated_baseline(state),
            checksum=_isolated_checksum,
            portable=True,
            note="same jobs, naive per-job isolation (cost baseline)",
        ),
    ]


def run_platform_suite(
    name: str = "platform",
    quick: bool = False,
    seed: int = 0,
    config: Optional[ScenarioConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the platform benchmark into a ``BENCH_<name>.json`` document.

    The document is the standard bench schema (so ``python -m repro.bench
    --compare`` works on it unchanged) plus a ``platform`` section with
    the scenario config, the determinism digest, and the headline
    metrics — including the shared-vs-isolated cost comparison.
    """
    if config is None:
        config = ScenarioConfig(seed=seed)
    doc = run_suite(build_ops(config), name=name, quick=quick, progress=progress)

    # Determinism oracle: the digest must be bit-identical across runs.
    first = run_scenario(config)
    second = run_scenario(config)
    if first.digest != second.digest:
        raise RuntimeError(
            "platform scenario is not deterministic: same-seed runs produced "
            f"digests {first.digest[:12]}… and {second.digest[:12]}…"
        )
    isolated = run_isolated_baseline(config)

    shared_per_job = first.metrics["cost_per_job_shared_usd"]
    isolated_per_job = isolated["cost_per_job_isolated_usd"]
    savings_pct = (
        100.0 * (1.0 - shared_per_job / isolated_per_job)
        if isolated_per_job > 0
        else 0.0
    )
    doc["platform"] = {
        "config": {
            "seed": config.seed,
            "n_tenants": config.n_tenants,
            "horizon_s": config.horizon_s,
            "pool_concurrency": config.pool_concurrency,
            "memory_grades_mb": list(config.memory_grades_mb),
            "keep_alive_s": config.keep_alive_s,
            "scale_to_zero_after_s": config.scale_to_zero_after_s,
            "max_skips": config.max_skips,
            "mean_rate_per_h": config.traffic.mean_rate_per_h,
        },
        "digest": first.digest,
        "metrics": {k: first.metrics[k] for k in sorted(first.metrics)},
        "isolated": {k: isolated[k] for k in sorted(isolated)},
        "comparison": {
            "cost_per_job_shared_usd": shared_per_job,
            "cost_per_job_isolated_usd": isolated_per_job,
            "savings_pct": savings_pct,
        },
    }
    return doc
