"""Multi-tenant training platform over the simulated FaaS substrate.

Many tenants submit training jobs into an event-driven admission queue;
a weighted fair-share scheduler packs them onto one shared FaaS pool
(warm containers reused *across* tenants, scale-to-zero when idle); the
consolidated cloud bill is split back into per-tenant invoices with
idle-cost attribution.  The package's benchmark
(``python -m repro.platform``) reports the platform's economics —
jobs/hour, p95 queue wait, and cost per job against naive per-job
isolation — as a digest-stable ``BENCH_platform.json``.

Data flow::

    arrivals (diurnal + bursts, per-tenant seed streams)
        -> JobQueue (per-tenant FIFOs)
        -> FairShareScheduler (attained-service ranking, skip aging)
        -> SharedPool (FaaSPlatform: warm reuse, scale-to-zero)
        -> FaaSBilling + container log
        -> build_invoices (per-tenant active + idle line items)
"""

from .arrivals import JobSizeProfile, TrafficProfile, generate_arrivals
from .billing import (
    InvoiceReport,
    PoolEconomics,
    TenantInvoice,
    build_invoices,
    container_idle_intervals,
)
from .jobs import JobRecord, JobSpec, training_job_machine
from .pool import PoolRuntime, SharedPool
from .queue import JobQueue
from .scenario import (
    ScenarioConfig,
    ScenarioResult,
    percentile,
    run_isolated_baseline,
    run_scenario,
)
from .scheduler import FairShareScheduler
from .tenants import PRIORITY_CLASSES, Tenant, make_tenant_fleet

__all__ = [
    "TrafficProfile",
    "JobSizeProfile",
    "generate_arrivals",
    "InvoiceReport",
    "PoolEconomics",
    "TenantInvoice",
    "build_invoices",
    "container_idle_intervals",
    "JobSpec",
    "JobRecord",
    "training_job_machine",
    "PoolRuntime",
    "SharedPool",
    "JobQueue",
    "FairShareScheduler",
    "ScenarioConfig",
    "ScenarioResult",
    "percentile",
    "run_scenario",
    "run_isolated_baseline",
    "Tenant",
    "PRIORITY_CLASSES",
    "make_tenant_fleet",
]
