"""Fair-share scheduler: packs queued jobs onto the shared pool.

**Policy.**  Every tenant accrues *attained service*: each dispatched
job charges its a-priori demand estimate divided by the tenant's share
weight (priority class x tenant weight — see
:mod:`repro.platform.tenants`).  At each scheduling point the head job
of every backlogged tenant is ranked by ``(attained, tenant_id)`` and
the first head that fits the pool's free slots is dispatched.  Heavier
shares divide harder, accrue slower, and therefore win ties more often
— weighted max-min fairness over submitted demand.

**Starvation control.**  A big job can be starved by first-fit backfill:
smaller jobs keep slipping past it while the pool never drains enough.
Every time a ranked head is passed over it ages by one *skip*; at
``max_skips`` the head *seals* the sweep — nothing ranked at or after it
may backfill until the pool drains enough to fit it.  Because admission
validates ``n_workers <= pool capacity``, the sealed head always fits
eventually, so no job waits forever.

**Event discipline.**  The scheduler is purely event-driven: it sweeps
on submission and on job completion (a wake event per scheduling point),
never on a polling tick, so an idle platform schedules zero events —
scale-to-zero applies to the control plane too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import Environment, Event, Monitor
from .jobs import JobRecord
from .queue import JobQueue
from .tenants import Tenant

__all__ = ["FairShareScheduler"]


class FairShareScheduler:
    """Weighted fair-share + first-fit backfill over a shared pool."""

    def __init__(
        self,
        env: Environment,
        pool,
        queue: Optional[JobQueue] = None,
        tenants: Sequence[Tenant] = (),
        max_skips: int = 8,
        monitor: Optional[Monitor] = None,
    ):
        self.env = env
        self.pool = pool
        self.queue = queue if queue is not None else JobQueue()
        self.max_skips = max_skips
        self.monitor = monitor
        self._share: Dict[str, float] = {
            t.tenant_id: t.share_weight for t in tenants
        }
        #: normalized attained service per tenant (demand / share weight)
        self.attained: Dict[str, float] = {t: 0.0 for t in self._share}
        self.completed: List[JobRecord] = []
        self.wakeups = 0
        self.dispatches = 0
        self._wake: Event = env.event()
        env.process(self._loop(), name="platform.scheduler")

    # -- submission ------------------------------------------------------
    def submit(self, record: JobRecord) -> None:
        """Admit a job into its tenant's queue and schedule a sweep."""
        tenant = record.spec.tenant_id
        if tenant not in self._share:
            raise KeyError(f"unknown tenant {tenant!r}")
        record.spec.validate(self.pool.capacity)
        record.submitted_at = self.env.now
        self.queue.push(record)
        if self.monitor is not None:
            self.monitor.record(
                "platform.queue_depth", self.env.now, float(len(self.queue))
            )
        self.kick()

    def kick(self) -> None:
        """Request a sweep (idempotent until the scheduler wakes)."""
        if not self._wake.triggered:
            self._wake.succeed()

    # -- the scheduling loop ---------------------------------------------
    def _loop(self):
        while True:
            yield self._wake
            self._wake = self.env.event()
            self.wakeups += 1
            self._sweep()

    def _sweep(self) -> None:
        """Dispatch ranked head jobs until nothing fits (or a seal stops us)."""
        while self.queue:
            free = self.pool.free_slots
            if free <= 0:
                return
            ranked = sorted(
                self.queue.heads(),
                key=lambda item: (self.attained[item[0]], item[0]),
            )
            dispatched = False
            for tenant_id, record in ranked:
                if record.spec.n_workers <= free:
                    self.queue.pop_head(tenant_id)
                    self.attained[tenant_id] += (
                        record.spec.demand / self._share[tenant_id]
                    )
                    self.dispatches += 1
                    if self.monitor is not None:
                        self.monitor.record(
                            "platform.queue_depth",
                            self.env.now,
                            float(len(self.queue)),
                        )
                    self.pool.launch(record, self._job_finished)
                    dispatched = True
                    break
                if record.skips >= self.max_skips:
                    # Sealed: this head has been passed over too often.
                    # No backfill past it — wait for the pool to drain.
                    return
                record.skips += 1
            if not dispatched:
                return

    def _job_finished(self, record: JobRecord) -> None:
        """Pool callback: a job's workers all returned."""
        self.completed.append(record)
        if self.monitor is not None:
            self.monitor.record(
                "platform.completed", self.env.now, float(record.ordinal)
            )
            # Queue wait in the digest trace: any scheduling divergence
            # between two same-seed runs shows up bit-exactly here.
            self.monitor.record(
                "platform.queue_wait", self.env.now, record.queue_wait
            )
        self.kick()

    def __repr__(self) -> str:
        return (
            f"<FairShareScheduler queued={len(self.queue)} "
            f"dispatched={self.dispatches} completed={len(self.completed)}>"
        )
