"""The shared FaaS pool all tenants' jobs execute on.

One :class:`~repro.faas.FaaSPlatform` instance, one concurrency cap,
one warm-container pool per memory grade — shared across every tenant.
That sharing is the whole economic argument of the platform: a job
often lands on containers a *different* tenant's job paid to boot, so
the fleet amortises cold starts and keep-alive idle that per-job
isolation would each pay alone.

The pool also models **scale-to-zero**: when no activation is running
and nothing new arrives for ``scale_to_zero_after_s``, every idle warm
container is reclaimed (:meth:`~repro.faas.FaaSPlatform.reclaim_warm`),
ending its billable idle tail early — and honestly re-charging the next
burst's cold starts inside the simulation.

Admission is strict: the pool wraps the platform with
``queue_when_full=False``, so a scheduler bug that overshoots the
concurrency cap raises immediately instead of silently queueing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from ..faas import ColdStartModel, FaaSLimits, FaaSPlatform, FunctionSpec
from ..faas.billing import FaaSBilling
from ..sim import Environment, Monitor, RandomStreams
from ..storage import KVStore
from .jobs import JobRecord, training_job_machine

__all__ = ["PoolRuntime", "SharedPool"]


class PoolRuntime:
    """Service handles a platform job machine reaches through ``ctx.services``."""

    __slots__ = ("kv",)

    def __init__(self, kv: KVStore):
        self.kv = kv


class SharedPool:
    """A multi-tenant FaaS pool running platform training jobs."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        kv: KVStore,
        concurrency: int = 16,
        memory_grades_mb: Sequence[int] = (1024, 2048),
        keep_alive_s: float = 180.0,
        scale_to_zero_after_s: float = 0.0,
        billing: Optional[FaaSBilling] = None,
        tracer=None,
        monitor: Optional[Monitor] = None,
        label: str = "pool",
    ):
        self.env = env
        self.monitor = monitor
        self.keep_alive_s = keep_alive_s
        self.scale_to_zero_after_s = scale_to_zero_after_s
        self.runtime = PoolRuntime(kv)
        limits = FaaSLimits(max_concurrency=concurrency)
        cold_start = ColdStartModel(keep_alive=keep_alive_s)
        self.platform = FaaSPlatform(
            env,
            streams,
            limits=limits,
            cold_start=cold_start,
            billing=billing,
            queue_when_full=False,
            tracer=tracer,
            label=label,
        )
        for grade in sorted(set(memory_grades_mb)):
            self.platform.register(
                FunctionSpec(
                    name=self.function_name(grade),
                    handler=self._make_handler(),
                    memory_mb=grade,
                )
            )
        #: ``(pool label, activation id) -> (tenant id, job id)`` — how
        #: per-tenant billing claims each activation on the shared bill
        self.owners: Dict[Tuple[str, int], Tuple[str, str]] = {}
        self.jobs_launched = 0
        self.cold_activations = 0
        self.warm_activations = 0
        self._last_activity = env.now
        self._idle_timer_running = False

    def _make_handler(self):
        runtime = self.runtime

        def handler(ctx, payload):
            from ..exec.sim import SimExecutionContext, drive

            return drive(
                training_job_machine(SimExecutionContext(ctx, runtime), payload)
            )

        handler.__name__ = "platform_trainer_handler"
        return handler

    @staticmethod
    def function_name(memory_mb: int) -> str:
        return f"trainer-{memory_mb}"

    # -- capacity --------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.platform.limits.max_concurrency

    @property
    def free_slots(self) -> int:
        return self.capacity - self.platform.running_count

    # -- launching -------------------------------------------------------
    def launch(
        self, record: JobRecord, on_done: Callable[[JobRecord], None]
    ) -> None:
        """Start all of a job's worker activations (must fit right now)."""
        spec = record.spec
        if spec.n_workers > self.free_slots:
            raise RuntimeError(
                f"{spec.job_id}: needs {spec.n_workers} slots, "
                f"only {self.free_slots} free — scheduler admission bug"
            )
        record.started_at = self.env.now
        self._last_activity = self.env.now
        self.jobs_launched += 1
        function = self.function_name(spec.memory_mb)
        activations = []
        for worker in range(spec.n_workers):
            activation = self.platform.invoke(
                function,
                {
                    "job_id": spec.job_id,
                    "tenant_id": spec.tenant_id,
                    "worker": worker,
                    "steps": spec.steps,
                    "step_cpu_s": spec.step_cpu_s,
                    "sync_every": spec.sync_every,
                },
            )
            record.activation_ids.append(activation.activation_id)
            self.owners[(self.platform.label, activation.activation_id)] = (
                spec.tenant_id,
                spec.job_id,
            )
            activations.append(activation)
        if self.monitor is not None:
            self.monitor.record(
                "platform.running",
                self.env.now,
                float(self.platform.running_count),
            )
        self.env.process(
            self._join(record, activations, on_done),
            name=f"platform.join.{spec.job_id}",
        )

    def _join(self, record, activations, on_done):
        """Wait for every worker of one job; then report completion."""
        ok = True
        for activation in activations:
            try:
                yield activation.process
            except Exception:
                # The worker failed (duration cap, injected crash, ...);
                # the job fails but later workers are still joined so the
                # job never "completes" while its activations run on.
                ok = False
        record.finished_at = self.env.now
        record.ok = ok
        for activation in activations:
            if activation.cold:
                self.cold_activations += 1
            else:
                self.warm_activations += 1
        self._last_activity = self.env.now
        if self.monitor is not None:
            self.monitor.record(
                "platform.running",
                self.env.now,
                float(self.platform.running_count),
            )
        on_done(record)
        self._maybe_start_idle_timer()

    # -- scale-to-zero ---------------------------------------------------
    def _maybe_start_idle_timer(self) -> None:
        if self.scale_to_zero_after_s <= 0 or self._idle_timer_running:
            return
        if self.platform.running_count > 0 or self.platform.warm_count() == 0:
            return
        self._idle_timer_running = True
        self.env.process(self._idle_timer(), name="platform.scale_to_zero")

    def _idle_timer(self):
        """Reclaim all warm containers once the pool has sat idle long enough.

        The timer sleeps to ``last activity + S`` and re-checks; new
        launches push the target forward, and a busy pool cancels the
        timer (a fresh one starts at the next idle moment).  This keeps
        the control plane event-driven — no periodic polling tick.
        """
        try:
            while True:
                target = self._last_activity + self.scale_to_zero_after_s
                if self.env.now < target:
                    yield self.env.timeout(target - self.env.now)
                    continue
                if self.platform.running_count > 0:
                    return  # busy again; a new timer starts at next idle
                if self.platform.warm_count() > 0:
                    reclaimed = self.platform.reclaim_warm()
                    if self.monitor is not None:
                        self.monitor.record(
                            "platform.reclaimed",
                            self.env.now,
                            float(len(reclaimed)),
                        )
                return
        finally:
            self._idle_timer_running = False

    def __repr__(self) -> str:
        return (
            f"<SharedPool cap={self.capacity} free={self.free_slots} "
            f"jobs={self.jobs_launched}>"
        )
