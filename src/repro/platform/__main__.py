"""``python -m repro.platform`` — the platform benchmark CLI."""

import sys

from .cli import main

sys.exit(main())
