"""Tenants of the multi-tenant training platform.

A tenant is a billing identity with a scheduling share.  The share is
``class weight x tenant weight``: priority classes give order-of-magnitude
separation (a premium tenant outweighs a batch tenant 16:1), the tenant
weight tunes within a class.  The fair-share scheduler charges each
dispatched job's service demand *divided by* the share, so a heavier
tenant accrues attained service more slowly and is picked more often.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["PRIORITY_CLASSES", "Tenant", "make_tenant_fleet"]

#: priority class -> scheduling weight multiplier
PRIORITY_CLASSES: Dict[str, float] = {
    "batch": 1.0,
    "standard": 4.0,
    "premium": 16.0,
}


@dataclass(frozen=True)
class Tenant:
    """One platform customer: identity, priority class, intra-class weight."""

    tenant_id: str
    priority: str = "standard"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority {self.priority!r} "
                f"(expected one of {sorted(PRIORITY_CLASSES)})"
            )
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    @property
    def share_weight(self) -> float:
        """Effective fair-share weight (class multiplier x tenant weight)."""
        return PRIORITY_CLASSES[self.priority] * self.weight


def make_tenant_fleet(n: int, prefix: str = "tenant") -> List[Tenant]:
    """A deterministic fleet of ``n`` tenants with a realistic class mix.

    Every 6th tenant is premium, every 3rd (non-premium) is batch, the
    rest are standard — roughly 17% / 28% / 55%, matching the shape of a
    small production platform without any RNG draw.
    """
    if n < 1:
        raise ValueError(f"need at least one tenant, got {n}")
    fleet: List[Tenant] = []
    for i in range(n):
        if i % 6 == 5:
            priority = "premium"
        elif i % 3 == 2:
            priority = "batch"
        else:
            priority = "standard"
        fleet.append(Tenant(f"{prefix}-{i:03d}", priority=priority))
    return fleet
