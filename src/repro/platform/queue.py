"""The platform's admission queue: per-tenant FIFOs.

The queue holds jobs that have been submitted but not yet dispatched.
It is a pure data structure — the scheduler owns all event-driven
control flow — organised as one FIFO per tenant so fair-share ranking
can look at each tenant's *head* job without scanning whole backlogs.
Tenant iteration order is sorted, never insertion or dict order, so the
schedule is independent of submission interleavings.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Tuple

from .jobs import JobRecord

__all__ = ["JobQueue"]


class JobQueue:
    """Per-tenant FIFO queues of :class:`~repro.platform.jobs.JobRecord`."""

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[JobRecord]] = {}
        self._depth = 0

    def push(self, record: JobRecord) -> None:
        tenant = record.spec.tenant_id
        if tenant not in self._queues:
            self._queues[tenant] = deque()
        self._queues[tenant].append(record)
        self._depth += 1

    def pop_head(self, tenant_id: str) -> JobRecord:
        """Dequeue the given tenant's head job (must exist)."""
        queue = self._queues[tenant_id]
        record = queue.popleft()
        self._depth -= 1
        if not queue:
            del self._queues[tenant_id]
        return record

    def heads(self) -> Iterator[Tuple[str, JobRecord]]:
        """Head job of every non-empty tenant queue, in sorted tenant order."""
        for tenant_id in sorted(self._queues):
            yield tenant_id, self._queues[tenant_id][0]

    def backlog(self, tenant_id: str) -> int:
        queue = self._queues.get(tenant_id)
        return len(queue) if queue is not None else 0

    def tenants_waiting(self) -> List[str]:
        return sorted(self._queues)

    def __len__(self) -> int:
        return self._depth

    def __bool__(self) -> bool:
        return self._depth > 0

    def __repr__(self) -> str:
        return f"<JobQueue depth={self._depth} tenants={len(self._queues)}>"
