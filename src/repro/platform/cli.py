"""Command-line interface for the multi-tenant platform benchmark.

Run the platform-scale benchmark and write ``BENCH_<name>.json``::

    python -m repro.platform --name platform
    python -m repro.platform --quick --name platform_ci --out artifacts/

(also reachable as ``python -m repro.bench platform ...``).

Diff a run against the committed baseline (CI's drift gate)::

    python -m repro.platform --compare BENCH_platform.json \
        artifacts/BENCH_platform_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..bench.runner import compare, write_results
from .bench import run_platform_suite

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.platform",
        description="Multi-tenant training platform benchmark "
        "(jobs/hour, p95 queue wait, cost/job vs per-job isolation).",
    )
    parser.add_argument(
        "--name", default="platform", help="result name: writes BENCH_<name>.json"
    )
    parser.add_argument("--out", default=".", help="output directory (default: .)")
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer timing repetitions, identical scenario (checksums comparable)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "NEW"),
        help="diff two BENCH_platform JSON files instead of running",
    )
    return parser


def _run_compare(baseline_path: str, new_path: str) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(new_path) as handle:
        new = json.load(handle)
    # No speed gate — the platform bench gates on checksum drift only
    # (its runtime is scenario-dominated, not kernel-dominated).
    result = compare(baseline, new, min_speedup=0.0, portable_only=True)
    print(f"compare: {baseline['name']} -> {new['name']}")
    for line in result.lines:
        print(f"  {line}")
    print("PASS: checksums intact" if result.ok else "FAIL: see lines above")
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.compare:
        return _run_compare(*args.compare)
    doc = run_platform_suite(
        name=args.name,
        quick=args.quick,
        seed=args.seed,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    path = write_results(doc, args.out)
    for entry in doc["ops"]:
        print(
            f"  {entry['p50_ns'] / 1e6:10.3f} ms p50  "
            f"{entry['p95_ns'] / 1e6:10.3f} ms p95  {entry['op']}"
        )
    section = doc["platform"]
    metrics = section["metrics"]
    comparison = section["comparison"]
    print(
        f"  jobs={metrics['jobs']:.0f} tenants={metrics['tenants']:.0f} "
        f"jobs/hour={metrics['jobs_per_hour']:.1f}"
    )
    print(
        f"  queue wait p50={metrics['queue_wait_p50_s']:.2f}s "
        f"p95={metrics['queue_wait_p95_s']:.2f}s "
        f"mean={metrics['queue_wait_mean_s']:.2f}s"
    )
    print(
        f"  cost/job shared=${comparison['cost_per_job_shared_usd']:.6f} "
        f"isolated=${comparison['cost_per_job_isolated_usd']:.6f} "
        f"savings={comparison['savings_pct']:.1f}%"
    )
    print(f"  digest={section['digest']}")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
