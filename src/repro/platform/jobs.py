"""Platform job specifications, lifecycle records, and the job machine.

A platform job is a data-parallel training run: ``n_workers`` function
activations, each stepping through ``steps`` mini-batch updates of
``step_cpu_s`` CPU-seconds and periodically publishing a model update to
the shared KV store.  The worker logic is a *backend-neutral machine* in
the PR-5 style — a plain generator yielding service-call tokens through
:class:`repro.exec.protocols.ExecutionContext` — so the shared pool
drives it under the common DES exactly like the MLLess training roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..exec.protocols import ExecutionContext, Machine

__all__ = ["JobSpec", "JobRecord", "training_job_machine"]


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one submitted training job."""

    job_id: str
    tenant_id: str
    n_workers: int
    steps: int
    step_cpu_s: float
    memory_mb: int = 2048
    #: publish a model update to the KV store every this many steps
    #: (0 disables update traffic)
    sync_every: int = 5

    def validate(self, max_concurrency: int) -> None:
        if self.n_workers < 1:
            raise ValueError(f"{self.job_id}: n_workers must be >= 1")
        if self.n_workers > max_concurrency:
            raise ValueError(
                f"{self.job_id}: needs {self.n_workers} slots but the pool "
                f"only has {max_concurrency} — the job could never be admitted"
            )
        if self.steps < 1:
            raise ValueError(f"{self.job_id}: steps must be >= 1")
        if self.step_cpu_s <= 0:
            raise ValueError(f"{self.job_id}: step_cpu_s must be positive")
        if self.sync_every < 0:
            raise ValueError(f"{self.job_id}: sync_every must be >= 0")

    @property
    def demand(self) -> float:
        """Estimated service demand (CPU-seconds across all workers).

        The fair-share scheduler charges this against the tenant's share
        at dispatch time; using the a-priori estimate (not the measured
        runtime) keeps the schedule independent of execution noise.
        """
        return self.n_workers * self.steps * self.step_cpu_s


@dataclass
class JobRecord:
    """Mutable lifecycle of one job as the platform processes it."""

    spec: JobSpec
    #: global submission ordinal (stable across runs; used in digests)
    ordinal: int
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    ok: bool = False
    #: times the scheduler ranked this job first-fit-eligible but could
    #: not place it; at ``max_skips`` the job seals the backfill queue
    skips: int = 0
    #: activation ids of the job's worker activations, in worker order
    activation_ids: List[int] = field(default_factory=list)

    @property
    def queue_wait(self) -> float:
        if self.submitted_at is None or self.started_at is None:
            raise ValueError(f"{self.spec.job_id} has not started")
        return self.started_at - self.submitted_at

    @property
    def run_time(self) -> float:
        if self.started_at is None or self.finished_at is None:
            raise ValueError(f"{self.spec.job_id} has not finished")
        return self.finished_at - self.started_at

    @property
    def done(self) -> bool:
        return self.finished_at is not None


def training_job_machine(ctx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """One worker shard of a platform training job (backend-neutral).

    ``payload`` carries the shard assignment: ``job_id``, ``tenant_id``,
    ``worker`` (shard index), ``steps``, ``step_cpu_s``, ``sync_every``.
    Each step charges CPU time; every ``sync_every``-th step publishes an
    update to the KV store (shared data-plane traffic, so concurrent
    jobs contend on the same simulated service).  The worker's invoke
    span is annotated with the job/tenant identity, which is what lets
    the tenant ledger slice the platform bill per customer.
    """
    job_id = payload["job_id"]
    tenant_id = payload["tenant_id"]
    worker = payload["worker"]
    steps = payload["steps"]
    step_cpu_s = payload["step_cpu_s"]
    sync_every = payload.get("sync_every", 0)
    ctx.annotate(job=job_id, tenant=tenant_id, worker=worker)
    for step in range(steps):
        yield ctx.services.compute(step_cpu_s)
        if sync_every and (step + 1) % sync_every == 0:
            yield ctx.services.kv_set(
                f"platform/{job_id}/w{worker}/u{step + 1}", float(step + 1)
            )
    # Final model shard publish: the job's result artifact.
    yield ctx.services.kv_set(f"platform/{job_id}/w{worker}/final", float(steps))
    return {"job": job_id, "worker": worker, "steps": steps}
