"""End-to-end platform scenarios: shared pool vs per-job isolation.

:func:`run_scenario` wires the whole tentpole together — tenant fleet,
diurnal arrivals, admission queue, fair-share scheduler, shared pool
with scale-to-zero, per-tenant invoices — in one fresh simulation
world, and measures the platform-scale metrics the benchmark reports:
jobs/hour, queue-wait percentiles, and cost per job.

:func:`run_isolated_baseline` prices the counterfactual: every job on
its own single-tenant platform (fresh environment, forked RNG registry
per job), paying its own cold starts and its own full keep-alive idle
tail, with nobody to share warm containers with.  The shared/isolated
cost ratio is the platform's economic headline.

Determinism: the scenario records scheduling decisions, queue depths
and completions into a traced :class:`~repro.sim.Monitor`; two runs of
the same config must produce bit-identical ``trace_digest()`` values
(enforced by the benchmark harness and the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..faas.billing import FaaSBilling
from ..sim import Environment, Monitor, RandomStreams
from ..storage import KVStore
from .arrivals import JobSizeProfile, TrafficProfile, generate_arrivals
from .billing import InvoiceReport, PoolEconomics, build_invoices
from .jobs import JobRecord
from .pool import SharedPool
from .queue import JobQueue
from .scheduler import FairShareScheduler
from .tenants import make_tenant_fleet

__all__ = ["ScenarioConfig", "ScenarioResult", "run_scenario",
           "run_isolated_baseline", "percentile"]


@dataclass(frozen=True)
class ScenarioConfig:
    """One platform-scale experiment, fully determined by its fields."""

    seed: int = 0
    n_tenants: int = 24
    horizon_s: float = 7200.0
    #: sized so the diurnal peak (plus bursts) queues jobs for real —
    #: p95 queue wait is a headline metric, so the default scenario must
    #: actually contend for the pool
    pool_concurrency: int = 12
    memory_grades_mb: tuple = (1024, 2048)
    keep_alive_s: float = 180.0
    scale_to_zero_after_s: float = 60.0
    max_skips: int = 8
    traffic: TrafficProfile = TrafficProfile(mean_rate_per_h=9.0)
    sizes: JobSizeProfile = JobSizeProfile(max_workers=6)
    economics: PoolEconomics = PoolEconomics()


@dataclass
class ScenarioResult:
    """Everything a benchmark or test wants from one scenario run."""

    config: ScenarioConfig
    #: bit-exact digest of the run's scheduling/monitor trace
    digest: str
    metrics: Dict[str, float]
    records: List[JobRecord] = field(default_factory=list)
    report: InvoiceReport = None
    monitor: Monitor = None


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        raise ValueError("percentile of an empty list")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"q must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = int(-(-q * len(ordered) // 100))  # ceil without math import
    return ordered[rank - 1]


def run_scenario(config: ScenarioConfig = ScenarioConfig()) -> ScenarioResult:
    """Run the shared multi-tenant platform scenario to completion."""
    env = Environment()
    streams = RandomStreams(seed=config.seed)
    monitor = Monitor(trace=True)
    tenants = make_tenant_fleet(config.n_tenants)
    arrivals = generate_arrivals(
        tenants, config.traffic, config.sizes, streams, config.horizon_s
    )
    records = [
        JobRecord(spec=spec, ordinal=i) for i, (_, spec) in enumerate(arrivals)
    ]
    kv = KVStore(env, streams)
    pool = SharedPool(
        env,
        streams,
        kv,
        concurrency=config.pool_concurrency,
        memory_grades_mb=config.memory_grades_mb,
        keep_alive_s=config.keep_alive_s,
        scale_to_zero_after_s=config.scale_to_zero_after_s,
        # The platform pays the cloud at the scenario's configured rate;
        # invoices re-bill at the same rate, so reconcile() stays exact
        # whatever pricing table the scenario declares.
        billing=FaaSBilling(rate_per_gb_s=config.economics.rate_per_gb_s),
        monitor=monitor,
        label="pool",
    )
    scheduler = FairShareScheduler(
        env,
        pool,
        queue=JobQueue(),
        tenants=tenants,
        max_skips=config.max_skips,
        monitor=monitor,
    )

    def submitter():
        for (at, _), record in zip(arrivals, records):
            if at > env.now:
                yield env.timeout(at - env.now)
            scheduler.submit(record)

    env.process(submitter(), name="platform.submitter")
    env.run()

    completed = scheduler.completed
    if len(completed) != len(records):
        raise RuntimeError(
            f"platform run lost jobs: {len(completed)}/{len(records)} completed"
        )
    makespan = max(r.finished_at for r in completed)
    waits = [r.queue_wait for r in completed]
    report = build_invoices(
        pool.platform.billing,
        pool.platform.container_log,
        pool.owners,
        pool_label=pool.platform.label,
        keep_alive_s=config.keep_alive_s,
        horizon_s=env.now,
        economics=config.economics,
        tenants=[t.tenant_id for t in tenants],
    )
    reconciled = report.reconcile()
    shared_cloud = report.billing_total_cost
    shared_total = shared_cloud + report.idle_cost_total
    n_jobs = len(completed)
    total_activations = pool.cold_activations + pool.warm_activations
    metrics: Dict[str, float] = {
        "jobs": float(n_jobs),
        "tenants": float(config.n_tenants),
        "jobs_per_hour": n_jobs / (makespan / 3600.0),
        "queue_wait_p50_s": percentile(waits, 50.0),
        "queue_wait_p95_s": percentile(waits, 95.0),
        "queue_wait_mean_s": sum(waits) / n_jobs,
        "makespan_s": makespan,
        "shared_cloud_cost_usd": shared_cloud,
        "shared_idle_cost_usd": report.idle_cost_total,
        "shared_total_cost_usd": shared_total,
        "cost_per_job_shared_usd": shared_total / n_jobs,
        "cold_activations": float(pool.cold_activations),
        "warm_activations": float(pool.warm_activations),
        "cold_fraction": (
            pool.cold_activations / total_activations
            if total_activations > 0
            else 0.0
        ),
        "scheduler_wakeups": float(scheduler.wakeups),
        "scheduler_dispatches": float(scheduler.dispatches),
        "unattributed_cost_usd": report.unattributed_cost,
        "attributed_fraction": reconciled["attributed_fraction"],
        "billing_abs_error_usd": reconciled["abs_error"],
    }
    return ScenarioResult(
        config=config,
        digest=monitor.trace_digest(),
        metrics=metrics,
        records=records,
        report=report,
        monitor=monitor,
    )


def run_isolated_baseline(config: ScenarioConfig = ScenarioConfig()) -> Dict[str, float]:
    """Price the same jobs with per-job isolation (the naive baseline).

    Each job gets a brand-new single-tenant world: its own platform (same
    concurrency cap and keep-alive), its own cold starts, and a full
    keep-alive idle tail after its last activation releases — there is no
    later job to hand the warm containers to, and no platform operator
    running scale-to-zero on its behalf.  RNG registries are forked per
    job ordinal so the baseline is deterministic and order-independent.
    """
    streams = RandomStreams(seed=config.seed)
    tenants = make_tenant_fleet(config.n_tenants)
    arrivals = generate_arrivals(
        tenants, config.traffic, config.sizes, streams, config.horizon_s
    )
    total_cloud = 0.0
    total_idle = 0.0
    total_cold = 0
    for ordinal, (_, spec) in enumerate(arrivals):
        env = Environment()
        job_streams = streams.fork(ordinal)
        kv = KVStore(env, job_streams)
        pool = SharedPool(
            env,
            job_streams,
            kv,
            concurrency=config.pool_concurrency,
            memory_grades_mb=config.memory_grades_mb,
            keep_alive_s=config.keep_alive_s,
            scale_to_zero_after_s=0.0,
            billing=FaaSBilling(rate_per_gb_s=config.economics.rate_per_gb_s),
            label="isolated",
        )
        record = JobRecord(spec=spec, ordinal=ordinal)
        record.submitted_at = env.now
        pool.launch(record, lambda _rec: None)
        env.run()
        report = build_invoices(
            pool.platform.billing,
            pool.platform.container_log,
            pool.owners,
            pool_label="isolated",
            keep_alive_s=config.keep_alive_s,
            # Full keep-alive tails: the horizon extends past the last
            # release so nothing gets clipped by "the run ended".
            horizon_s=env.now + config.keep_alive_s,
            economics=config.economics,
            tenants=[spec.tenant_id],
        )
        total_cloud += report.billing_total_cost
        total_idle += report.idle_cost_total
        total_cold += pool.cold_activations
    n_jobs = len(arrivals)
    total = total_cloud + total_idle
    return {
        "jobs": float(n_jobs),
        "isolated_cloud_cost_usd": total_cloud,
        "isolated_idle_cost_usd": total_idle,
        "isolated_total_cost_usd": total,
        "cost_per_job_isolated_usd": total / n_jobs if n_jobs else 0.0,
        "isolated_cold_activations": float(total_cold),
    }
