"""Per-tenant invoicing over the shared pool's consolidated FaaS bill.

The platform pays the cloud one bill (:class:`~repro.faas.FaaSBilling`
over the shared pool) and re-bills tenants two line items:

* **active** — each activation's billed GB-s, charged to the tenant that
  owns the job the activation ran for (the pool's
  ``(pool label, activation id) -> (tenant, job)`` owner map);
* **idle** — warm containers kept alive between invocations.  Idle
  intervals are reconstructed from the pool's container lifecycle log
  (``release`` opens an interval; the next ``acquire`` or ``reclaim`` of
  the same container closes it; an unclosed tail is clipped at keep-alive
  expiry or the billing horizon) and charged, at a discounted rate, to
  the tenant whose activation *released* the container — the "you kept
  it warm" attribution.  Scale-to-zero shows up here directly: reclaims
  close idle intervals early, shrinking everyone's idle line.

Accounting identity (checked by :meth:`InvoiceReport.reconcile` and the
regression tests): summed active charges plus the unattributed residue
equal ``FaaSBilling.total_cost()`` — every billed GB-second lands on
exactly one invoice line, and an activation the owner map cannot claim
is *visible* as unattributed, never silently dropped.

This module is a billing module under sim-lint: monetary comparisons use
explicit tolerances, never float equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faas.billing import DEFAULT_RATE_PER_GB_S, FaaSBilling

__all__ = [
    "PoolEconomics",
    "TenantInvoice",
    "InvoiceReport",
    "container_idle_intervals",
    "build_invoices",
]


@dataclass(frozen=True)
class PoolEconomics:
    """Pricing the platform re-bills tenants at."""

    rate_per_gb_s: float = DEFAULT_RATE_PER_GB_S
    #: idle warm capacity is billed at this fraction of the active rate
    #: (the provider's keep-alive cost passed through, discounted)
    idle_rate_fraction: float = 0.25


@dataclass
class TenantInvoice:
    """One tenant's line items for a billing period."""

    tenant_id: str
    jobs: int = 0
    activations: int = 0
    active_gb_s: float = 0.0
    active_cost: float = 0.0
    idle_gb_s: float = 0.0
    idle_cost: float = 0.0
    job_ids: List[str] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return self.active_cost + self.idle_cost


#: one warm-idle interval: (function, container_id, start, end,
#: releasing activation id)
IdleInterval = Tuple[str, int, float, float, int]


def container_idle_intervals(
    container_log: Sequence[Tuple[float, str, str, int, int]],
    keep_alive_s: float,
    horizon_s: float,
) -> List[IdleInterval]:
    """Reconstruct warm-idle intervals from the container lifecycle log.

    A ``release`` opens an interval for that container; the next
    ``acquire`` or ``reclaim`` of the same container closes it (bounded
    by keep-alive expiry — the platform evicts lazily, billing does
    not).  Unclosed intervals are clipped at ``min(start + keep_alive,
    horizon)``.
    """
    intervals: List[IdleInterval] = []
    open_idle: Dict[Tuple[str, int], Tuple[float, int]] = {}
    for time, event, function, container_id, activation_id in container_log:
        key = (function, container_id)
        if event == "release":
            open_idle[key] = (time, activation_id)
        elif event in ("acquire", "reclaim"):
            opened = open_idle.pop(key, None)
            if opened is not None:
                start, releaser = opened
                end = min(time, start + keep_alive_s)
                if end > start:
                    intervals.append((function, container_id, start, end, releaser))
        # "provision" and "lost" neither open nor close idle time.
    for key in sorted(open_idle):
        function, container_id = key
        start, releaser = open_idle[key]
        end = min(start + keep_alive_s, horizon_s)
        if end > start:
            intervals.append((function, container_id, start, end, releaser))
    intervals.sort()
    return intervals


@dataclass
class InvoiceReport:
    """All tenant invoices plus the platform-level residue."""

    invoices: Dict[str, TenantInvoice]
    #: billed cost of activations the owner map could not claim —
    #: must be (near) zero on a healthy platform, and *visible* here
    #: rather than silently spread over tenants when it is not
    unattributed_cost: float
    unattributed_gb_s: float
    billing_total_cost: float
    idle_cost_total: float

    def reconcile(self) -> Dict[str, float]:
        """Check that active charges + residue reproduce the cloud bill."""
        active = 0.0
        active_gb_s = 0.0
        for tenant_id in sorted(self.invoices):
            invoice = self.invoices[tenant_id]
            active += invoice.active_cost
            active_gb_s += invoice.active_gb_s
        total_gb_s = active_gb_s + self.unattributed_gb_s
        fraction = active_gb_s / total_gb_s if total_gb_s > 0 else 1.0
        return {
            "billing_total_cost": self.billing_total_cost,
            "invoiced_active_cost": active,
            "unattributed_cost": self.unattributed_cost,
            "abs_error": abs(
                self.billing_total_cost - (active + self.unattributed_cost)
            ),
            "attributed_fraction": fraction,
            "idle_cost_total": self.idle_cost_total,
        }


def build_invoices(
    billing: FaaSBilling,
    container_log: Sequence[Tuple[float, str, str, int, int]],
    owners: Dict[Tuple[str, int], Tuple[str, str]],
    pool_label: str,
    keep_alive_s: float,
    horizon_s: float,
    economics: Optional[PoolEconomics] = None,
    tenants: Sequence[str] = (),
) -> InvoiceReport:
    """Split the pool's consolidated bill into per-tenant invoices."""
    economics = economics if economics is not None else PoolEconomics()
    rate = economics.rate_per_gb_s
    invoices: Dict[str, TenantInvoice] = {
        tenant_id: TenantInvoice(tenant_id) for tenant_id in sorted(tenants)
    }

    def invoice_for(tenant_id: str) -> TenantInvoice:
        if tenant_id not in invoices:
            invoices[tenant_id] = TenantInvoice(tenant_id)
        return invoices[tenant_id]

    # -- active line: one entry per billed activation --------------------
    unattributed_cost = 0.0
    unattributed_gb_s = 0.0
    for record in billing.records:
        owner = owners.get((getattr(record, "pool", "faas"), record.activation_id))
        if owner is None:
            unattributed_cost += record.cost(rate)
            unattributed_gb_s += record.gb_seconds
            continue
        tenant_id, job_id = owner
        invoice = invoice_for(tenant_id)
        invoice.activations += 1
        invoice.active_gb_s += record.gb_seconds
        invoice.active_cost += record.cost(rate)
        if job_id not in invoice.job_ids:
            invoice.job_ids.append(job_id)
            invoice.jobs += 1

    # -- idle line: warm keep-alive intervals -----------------------------
    memory_by_function: Dict[str, int] = {}
    for record in billing.records:
        memory_by_function.setdefault(record.function, record.memory_mb)
    idle_cost_total = 0.0
    for function, _cid, start, end, releaser in container_idle_intervals(
        container_log, keep_alive_s, horizon_s
    ):
        # The container log is the pool's own, so the releasing
        # activation id resolves through the pool's owner-map namespace.
        owner = owners.get((pool_label, releaser))
        if owner is None:
            continue  # released by an unowned activation; the active
            # residue already makes its cost visible
        tenant_id = owner[0]
        gb = memory_by_function.get(function, 0) / 1024.0
        gb_s = gb * (end - start)
        cost = gb_s * rate * economics.idle_rate_fraction
        invoice = invoice_for(tenant_id)
        invoice.idle_gb_s += gb_s
        invoice.idle_cost += cost
        idle_cost_total += cost

    return InvoiceReport(
        invoices=invoices,
        unattributed_cost=unattributed_cost,
        unattributed_gb_s=unattributed_gb_s,
        billing_total_cost=billing.total_cost(),
        idle_cost_total=idle_cost_total,
    )
