"""IBM Cloud pricing catalog (Table 2 of the paper, us-east, April 2021).

| Instance type               | Role                     | Price          |
|-----------------------------|--------------------------|----------------|
| C1.4x4 (4 vCPU, 4 GB)       | MLLess messaging service | 0.15 $/hour    |
| M1.2x16 (2 vCPU, 16 GB)     | Redis                    | 0.17 $/hour    |
| Functions (1 vCPU, 2 GB)    | MLLess worker            | 3.4e-5 $/s     |
| B1.4x8 (4 vCPU, 8 GB)       | PyTorch worker           | 0.20 $/hour    |

Like the paper's cost computation, VMs are priced per second (hourly rate /
3600) — conservative in favour of the serverful baseline — and object-store
cost is excluded because it is identical across systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["InstanceType", "PRICING", "FUNCTIONS_PRICE_PER_S", "vm_price_per_second"]

#: $/s for a 2 GB / 1 vCPU cloud function (Table 2).
FUNCTIONS_PRICE_PER_S = 3.4e-5


@dataclass(frozen=True)
class InstanceType:
    """A rentable VM shape."""

    name: str
    vcpus: int
    memory_gb: int
    price_per_hour: float
    role: str = ""
    nic_bps: float = 1e9  # all instances have a 1 Gbps NIC (§6.1)

    @property
    def price_per_second(self) -> float:
        return self.price_per_hour / 3600.0


#: Table 2, keyed by instance name.
PRICING: Dict[str, InstanceType] = {
    t.name: t
    for t in [
        InstanceType("C1.4x4", 4, 4, 0.15, role="MLLess messaging service"),
        InstanceType("M1.2x16", 2, 16, 0.17, role="Redis"),
        InstanceType("B1.4x8", 4, 8, 0.20, role="PyTorch worker"),
    ]
}


def vm_price_per_second(name: str) -> float:
    """$/s for instance type ``name`` (KeyError for unknown types)."""
    return PRICING[name].price_per_second
