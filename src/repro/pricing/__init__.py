"""Pricing catalog (Table 2) and composite cost metering."""

from .catalog import (
    FUNCTIONS_PRICE_PER_S,
    PRICING,
    InstanceType,
    vm_price_per_second,
)
from .meter import CostMeter, VMLease

__all__ = [
    "InstanceType",
    "PRICING",
    "FUNCTIONS_PRICE_PER_S",
    "vm_price_per_second",
    "CostMeter",
    "VMLease",
]
