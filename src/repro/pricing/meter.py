"""Composite cost metering across system components.

The MLLess bill = FaaS workers (per 100 ms GB-s) + the supervisor function
+ the two provisioned VMs (messaging + Redis), charged per second while the
job runs.  The serverful bill = the VM cluster, per second.  This module
aggregates those streams into one meter so experiments can ask "what did
this run cost?" and "what was the cost at time t?" (Fig. 7 needs the
latter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faas.billing import FaaSBilling
from .catalog import PRICING, InstanceType

__all__ = ["VMLease", "CostMeter"]


@dataclass
class VMLease:
    """One VM rented from ``start`` until ``end`` (None = still running)."""

    instance: InstanceType
    start: float
    end: Optional[float] = None

    def cost_up_to(self, time: float) -> float:
        if time <= self.start:
            return 0.0
        end = time if self.end is None else min(self.end, time)
        return max(end - self.start, 0.0) * self.instance.price_per_second

    def cost(self) -> float:
        if self.end is None:
            raise ValueError("lease still open; use cost_up_to(time)")
        return self.cost_up_to(self.end)


@dataclass
class CostMeter:
    """Aggregated cost of a run: FaaS billing plus VM leases."""

    faas: Optional[FaaSBilling] = None
    leases: List[VMLease] = field(default_factory=list)

    def lease(self, instance_name: str, start: float) -> VMLease:
        """Open a lease on instance type ``instance_name`` at ``start``."""
        lease = VMLease(PRICING[instance_name], start)
        self.leases.append(lease)
        return lease

    def release(self, lease: VMLease, end: float) -> None:
        if lease.end is not None:
            raise ValueError("lease already closed")
        if end < lease.start:
            raise ValueError(f"end {end} precedes start {lease.start}")
        lease.end = end

    def close_all(self, end: float) -> None:
        for lease in self.leases:
            if lease.end is None:
                lease.end = end

    def total_cost(self, up_to: Optional[float] = None) -> float:
        """Total $ cost; with ``up_to``, the cost accrued by that time."""
        vm = sum(
            lease.cost() if up_to is None else lease.cost_up_to(up_to)
            for lease in self.leases
        )
        if self.faas is None:
            return vm
        fa = (
            self.faas.total_cost()
            if up_to is None
            else self.faas.cost_up_to(up_to)
        )
        return vm + fa

    def breakdown(self, up_to: Optional[float] = None) -> Dict[str, float]:
        """Cost per component name."""
        out: Dict[str, float] = {}
        for lease in self.leases:
            cost = lease.cost() if up_to is None else lease.cost_up_to(up_to)
            out[lease.instance.name] = out.get(lease.instance.name, 0.0) + cost
        if self.faas is not None:
            out["functions"] = (
                self.faas.total_cost()
                if up_to is None
                else self.faas.cost_up_to(up_to)
            )
        return out
