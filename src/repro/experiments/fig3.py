"""Figure 3: thread-level parallelism inside a cloud function.

The paper's micro-benchmark trains one PMF step with one or two threads
inside functions of varying memory and plots the two-thread speedup:
because the platform's CPU share is proportional to memory and capped at
one vCPU, a second thread adds (almost) nothing — and at 1536 MiB it is
*worse* than one thread.

The experiment runs the same micro-benchmark through the simulated
platform: a function is invoked per (memory, threads) pair, charging one
PMF step's compute scaled by :meth:`FaaSLimits.thread_speedup`, and the
measured activation durations give the speedup.
"""

from __future__ import annotations

from typing import Dict, List

from ..faas import FaaSPlatform, FunctionSpec, IBM_CLOUD_FUNCTIONS_LIMITS
from ..sim import Environment, RandomStreams
from .report import render_table

__all__ = ["fig3_thread_speedup", "main"]

#: one PMF mini-batch step's worth of single-thread compute, seconds
_STEP_CPU_SECONDS = 0.25


def _measure(memory_mb: int, threads: int, seed: int = 11) -> float:
    """Simulated duration of one micro-benchmark activation."""
    env = Environment()
    streams = RandomStreams(seed=seed)
    platform = FaaSPlatform(env, streams)

    def bench_handler(ctx, payload):
        speedup = IBM_CLOUD_FUNCTIONS_LIMITS.thread_speedup(
            payload["memory_mb"], payload["threads"]
        )
        start = ctx.now
        yield from ctx.compute(_STEP_CPU_SECONDS / speedup)
        return ctx.now - start

    platform.register(
        FunctionSpec("pmf-step-bench", bench_handler, memory_mb=memory_mb)
    )
    activation = platform.invoke(
        "pmf-step-bench", {"memory_mb": memory_mb, "threads": threads}
    )
    env.run()
    return float(activation.result())


def fig3_thread_speedup(memory_sizes=(512, 1024, 1536, 2048)) -> List[Dict]:
    """Two-thread speedup vs. function memory size (Fig. 3)."""
    rows = []
    for memory in memory_sizes:
        one = _measure(memory, threads=1)
        two = _measure(memory, threads=2)
        rows.append(
            {
                "memory_mb": memory,
                "cpu_share_vcpus": round(
                    IBM_CLOUD_FUNCTIONS_LIMITS.cpu_share(memory), 3
                ),
                "speedup_2_threads": round(one / two, 3),
            }
        )
    return rows


def main() -> str:
    return render_table(
        fig3_thread_speedup(), "Fig 3: 2-thread speedup vs function memory"
    )


if __name__ == "__main__":
    print(main())
