"""Figure 5: the scale-in auto-tuner's effect on Perf/$ and execution time.

For each workload and worker count the job runs with and without the
auto-tuner (on top of ISP, as in the paper's 'MLLess + All'), reporting

* ``Perf/$ := 1 / (exec_time * price)`` — higher is better; the paper
  reports 1.4x-1.6x improvements;
* raw execution time — the paper sees between -10% (faster) and +7.1%
  (slightly slower, from an over-eager knee detector on ML-10M).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .common import mlless_config, run_mlless, run_mlless_traced
from .report import render_table
from .settings import make_workload

__all__ = ["fig5_autotuner", "main"]


def fig5_autotuner(
    workload_names: Sequence[str] = ("lr-criteo", "pmf-ml10m", "pmf-ml20m"),
    worker_counts: Sequence[int] = (12, 24),
    v: float = 0.7,
    max_steps: int = 1200,
    seed: int = 3,
    epoch_s: float = 10.0,
    trace_dir: Optional[str] = None,
) -> List[Dict]:
    """One row per (workload, P): tuner-off vs tuner-on metrics.

    With ``trace_dir`` set, every run additionally records a span trace —
    Chrome JSON + JSONL per run, named
    ``fig5-<workload>-P<p>-<base|tuner>.trace.json``.
    """
    rows: List[Dict] = []
    for name in workload_names:
        workload = make_workload(name)
        dataset = workload.dataset(seed=1)
        for p in worker_counts:
            results = {}
            for tuner in (False, True):
                config = mlless_config(
                    workload,
                    n_workers=p,
                    v=v,
                    autotune=tuner,
                    dataset=dataset,
                    # Deep targets give the tuner a long post-knee phase,
                    # the regime Fig. 5 measures.
                    target_loss=workload.deep_target_loss,
                    max_steps=max_steps,
                    seed=seed,
                    autotuner_kwargs={"epoch_s": epoch_s, "delta_s": epoch_s / 2},
                )
                if trace_dir is not None:
                    label = "tuner" if tuner else "base"
                    trace_path = (
                        f"{trace_dir}/fig5-{name}-P{p}-{label}.trace.json"
                    )
                    results[tuner], _, _ = run_mlless_traced(
                        config, trace_path=trace_path
                    )
                else:
                    results[tuner] = run_mlless(config)
            off, on = results[False], results[True]
            rows.append(
                {
                    "workload": name,
                    "workers": p,
                    "exec_off_s": round(off.exec_time, 2),
                    "exec_on_s": round(on.exec_time, 2),
                    "cost_off_usd": round(off.total_cost, 5),
                    "cost_on_usd": round(on.total_cost, 5),
                    "perf_per_$_off": round(off.perf_per_dollar, 1),
                    "perf_per_$_on": round(on.perf_per_dollar, 1),
                    "perf_per_$_gain": round(
                        on.perf_per_dollar / off.perf_per_dollar, 3
                    ),
                    "workers_end": on.final_worker_count(),
                    "time_delta_pct": round(
                        100 * (on.exec_time - off.exec_time) / off.exec_time, 1
                    ),
                }
            )
    return rows


def main(**kwargs) -> str:
    return render_table(
        fig5_autotuner(**kwargs),
        "Fig 5: scale-in auto-tuner effect (Perf/$ and exec time)",
    )


if __name__ == "__main__":
    print(main())
