"""Figure 4: ISP's effect on time-to-convergence vs. significance threshold.

For each workload, MLLess runs to its convergence target with the
significance threshold v swept from 0 (BSP baseline) upward; the figure
reports execution time *normalized to the BSP run*.  The paper's findings,
which the reproduction targets:

* PMF benefits strongly — up to ~3x on the ML-20M job — because the
  embedding updates compress well under the relative-significance filter;
* LR benefits only mildly, because sparsity already acts as an intrinsic
  communication filter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .common import mlless_config, run_mlless
from .report import render_table
from .settings import make_workload

__all__ = ["fig4_significance_sweep", "main"]

DEFAULT_THRESHOLDS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)


def fig4_significance_sweep(
    workload_names: Sequence[str] = ("lr-criteo", "pmf-ml10m", "pmf-ml20m"),
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    n_workers: int = 24,
    max_steps: int = 1200,
    seed: int = 3,
) -> List[Dict]:
    """One row per (workload, v): execution time until convergence."""
    rows: List[Dict] = []
    for name in workload_names:
        workload = make_workload(name)
        dataset = workload.dataset(seed=1)
        baseline_time = None
        for v in thresholds:
            config = mlless_config(
                workload,
                n_workers=n_workers,
                v=v,
                dataset=dataset,
                max_steps=max_steps,
                seed=seed,
            )
            result = run_mlless(config)
            if v == 0.0:
                baseline_time = result.exec_time
            rows.append(
                {
                    "workload": name,
                    "v": v,
                    "exec_time_s": round(result.exec_time, 2),
                    "normalized_time": round(
                        result.exec_time / baseline_time, 3
                    )
                    if baseline_time
                    else None,
                    "steps": result.total_steps,
                    "converged": result.converged,
                    "final_loss": round(result.final_loss, 4),
                    "cost_usd": round(result.total_cost, 5),
                }
            )
    return rows


def main(**kwargs) -> str:
    return render_table(
        fig4_significance_sweep(**kwargs),
        "Fig 4: normalized execution time until convergence vs threshold v",
    )


if __name__ == "__main__":
    print(main())
