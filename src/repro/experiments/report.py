"""Plain-text rendering of experiment results (tables and series).

Every experiment module returns plain data (lists of row dicts or
series); these helpers print them in the shape the paper's tables and
figure captions report, so ``pytest benchmarks/ --benchmark-only`` output
can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

__all__ = ["render_table", "render_series", "banner", "fault_summary_rows"]

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:  # sim-lint: disable=SIM004 — exact-zero display check, not metering math
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4g}"
    return str(value)


def render_table(rows: Sequence[Dict[str, Cell]], title: str = "") -> str:
    """Render a list of homogeneous row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(rows[0].keys())
    formatted = [[_format_cell(r.get(c)) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(f[i]) for f in formatted))
        for i, c in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for f in formatted:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(f, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Iterable[float], ys: Iterable[float], max_points: int = 12
) -> str:
    """Render an (x, y) series, downsampled to ``max_points`` rows."""
    xs, ys = list(xs), list(ys)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    stride = max(1, n // max_points)
    idx = list(range(0, n, stride))
    if idx[-1] != n - 1:
        idx.append(n - 1)
    pts = ", ".join(
        f"({_format_cell(xs[i])}, {_format_cell(ys[i])})" for i in idx
    )
    return f"{name} [{n} pts]: {pts}"


def banner(text: str) -> str:
    bar = "=" * max(len(text), 8)
    return f"{bar}\n{text}\n{bar}"


def fault_summary_rows(result) -> List[Dict[str, Cell]]:
    """Per-kind injected-fault and recovery counts from a run's extras.

    Returns rows for :func:`render_table` — empty when the run had no
    fault injector attached (so callers can skip the table entirely).
    """
    extras = result.extras
    if "faults_injected" not in extras:
        return []
    rows: List[Dict[str, Cell]] = []
    for key in sorted(extras):
        if key.startswith("fault."):
            rows.append(
                {
                    "event": key[len("fault."):],
                    "kind": "injected",
                    "count": int(extras[key]),
                }
            )
    for key in sorted(extras):
        if key.startswith("recovery."):
            rows.append(
                {
                    "event": key[len("recovery."):],
                    "kind": "recovery",
                    "count": int(extras[key]),
                }
            )
    rows.append(
        {
            "event": "total",
            "kind": "injected",
            "count": int(extras["faults_injected"]),
        }
    )
    rows.append(
        {
            "event": "total",
            "kind": "recovery",
            "count": int(extras.get("faults_recovered", 0)),
        }
    )
    return rows
