"""Figure 6: loss-vs-time comparison of all systems.

Per workload, five systems run to a deep convergence target (P = 24):

* PyTorch-like serverful DDP on VMs,
* PyWren-IBM-style map-reduce training (step-capped: it is far from
  converging inside any reasonable window, exactly as in the paper),
* MLLess with BSP ('MLLess'),
* MLLess with ISP ('MLLess + ISP'),
* MLLess with ISP + scale-in auto-tuner ('MLLess + All').

Returns both the loss-vs-time series (for plotting) and the headline
table: time to the deep target and the speedup over serverful.  The
paper's headline: ~15x over PyTorch on the PMF jobs; PyWren never close.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import RunResult
from .common import (
    mlless_config,
    run_mlless,
    run_pywren_workload,
    run_serverful_workload,
)
from .report import render_table
from .settings import make_workload

__all__ = ["fig6_comparison", "run_all_systems", "main"]

SYSTEMS = ("serverful", "pywren", "mlless", "mlless+isp", "mlless+all")


def run_all_systems(
    workload_name: str,
    n_workers: int = 24,
    v: float = 0.7,
    max_steps: int = 1500,
    pywren_step_cap: int = 40,
    seed: int = 3,
    target_loss: Optional[float] = None,
) -> Dict[str, RunResult]:
    """Run the five Fig. 6 systems on one workload; returns name -> result."""
    workload = make_workload(workload_name)
    dataset = workload.dataset(seed=1)
    target = workload.deep_target_loss if target_loss is None else target_loss

    results: Dict[str, RunResult] = {}
    results["serverful"] = run_serverful_workload(
        workload, n_workers, target_loss=target, max_steps=max_steps,
        seed=seed, dataset=dataset,
    )
    results["pywren"] = run_pywren_workload(
        workload, n_workers, target_loss=target, max_steps=pywren_step_cap,
        seed=seed, dataset=dataset,
    )
    variants = {
        "mlless": (0.0, False),
        "mlless+isp": (v, False),
        "mlless+all": (v, True),
    }
    for name, (v_run, tuner) in variants.items():
        config = mlless_config(
            workload, n_workers=n_workers, v=v_run, autotune=tuner,
            target_loss=target, max_steps=max_steps, seed=seed, dataset=dataset,
        )
        results[name] = run_mlless(config)
    return results


def fig6_comparison(
    workload_names: Sequence[str] = ("lr-criteo", "pmf-ml10m", "pmf-ml20m"),
    **kwargs,
) -> List[Dict]:
    """Headline rows: time to the deep target + speedup over serverful."""
    rows: List[Dict] = []
    for name in workload_names:
        workload = make_workload(name)
        target = kwargs.get("target_loss") or workload.deep_target_loss
        results = run_all_systems(name, **kwargs)
        base = results["serverful"].time_to_loss(target)
        for system in SYSTEMS:
            result = results[system]
            reached = result.time_to_loss(target)
            rows.append(
                {
                    "workload": name,
                    "system": system,
                    "time_to_target_s": None if reached is None else round(reached, 1),
                    "speedup_vs_serverful": (
                        None
                        if reached is None or base is None
                        else round(base / reached, 2)
                    ),
                    "final_loss": round(result.final_loss, 4),
                    "steps": result.total_steps,
                    "cost_usd": round(result.total_cost, 5),
                }
            )
    return rows


def main(**kwargs) -> str:
    parts = [
        render_table(
            fig6_comparison(**kwargs),
            "Fig 6: time to deep target and speedup vs serverful (P=24)",
        )
    ]
    return "\n".join(parts)


if __name__ == "__main__":
    print(main())
