"""Tables 1-3 of the paper.

* **Table 1** — the experimental settings registry (models, datasets,
  optimizers, batch sizes) as configured in this reproduction.
* **Table 2** — the IBM Cloud pricing catalog the cost model uses.
* **Table 3** — LR execution time with the *global* batch held constant
  while the worker count doubles (12/24/48): the paper reports roughly
  flat times (437.1 / 395.3 / 426.3 s), demonstrating that LR's running
  time growth with P in Fig. 5 is statistical, not a scalability deficit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..ml.data import criteo_like
from ..pricing import FUNCTIONS_PRICE_PER_S, PRICING
from .common import mlless_config, run_mlless
from .report import render_table
from .settings import _CRITEO_SPEC, make_workload

__all__ = ["table1_settings", "table2_pricing", "table3_constant_global_batch"]


def table1_settings() -> List[Dict]:
    """The Table 1 registry as configured here."""
    rows = []
    for name in ("lr-criteo", "pmf-ml10m", "pmf-ml20m"):
        workload = make_workload(name)
        model = workload.model()
        rows.append(
            {
                "model": type(model).__name__,
                "dataset": name.split("-", 1)[1],
                "optimizer": type(workload.optimizer()).__name__,
                "workers": "12, 24",
                "batch_size": workload.batch_size,
                "metric": workload.metric,
                "target": workload.target_loss,
            }
        )
    return rows


def table2_pricing() -> List[Dict]:
    """The Table 2 pricing catalog."""
    rows = [
        {
            "instance": t.name,
            "shape": f"{t.vcpus}vCPU/{t.memory_gb}GB",
            "role": t.role,
            "price": f"{t.price_per_hour} $/hour",
        }
        for t in PRICING.values()
    ]
    rows.append(
        {
            "instance": "Functions",
            "shape": "1vCPU/2GB",
            "role": "MLLess worker",
            "price": f"{FUNCTIONS_PRICE_PER_S} $/s",
        }
    )
    return rows


def table3_constant_global_batch(
    worker_counts=(12, 24, 48),
    base_batch: int = 500,
    seed: int = 3,
    max_steps: int = 900,
) -> List[Dict]:
    """LR exec time as P doubles, with and without weak scaling.

    The paper's Table 3 holds the *global* batch constant (B halves as P
    doubles: 6,250 / 3,125 / 1,562) and observes roughly flat execution
    times, demonstrating that the time growth seen at fixed per-worker B
    (Fig. 5) is statistical, not a scalability deficit of any MLLess
    component.  Each row reports both variants so that contrast is
    explicit.
    """
    workload = make_workload("lr-criteo")
    fixed_dataset = criteo_like(_CRITEO_SPEC, seed=1)
    rows = []
    for p in worker_counts:
        batch = int(base_batch * worker_counts[0] / p)
        spec = replace(_CRITEO_SPEC, batch_size=batch)
        scaled_dataset = criteo_like(spec, seed=1)
        scaled = run_mlless(
            mlless_config(
                workload, n_workers=p, v=0.0, dataset=scaled_dataset,
                max_steps=max_steps, seed=seed,
            )
        )
        fixed = run_mlless(
            mlless_config(
                workload, n_workers=p, v=0.0, dataset=fixed_dataset,
                max_steps=max_steps, seed=seed,
            )
        )
        rows.append(
            {
                "workers": p,
                "batch_size": batch,
                "global_batch": p * batch,
                "exec_time_s": round(scaled.exec_time, 1),
                "steps": scaled.total_steps,
                "converged": scaled.converged,
                "exec_fixed_B_s": round(fixed.exec_time, 1),
                "steps_fixed_B": fixed.total_steps,
            }
        )
    return rows


def main() -> str:
    parts = [
        render_table(table1_settings(), "Table 1: models, datasets, settings"),
        render_table(table2_pricing(), "Table 2: IBM Cloud pricing (us-east)"),
        render_table(
            table3_constant_global_batch(),
            "Table 3: LR exec time, constant global batch",
        ),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
