"""Workload definitions — Table 1 of the paper, scaled for local runs.

Three jobs, exactly the paper's model/dataset/optimizer pairings:

=======  ==================  ========================  =================
Model    Dataset             Optimizer                 Setting
=======  ==================  ========================  =================
LR       Criteo(-like)       Adam                      B = 6,250
PMF      ML-10M(-like)       SGD + Nesterov momentum   B = 6,250, r = 20
PMF      ML-20M(-like)       SGD + Nesterov momentum   B = 12K,  r = 20
=======  ==================  ========================  =================

The datasets are synthetic stand-ins (see DESIGN.md) scaled so each
simulated run finishes in seconds of real time; batch sizes scale with
them.  Worker counts keep the paper's 12/24 pairs.  Loss-threshold targets
are re-derived for the synthetic data (the paper's absolute thresholds are
dataset-specific): each target sits in the late-but-not-floor region of
the loss curve, the same regime the paper's thresholds occupy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict

from ..ml.data import (
    CriteoSpec,
    Dataset,
    MLPSpec,
    MovieLensSpec,
    criteo_like,
    mlp_synth,
    movielens_like,
)
from ..ml.models import LayeredMLP, LogisticRegression, PMF
from ..ml.models.base import Model
from ..ml.optim import Adam, InverseSqrtLR, MomentumSGD
from ..ml.optim.base import Optimizer

__all__ = ["Workload", "WORKLOADS", "make_workload"]


@dataclass(frozen=True)
class Workload:
    """A named (model, dataset, optimizer, targets) bundle."""

    name: str
    make_model: Callable[[], Model]
    make_optimizer: Callable[[], Optimizer]
    make_dataset: Callable[[int], Dataset]
    #: mini-batch size (per worker; fixed under weak scaling)
    batch_size: int
    #: convergence threshold used when running "until convergence"
    target_loss: float
    #: a stricter threshold for the long-horizon comparison (Fig. 6)
    deep_target_loss: float
    #: the paper's default ISP significance threshold
    default_v: float = 0.7
    #: default worker pool (the paper reports P = 24; 12 also used)
    default_workers: int = 12
    metric: str = "loss"
    description: str = ""

    def dataset(self, seed: int = 0) -> Dataset:
        return self.make_dataset(seed)

    def model(self) -> Model:
        return self.make_model()

    def optimizer(self) -> Optimizer:
        return self.make_optimizer()


# ---------------------------------------------------------------------------
# LR on Criteo-like data (Adam).  Paper: B=6250, BCE target 0.58.
# ---------------------------------------------------------------------------

_CRITEO_SPEC = CriteoSpec(
    n_samples=48_000,
    n_numeric=13,
    n_categorical=26,
    n_hash_buckets=40_000,
    batch_size=500,
    positive_rate=0.25,
    label_noise=0.05,
)

_LR_FEATURES = _CRITEO_SPEC.n_numeric + _CRITEO_SPEC.n_hash_buckets


def _lr_criteo() -> Workload:
    return Workload(
        name="lr-criteo",
        make_model=lambda: LogisticRegression(_LR_FEATURES, l2=1e-5),
        make_optimizer=lambda: Adam(lr=0.02),
        make_dataset=lambda seed: criteo_like(_CRITEO_SPEC, seed=seed),
        batch_size=_CRITEO_SPEC.batch_size,
        target_loss=0.42,
        deep_target_loss=0.38,
        metric="bce",
        description="sparse logistic regression, Criteo-like CTR data",
    )


# ---------------------------------------------------------------------------
# PMF on MovieLens-like data (SGD + Nesterov).  Paper: r=20,
# RMSE targets 0.82 (run-until-convergence) and 0.738 (deep, ML-10M).
# ---------------------------------------------------------------------------

_ML10M_SPEC = MovieLensSpec(
    n_users=2_000,
    n_movies=4_000,
    n_ratings=160_000,
    rank=10,
    batch_size=500,
    noise=0.40,
)

_ML20M_SPEC = MovieLensSpec(
    n_users=3_000,
    n_movies=8_000,
    n_ratings=320_000,
    rank=10,
    batch_size=500,
    noise=0.40,
)

def _pmf(
    name: str, spec: MovieLensSpec, target: float, deep: float, rank: int = 16
) -> Workload:
    return Workload(
        name=name,
        make_model=lambda: PMF(
            spec.n_users, spec.n_movies, rank=rank, l2=0.02, rating_offset=3.5
        ),
        make_optimizer=lambda: MomentumSGD(
            lr=InverseSqrtLR(16.0), momentum=0.9, nesterov=True
        ),
        make_dataset=lambda seed: movielens_like(spec, seed=seed),
        batch_size=spec.batch_size,
        target_loss=target,
        deep_target_loss=deep,
        metric="rmse",
        description=f"probabilistic matrix factorization, {name} data",
    )


def _pmf_ml10m() -> Workload:
    return _pmf("pmf-ml10m", _ML10M_SPEC, target=0.70, deep=0.66, rank=16)


def _pmf_ml20m() -> Workload:
    # The larger job also uses a larger factor rank, so its per-step
    # updates (and therefore its communication share) are the biggest of
    # the three workloads — it is where the paper sees ISP's 3x peak.
    return _pmf("pmf-ml20m", _ML20M_SPEC, target=0.72, deep=0.69, rank=24)


# ---------------------------------------------------------------------------
# Layered MLP on dense synthetic regression data (Adam).  Not a Table 1
# workload: this is the dense model-parallel job (FuncPipe-style stages,
# see PAPERS.md) and the data-parallel cross-backend reference.  Four
# weight layers so it splits into up to four pipeline stages.
# ---------------------------------------------------------------------------

_MLP_SPEC = MLPSpec(
    n_samples=8_000,
    n_features=32,
    hidden=(24, 24),
    n_outputs=1,
    batch_size=400,
    noise=0.1,
)

_MLP_SIZES = [_MLP_SPEC.n_features, 64, 64, 32, _MLP_SPEC.n_outputs]


def _mlp_synth() -> Workload:
    return Workload(
        name="mlp-synth",
        make_model=lambda: LayeredMLP(_MLP_SIZES),
        make_optimizer=lambda: Adam(lr=0.01),
        make_dataset=lambda seed: mlp_synth(_MLP_SPEC, seed=seed),
        batch_size=_MLP_SPEC.batch_size,
        target_loss=0.02,
        deep_target_loss=0.008,
        default_v=0.0,  # dense gradients: ISP filtering does not apply
        default_workers=4,
        metric="mse",
        description="dense layered MLP, planted-teacher regression data",
    )


WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "lr-criteo": _lr_criteo,
    "pmf-ml10m": _pmf_ml10m,
    "pmf-ml20m": _pmf_ml20m,
    "mlp-synth": _mlp_synth,
}


def make_workload(name: str, **overrides) -> Workload:
    """Build a workload by name, optionally overriding fields."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; have {sorted(WORKLOADS)}")
    workload = WORKLOADS[name]()
    return replace(workload, **overrides) if overrides else workload
