"""Figure 7: convergence under fixed budgets (cost-vs-loss comparison).

Reuses the Fig. 6 runs.  For each workload and each budget in a grid, the
figure reports, per system:

* the best (lowest) loss reached before the cumulative bill crossed the
  budget, and
* the maximum execution time affordable within it (the numbers printed
  above the paper's bars).

The paper's findings, which the reproduction targets: 'MLLess + All'
gives the best loss at every budget; serverful VMs buy the most *time*
per dollar (lower unit price) but convert it to far less progress.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .fig6 import SYSTEMS, run_all_systems
from .report import render_table
from .settings import make_workload

__all__ = ["fig7_budget_comparison", "main"]

DEFAULT_BUDGETS = (0.03, 0.06, 0.09, 0.15, 0.30)


def fig7_budget_comparison(
    workload_names: Sequence[str] = ("lr-criteo", "pmf-ml10m", "pmf-ml20m"),
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    **kwargs,
) -> List[Dict]:
    """One row per (workload, budget, system)."""
    rows: List[Dict] = []
    for name in workload_names:
        results = run_all_systems(name, **kwargs)
        for budget in budgets:
            for system in SYSTEMS:
                result = results[system]
                best = result.best_loss_within_budget(budget)
                rows.append(
                    {
                        "workload": name,
                        "budget_usd": budget,
                        "system": system,
                        "best_loss": None if best is None else round(best, 4),
                        "affordable_time_s": round(
                            result.time_within_budget(budget), 1
                        ),
                    }
                )
    return rows


def cheapest_to_target(
    workload_names: Sequence[str] = ("pmf-ml10m", "pmf-ml20m"), **kwargs
) -> List[Dict]:
    """Cost to reach the deep target per system (the paper's 6.3x claim)."""
    rows: List[Dict] = []
    for name in workload_names:
        workload = make_workload(name)
        target = kwargs.get("target_loss") or workload.deep_target_loss
        results = run_all_systems(name, **kwargs)
        base = results["serverful"].cost_to_loss(target)
        for system in SYSTEMS:
            cost = results[system].cost_to_loss(target)
            rows.append(
                {
                    "workload": name,
                    "system": system,
                    "cost_to_target_usd": None if cost is None else round(cost, 5),
                    "savings_vs_serverful": (
                        None
                        if cost is None or base is None
                        else round(base / cost, 2)
                    ),
                }
            )
    return rows


def main(**kwargs) -> str:
    return render_table(
        fig7_budget_comparison(**kwargs),
        "Fig 7: best loss and affordable time under fixed budgets",
    )


if __name__ == "__main__":
    print(main())
