"""Shared experiment harness utilities.

Each experiment builds a fresh simulation world per run (environment,
RNG streams, services, platform) so runs are fully independent and
deterministic.  :func:`run_mlless` executes one MLLess job;
the baselines expose analogous entry points in :mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import JobConfig, JobRuntime, MLLessDriver, RunResult
from ..faas import FaaSPlatform
from ..faults import FaultInjector, FaultProfile
from ..pricing import CostMeter
from ..sim import Environment, RandomStreams
from ..storage import Exchange, KVStore, MessageQueue, ObjectStore
from ..trace.tracer import NULL_TRACER, Tracer

__all__ = ["SimWorld", "build_world", "run_mlless", "run_mlless_traced"]

DATA_BUCKET = "training-data"


@dataclass
class SimWorld:
    """A self-contained simulation universe for one run."""

    env: Environment
    streams: RandomStreams
    cos: ObjectStore
    kv: KVStore
    mq: MessageQueue
    platform: FaaSPlatform
    meter: CostMeter
    faults: Optional[FaultInjector] = None
    #: the run's span tracer (no-op unless tracing was requested)
    tracer: object = NULL_TRACER


def build_world(
    seed: int = 0,
    faults: Optional[FaultProfile] = None,
    tracer=None,
) -> SimWorld:
    """Fresh environment + services + FaaS platform + cost meter.

    ``faults`` attaches a deterministic fault injector to the platform and
    every storage service; None (or a no-op profile) builds a world whose
    event schedule is byte-identical to one without any fault machinery.
    ``tracer`` (a :class:`~repro.trace.Tracer`) threads span tracing
    through every service — by design it never perturbs the schedule.
    """
    env = Environment()
    streams = RandomStreams(seed=seed)
    injector = None
    if faults is not None and not faults.is_noop():
        injector = FaultInjector(faults, streams)
    tracer = tracer if tracer is not None else NULL_TRACER
    cos = ObjectStore(env, streams, faults=injector, tracer=tracer)
    kv = KVStore(env, streams, faults=injector, tracer=tracer)
    mq = MessageQueue(env, streams, faults=injector, tracer=tracer)
    platform = FaaSPlatform(env, streams, faults=injector, tracer=tracer)
    meter = CostMeter(faas=platform.billing)
    return SimWorld(
        env, streams, cos, kv, mq, platform, meter, faults=injector, tracer=tracer
    )


def make_runtime(world: SimWorld, config: JobConfig) -> JobRuntime:
    """Stage the dataset and wire up the job's channels."""
    batch_keys = config.dataset.stage(world.cos, DATA_BUCKET)
    exchange = Exchange(world.mq, "mlless-broadcast")
    return JobRuntime(
        config=config,
        cos=world.cos,
        kv=world.kv,
        mq=world.mq,
        exchange=exchange,
        bucket=DATA_BUCKET,
        batch_keys=batch_keys,
        partitions=config.dataset.partition(config.n_workers),
        faults=world.faults,
        tracer=world.tracer,
    )


def run_mlless(
    config: JobConfig,
    world: Optional[SimWorld] = None,
    tracer=None,
    backend: str = "sim",
) -> RunResult:
    """Run one MLLess job on the chosen execution backend.

    ``backend="sim"`` (default) runs in a fresh (or given) simulation
    world; ``backend="local"`` runs the same training machines for real
    on threads (:func:`repro.exec.local.run_local_job`) — no simulated
    world, no fault injection, no tracer, genuine wall-clock timings.
    ``backend="procs"`` runs them for real with one OS process per role
    (:func:`repro.exec.procs.run_procs_job`), gradients in shared
    memory — the true-parallel path, same restrictions as ``local``.
    """
    if backend in ("local", "procs"):
        if world is not None:
            raise ValueError(
                f"backend={backend!r} does not take a simulation world"
            )
        if tracer is not None:
            raise ValueError(f"backend={backend!r} does not support span tracing")
        if backend == "procs":
            from ..exec.procs import run_procs_job

            return run_procs_job(config)
        from ..exec.local import run_local_job

        return run_local_job(config)
    if backend != "sim":
        raise ValueError(
            f"unknown backend {backend!r} (expected 'sim', 'local' or 'procs')"
        )
    if world is None:
        world = build_world(seed=config.seed, faults=config.faults, tracer=tracer)
    runtime = make_runtime(world, config)
    driver = MLLessDriver(world.env, world.platform, runtime, meter=world.meter)
    return driver.run()


def run_mlless_traced(
    config: JobConfig,
    trace_path: Optional[str] = None,
    world: Optional[SimWorld] = None,
):
    """Run one traced MLLess job; returns ``(result, tracer, world)``.

    When ``trace_path`` is given, writes the Chrome trace there and the
    JSONL dump (with billing records embedded) at ``trace_path + ".jsonl"``.
    """
    if world is not None:
        tracer = world.tracer
        if not tracer.enabled:
            raise ValueError(
                "run_mlless_traced needs a world built with an enabled Tracer"
            )
    else:
        tracer = Tracer()
        world = build_world(seed=config.seed, faults=config.faults, tracer=tracer)
    result = run_mlless(config, world=world)
    if trace_path is not None:
        from ..trace_cli import write_run_trace

        write_run_trace(tracer, trace_path, billing=world.platform.billing)
    return result, tracer, world


def mlless_config(
    workload,
    n_workers: int,
    v: float = 0.0,
    autotune: bool = False,
    target_loss: Optional[float] = None,
    max_steps: int = 1500,
    max_time_s: float = 3600.0,
    seed: int = 3,
    dataset=None,
    autotuner_kwargs: Optional[dict] = None,
    faults: Optional[FaultProfile] = None,
    fault_tolerance: Optional[bool] = None,
    sync: str = "bsp",
    pipeline_stages: int = 1,
    micro_batches: int = 1,
    adaptive_kwargs: Optional[dict] = None,
) -> JobConfig:
    """A :class:`JobConfig` for a named workload (see experiments.settings).

    The scheduling epoch defaults to 5 s (the paper uses 20 s on jobs an
    order of magnitude longer; the ratio epoch/exec-time is preserved),
    with the knee detector tuned for the scaled runs' shorter histories.
    ``sync``/``pipeline_stages``/``micro_batches`` expose the pluggable
    sync policies and the pipeline-parallel execution scheme;
    ``adaptive_kwargs`` overrides :class:`~repro.core.AdaptiveConfig`
    fields when ``sync="adaptive"``.
    """
    from ..core import AdaptiveConfig, AutoTunerConfig

    at_kwargs = {
        "epoch_s": 5.0,
        "delta_s": 2.5,
        "s_threshold": 0.1,
        "knee_slope_threshold": 0.35,
        "knee_patience": 4,
    }
    at_kwargs.update(autotuner_kwargs or {})
    adaptive = None
    if sync == "adaptive":
        adaptive = AdaptiveConfig(**(adaptive_kwargs or {}))
    return JobConfig(
        model=workload.model(),
        make_optimizer=workload.make_optimizer,
        dataset=dataset if dataset is not None else workload.dataset(seed=1),
        n_workers=n_workers,
        sync=sync,
        significance_v=v,
        target_loss=(
            workload.target_loss if target_loss is None else target_loss
        ),
        max_steps=max_steps,
        max_time_s=max_time_s,
        seed=seed,
        autotuner=AutoTunerConfig(enabled=autotune, **at_kwargs),
        faults=faults,
        fault_tolerance=fault_tolerance,
        pipeline_stages=pipeline_stages,
        micro_batches=micro_batches,
        adaptive=adaptive,
    )


def run_serverful_workload(
    workload,
    n_ranks: int,
    target_loss: Optional[float] = None,
    max_steps: int = 1500,
    max_time_s: float = 3600.0,
    seed: int = 3,
    dataset=None,
) -> RunResult:
    """Run the serverful (PyTorch-like) baseline on a workload."""
    from ..baselines import ServerfulConfig, ServerfulTrainer

    world = build_world(seed=seed)
    trainer = ServerfulTrainer(world.env, world.streams, world.cos, meter=world.meter)
    return trainer.run(
        ServerfulConfig(
            model=workload.model(),
            make_optimizer=workload.make_optimizer,
            dataset=dataset if dataset is not None else workload.dataset(seed=1),
            n_ranks=n_ranks,
            target_loss=(
                workload.target_loss if target_loss is None else target_loss
            ),
            max_steps=max_steps,
            max_time_s=max_time_s,
            seed=seed,
        )
    )


def run_pywren_workload(
    workload,
    n_workers: int,
    target_loss: Optional[float] = None,
    max_steps: int = 150,
    max_time_s: float = 3600.0,
    seed: int = 3,
    dataset=None,
) -> RunResult:
    """Run the PyWren-style baseline (step-capped: it converges very slowly)."""
    from ..baselines import PyWrenMLConfig, PyWrenMLTrainer

    world = build_world(seed=seed)
    trainer = PyWrenMLTrainer(world.env, world.platform, world.cos, meter=world.meter)
    return trainer.run(
        PyWrenMLConfig(
            model=workload.model(),
            make_optimizer=workload.make_optimizer,
            dataset=dataset if dataset is not None else workload.dataset(seed=1),
            n_workers=n_workers,
            target_loss=(
                workload.target_loss if target_loss is None else target_loss
            ),
            max_steps=max_steps,
            max_time_s=max_time_s,
            seed=seed,
        )
    )
