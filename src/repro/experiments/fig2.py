"""Figure 2: training speed and learning-curve prediction accuracy.

Four panels, all built from PMF training runs (the paper uses PMF on
MovieLens-1M; we use the scaled PMF workload):

* **2a** — training speed (steps/s) vs. number of workers: decreases with
  the worker count because per-step communication overhead grows with the
  pool (§4.2, estimation phase).
* **2b** — reference-curve fit: the four fitted coefficients of Eq. (2)
  on an EWMA-smoothed loss history, plus the fit error.
* **2c** — relative prediction error forecasting 50–200 steps ahead from
  the knee, for both curve families (paper: below 1.5%).
* **2d** — prediction error of the slow curve ``l_p(t)`` as the number of
  fitting points grows.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import ReferenceCurve, SlowCurve, SlopeKneeDetector, ewma
from .common import mlless_config, run_mlless
from .report import render_table
from .settings import make_workload

__all__ = [
    "fig2a_training_speed",
    "fig2b_reference_fit",
    "fig2c_horizon_error",
    "fig2d_error_vs_points",
    "main",
]

_WORKLOAD = "pmf-ml10m"


def _loss_history(n_workers: int = 12, max_steps: int = 260, seed: int = 3):
    """One PMF run with no convergence target; returns (steps, losses)."""
    workload = make_workload(_WORKLOAD)
    config = mlless_config(
        workload,
        n_workers=n_workers,
        v=0.0,
        target_loss=-1.0,  # never reached: collect a fixed-length history
        max_steps=max_steps,
        seed=seed,
    )
    result = run_mlless(config)
    steps, losses = result.monitor.series("loss_by_step").as_arrays()
    return result, steps, losses


def fig2a_training_speed(
    worker_counts=(4, 8, 12, 16, 24), max_steps: int = 60
) -> List[Dict]:
    """Steps/s vs. worker count (Fig. 2a)."""
    workload = make_workload(_WORKLOAD)
    dataset = workload.dataset(seed=1)
    rows = []
    for p in worker_counts:
        config = mlless_config(
            workload, n_workers=p, v=0.0, target_loss=-1.0,
            max_steps=max_steps, dataset=dataset,
        )
        result = run_mlless(config)
        rows.append(
            {
                "workers": p,
                "steps_per_s": round(result.steps_per_second(), 3),
                "step_duration_s": round(result.mean_step_duration(), 4),
            }
        )
    return rows


def fig2b_reference_fit(max_steps: int = 220) -> Dict:
    """Fit Eq. (2) to a smoothed PMF loss history (Fig. 2b)."""
    _result, steps, losses = _loss_history(max_steps=max_steps)
    smoothed = ewma(losses, alpha=0.3)
    curve = ReferenceCurve.fit(steps, smoothed)
    predicted = curve.predict(steps)
    fit_rmse = float(np.sqrt(np.mean((predicted - smoothed) ** 2)))
    t0, t1, t2, t3 = curve.theta
    return {
        "theta0": round(t0, 4),
        "theta1": round(t1, 4),
        "theta2": round(t2, 4),
        "theta3": round(t3, 4),
        "fit_rmse": round(fit_rmse, 5),
        "points": len(steps),
    }


def _rel_err(actual: float, predicted) -> float:
    """Scalar relative error |actual - predicted| / |actual| (Fig. 2c)."""
    predicted = float(np.asarray(predicted).ravel()[0])
    return abs(actual - predicted) / max(abs(actual), 1e-12)


def _knee_index(losses: np.ndarray) -> int:
    knee = SlopeKneeDetector().detect(list(losses))
    if knee is None:
        # Fall back to a third of the history: enough fast-region points.
        knee = max(10, len(losses) // 3)
    return knee


def _windowed(values: np.ndarray, index: int, half: int = 8) -> float:
    """Mean of ``values`` in a small window around ``index`` (denoising)."""
    lo = max(0, index - half)
    hi = min(len(values), index + half + 1)
    return float(np.mean(values[lo:hi]))


def fig2c_horizon_error(
    horizons=(50, 100, 150, 200), max_steps: int = 320
) -> List[Dict]:
    """Relative prediction error vs. forecast horizon (Fig. 2c).

    The reference curve is fitted on the history up to the knee, the slow
    curve on the first 40 post-knee points, and both predict 50-200 steps
    past the knee.  Actual losses are window-averaged to factor out
    mini-batch noise (the paper's curves come from much larger batches).
    """
    _result, steps, losses = _loss_history(max_steps=max_steps)
    smoothed = ewma(losses, alpha=0.2)
    knee = max(_knee_index(smoothed), 60)
    rows = []
    ref = ReferenceCurve.fit(steps[:knee], smoothed[:knee])
    slow = SlowCurve.fit(
        steps[knee : knee + 40], smoothed[knee : knee + 40],
        origin=int(steps[knee]) - 1,
    )
    for h in horizons:
        target = knee + h
        if target >= len(steps):
            continue
        actual = _windowed(smoothed, target)
        ref_err = _rel_err(actual, ref.predict(steps[target]))
        slow_err = _rel_err(actual, slow.predict(steps[target]))
        rows.append(
            {
                "horizon_steps": h,
                "ref_curve_err_pct": round(100 * ref_err, 3),
                "slow_curve_err_pct": round(100 * slow_err, 3),
            }
        )
    return rows


def fig2d_error_vs_points(
    point_counts=(10, 20, 40, 80), horizon: int = 60, max_steps: int = 320
) -> List[Dict]:
    """Slow-curve error vs. number of fitting points (Fig. 2d)."""
    _result, steps, losses = _loss_history(max_steps=max_steps)
    smoothed = ewma(losses, alpha=0.2)
    knee = max(_knee_index(smoothed), 60)
    rows = []
    for k in point_counts:
        hi = knee + k
        target = hi + horizon
        if target >= len(steps):
            continue
        slow = SlowCurve.fit(
            steps[knee:hi], smoothed[knee:hi], origin=int(steps[knee]) - 1
        )
        actual = _windowed(smoothed, target)
        err = _rel_err(actual, slow.predict(steps[target]))
        rows.append(
            {
                "fit_points": k,
                "horizon_steps": horizon,
                "slow_curve_err_pct": round(100 * err, 3),
            }
        )
    return rows


def main() -> str:
    """Run all four panels and render them."""
    parts = [
        render_table(fig2a_training_speed(), "Fig 2a: training speed vs workers"),
        render_table([fig2b_reference_fit()], "Fig 2b: reference curve fit"),
        render_table(fig2c_horizon_error(), "Fig 2c: prediction error vs horizon"),
        render_table(fig2d_error_vs_points(), "Fig 2d: error vs fitting points"),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
