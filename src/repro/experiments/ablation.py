"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these probe *why* the design works, one
switch at a time:

* **accumulation** — ISP's accumulate-until-significant filter vs. a
  drop-insignificant filter that discards rather than accumulates
  (implemented by resetting the accumulators each step);
* **knee gate** — scale-in gated on knee detection vs. immediate;
* **curve family** — quadratic slow-curve (Eq. 3) vs. reusing the
  power-law family in the slow region;
* **eviction reintegration** — model averaging of the departed replica
  on vs. off.
"""

from __future__ import annotations

from typing import Dict, List

from .common import mlless_config, run_mlless
from .report import render_table
from .settings import make_workload

__all__ = [
    "ablation_accumulation",
    "ablation_knee_gate",
    "ablation_curve_family",
    "ablation_reintegration",
    "ablation_sync_protocol",
    "ablation_knee_method",
    "main",
]


def ablation_accumulation(seed: int = 3, v: float = 0.7) -> List[Dict]:
    """ISP's accumulate-until-significant vs drop vs absolute top-k.

    Isolates the two ingredients of the ISP filter (§4.1): the relative
    significance test and the accumulation of filtered-out remainders.
    """
    from ..core.filters import DropInsignificantFilter, TopKFilter

    workload = make_workload(_WORKLOAD)
    dataset = workload.dataset(seed=1)
    variants = {
        "isp (accumulate)": None,
        "drop (no accumulation)": lambda shapes: DropInsignificantFilter(
            v, shapes
        ),
        "top-20% (absolute)": lambda shapes: TopKFilter(0.2, shapes),
    }
    rows = []
    for label, factory in variants.items():
        config = mlless_config(
            workload, n_workers=16, v=v, max_steps=900, seed=seed,
            dataset=dataset,
        )
        config.make_filter = factory
        result = run_mlless(config)
        rows.append(
            {
                "filter": label,
                "exec_time_s": round(result.exec_time, 1),
                "steps": result.total_steps,
                "final_loss": round(result.final_loss, 4),
                "converged": result.converged,
            }
        )
    return rows

_WORKLOAD = "pmf-ml10m"


def _run(n_workers=16, v=0.7, max_steps=900, seed=3, dataset=None, **cfg_overrides):
    workload = make_workload(_WORKLOAD)
    config = mlless_config(
        workload, n_workers=n_workers, v=v, autotune=True,
        max_steps=max_steps, seed=seed, dataset=dataset,
        autotuner_kwargs=cfg_overrides.pop("autotuner_kwargs", None),
    )
    for key, value in cfg_overrides.items():
        setattr(config, key, value)
    return run_mlless(config)


def ablation_knee_gate(seed: int = 3) -> List[Dict]:
    """Knee-gated scale-in vs immediate scale-in."""
    workload = make_workload(_WORKLOAD)
    dataset = workload.dataset(seed=1)
    rows = []
    for label, ignore in (("knee-gated", False), ("immediate", True)):
        result = _run(
            dataset=dataset, seed=seed,
            autotuner_kwargs={"ignore_knee_gate": ignore},
        )
        rows.append(
            {
                "variant": label,
                "exec_time_s": round(result.exec_time, 1),
                "cost_usd": round(result.total_cost, 5),
                "perf_per_$": round(result.perf_per_dollar, 1),
                "final_loss": round(result.final_loss, 4),
                "workers_end": result.final_worker_count(),
                "converged": result.converged,
            }
        )
    return rows


def ablation_curve_family(seed: int = 3) -> List[Dict]:
    """Quadratic (Eq. 3) vs power-law slow-curve family."""
    workload = make_workload(_WORKLOAD)
    dataset = workload.dataset(seed=1)
    rows = []
    for family in ("quadratic", "power"):
        result = _run(
            dataset=dataset, seed=seed,
            autotuner_kwargs={"slow_curve_family": family},
        )
        rows.append(
            {
                "slow_curve_family": family,
                "exec_time_s": round(result.exec_time, 1),
                "cost_usd": round(result.total_cost, 5),
                "perf_per_$": round(result.perf_per_dollar, 1),
                "workers_end": result.final_worker_count(),
                "converged": result.converged,
            }
        )
    return rows


def ablation_reintegration(seed: int = 3) -> List[Dict]:
    """Eviction-time model averaging on vs off (ISP, aggressive tuner)."""
    workload = make_workload(_WORKLOAD)
    dataset = workload.dataset(seed=1)
    rows = []
    for reintegrate in (True, False):
        result = _run(dataset=dataset, seed=seed, reintegrate_on_evict=reintegrate)
        rows.append(
            {
                "reintegrate": reintegrate,
                "exec_time_s": round(result.exec_time, 1),
                "steps": result.total_steps,
                "final_loss": round(result.final_loss, 4),
                "converged": result.converged,
            }
        )
    return rows


def ablation_sync_protocol(seed: int = 3) -> List[Dict]:
    """BSP barrier vs SSP at several staleness bounds (no auto-tuner)."""
    workload = make_workload(_WORKLOAD)
    dataset = workload.dataset(seed=1)
    rows = []
    variants = [("bsp", 0), ("ssp", 0), ("ssp", 2), ("ssp", 4)]
    for sync, staleness in variants:
        config = mlless_config(
            workload, n_workers=16, v=0.7, max_steps=900, seed=seed,
            dataset=dataset,
        )
        config.sync = sync
        config.ssp_staleness = staleness
        result = run_mlless(config)
        rows.append(
            {
                "sync": sync if sync == "bsp" else f"ssp(s={staleness})",
                "exec_time_s": round(result.exec_time, 1),
                "steps": result.total_steps,
                "step_duration_s": round(result.mean_step_duration(), 4),
                "final_loss": round(result.final_loss, 4),
                "converged": result.converged,
            }
        )
    return rows


def ablation_knee_method(seed: int = 3) -> List[Dict]:
    """Slope-threshold knee heuristic vs Kneedle (both pluggable, §4.2)."""
    workload = make_workload(_WORKLOAD)
    dataset = workload.dataset(seed=1)
    rows = []
    for method in ("slope", "kneedle"):
        result = _run(
            dataset=dataset, seed=seed,
            autotuner_kwargs={"knee_method": method},
        )
        rows.append(
            {
                "knee_method": method,
                "exec_time_s": round(result.exec_time, 1),
                "cost_usd": round(result.total_cost, 5),
                "workers_end": result.final_worker_count(),
                "converged": result.converged,
            }
        )
    return rows


def main() -> str:
    parts = [
        render_table(ablation_accumulation(), "Ablation: update filter"),
        render_table(ablation_knee_gate(), "Ablation: knee gate"),
        render_table(ablation_curve_family(), "Ablation: slow-curve family"),
        render_table(ablation_reintegration(), "Ablation: eviction reintegration"),
        render_table(ablation_sync_protocol(), "Ablation: BSP vs SSP"),
        render_table(ablation_knee_method(), "Ablation: knee method"),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
