"""``python -m repro.analysis`` — run the sim-lint static analyzer."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
