"""``[tool.sim-lint]`` configuration loading.

Configuration lives in ``pyproject.toml`` so the analyzer, CI and
developers all read one source of truth.  Recognised keys (all optional;
defaults reproduce the repo layout)::

    [tool.sim-lint]
    # package-relative directories that run on the simulated clock —
    # SIM001/SIM003/SIM005/SIM006 apply only here
    simulated-layers = ["sim", "faas", "storage", "net", "vm", "core", "faults"]
    # modules where float ==/!= comparisons are audited (SIM004)
    billing-modules = ["faas/billing.py", "experiments/report.py"]
    # path fragments excluded from scanning entirely
    exclude = []

    [tool.sim-lint.allow]
    # per-module rule allowlist: these modules may use the listed rules'
    # banned constructs (e.g. explicitly seeded RNG factories)
    "sim/rand.py" = ["SIM002"]

    [tool.sim-lint.exec]          # EXEC1xx backend-neutrality family
    machine-modules = []          # extra machine hosts beyond detection
    protocols-module = "exec/protocols.py"
    services-protocol = "Services"
    backends = ["exec/sim.py:SimServices", "exec/local.py:LocalServices"]
    banned-imports = ["sim", "exec.sim", "threading", "queue", "time"]  # + more defaults

    [tool.sim-lint.seed]          # SEED1xx seed-stream family
    rng-factories = ["sim/rand.py"]   # modules allowed to build RNGs

    [tool.sim-lint.lock]          # LOCK1xx thread-backend family
    modules = ["exec/local.py"]   # modules under lock-hygiene rules
    sanctioned-blocking = []      # helper qualnames allowed to block forever

Python 3.11+ parses the file with :mod:`tomllib`; on 3.9/3.10 (no
tomllib, and this repo adds no third-party dependencies) a minimal
line-oriented fallback parser handles the subset of TOML these tables
use: section headers, string values, booleans, and (possibly multi-line)
arrays of strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["SimLintConfig", "load_config", "parse_toml_subset"]

#: directories (relative to the package root) simulated-clock rules police
DEFAULT_SIMULATED_LAYERS = (
    "sim",
    "faas",
    "storage",
    "net",
    "vm",
    "core",
    "faults",
)

#: modules whose arithmetic feeds bills / reports (SIM004 scope)
DEFAULT_BILLING_MODULES = (
    "faas/billing.py",
    "experiments/report.py",
    "pricing/meter.py",
    "pricing/catalog.py",
)

#: the distribution's top package: absolute imports of it normalise to
#: the same package-relative form the layer prefixes use
DEFAULT_PACKAGE_NAME = "repro"

#: module hosting the backend contract protocols (EXEC102/EXEC103)
DEFAULT_PROTOCOLS_MODULE = "exec/protocols.py"

#: the data-plane protocol class machines yield tokens from
DEFAULT_SERVICES_CLASS = "Services"

#: ``module:Class`` per backend that must implement every Services method
DEFAULT_EXEC_BACKENDS = (
    "exec/sim.py:SimServices",
    "exec/local.py:LocalServices",
)

#: modules (package-relative) machine hosts may never import — the sim
#: kernel, the concrete backends, and host concurrency/clock/IO modules.
#: Matching is by dotted prefix: ``sim`` bans ``sim.core`` too.
DEFAULT_EXEC_BANNED_IMPORTS = (
    "sim",
    "exec.sim",
    "exec.local",
    "threading",
    "queue",
    "_thread",
    "multiprocessing",
    "concurrent",
    "asyncio",
    "socket",
    "subprocess",
    "selectors",
    "select",
    "signal",
    "time",
    "os",
)

#: modules allowed to construct RNGs directly (SEED103): the stream
#: registry itself plus the explicitly seeded factories that SIM002's
#: per-module allowlist has always covered
DEFAULT_SEED_RNG_FACTORIES = (
    "sim/rand.py",
    "ml/data/synthetic.py",
    "core/worker.py",
    "baselines/pywren_ml.py",
    "baselines/serverful.py",
    "bench/workloads.py",
)

#: thread-backend modules whose lock discipline LOCK1xx polices
DEFAULT_LOCK_MODULES = ("exec/local.py",)


@dataclass(frozen=True)
class SimLintConfig:
    """Resolved analyzer configuration."""

    simulated_layers: Tuple[str, ...] = DEFAULT_SIMULATED_LAYERS
    billing_modules: Tuple[str, ...] = DEFAULT_BILLING_MODULES
    exclude: Tuple[str, ...] = ()
    #: module path -> rule ids permitted module-wide
    allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: the distribution's top package name (import normalisation)
    package_name: str = DEFAULT_PACKAGE_NAME
    #: extra modules policed as machine hosts even without detected machines
    exec_machine_modules: Tuple[str, ...] = ()
    exec_protocols_module: str = DEFAULT_PROTOCOLS_MODULE
    exec_services_class: str = DEFAULT_SERVICES_CLASS
    exec_backends: Tuple[str, ...] = DEFAULT_EXEC_BACKENDS
    exec_banned_imports: Tuple[str, ...] = DEFAULT_EXEC_BANNED_IMPORTS
    seed_rng_factories: Tuple[str, ...] = DEFAULT_SEED_RNG_FACTORIES
    lock_modules: Tuple[str, ...] = DEFAULT_LOCK_MODULES
    #: ``Class.method`` / function qualnames allowed timeout-less blocking
    lock_sanctioned: Tuple[str, ...] = ()

    def in_simulated_layer(self, module: str) -> bool:
        """True when ``module`` (package-relative posix path) is simulated."""
        return any(
            module == layer or module.startswith(layer + "/")
            for layer in self.simulated_layers
        )

    def is_billing_module(self, module: str) -> bool:
        return module in self.billing_modules

    def allowed_rules(self, module: str) -> Tuple[str, ...]:
        return self.allow.get(module, ())

    def is_excluded(self, module: str) -> bool:
        return any(fragment and fragment in module for fragment in self.exclude)

    def in_lock_module(self, module: str) -> bool:
        """True when ``module`` is a thread-backend module (LOCK1xx scope)."""
        return any(
            module == entry or module.startswith(entry + "/")
            for entry in self.lock_modules
        )

    def is_rng_factory(self, module: str) -> bool:
        return module in self.seed_rng_factories

    def normalize_import(self, name: str) -> str:
        """Strip the top-package prefix off an absolute internal import.

        ``repro.exec.sim`` and the relative ``..exec.sim`` must ban
        identically; external imports (``numpy``, ``threading``) pass
        through unchanged.
        """
        prefix = self.package_name + "."
        if name.startswith(prefix):
            return name[len(prefix):]
        return name


def load_config(pyproject: Optional[Path] = None, start: Optional[Path] = None) -> SimLintConfig:
    """Load ``[tool.sim-lint]`` from ``pyproject``.

    When ``pyproject`` is None, search upward from ``start`` (or the
    current directory) for a ``pyproject.toml``.  A missing file or a
    file without the table yields the defaults.
    """
    if pyproject is None:
        pyproject = _discover_pyproject(start or Path.cwd())
    if pyproject is None or not pyproject.is_file():
        return SimLintConfig()
    data = _read_toml(pyproject)
    table = data.get("tool", {}).get("sim-lint", {})
    if not isinstance(table, dict):
        return SimLintConfig()
    return config_from_table(table)


def config_from_table(table: dict) -> SimLintConfig:
    """Build a :class:`SimLintConfig` from a parsed ``[tool.sim-lint]`` table."""
    kwargs: dict = {}
    layers = table.get("simulated-layers")
    if isinstance(layers, list):
        kwargs["simulated_layers"] = tuple(str(x).strip("/") for x in layers)
    billing = table.get("billing-modules")
    if isinstance(billing, list):
        kwargs["billing_modules"] = tuple(str(x) for x in billing)
    exclude = table.get("exclude")
    if isinstance(exclude, list):
        kwargs["exclude"] = tuple(str(x) for x in exclude)
    allow = table.get("allow")
    if isinstance(allow, dict):
        kwargs["allow"] = {
            str(module): tuple(str(r).upper() for r in rules)
            for module, rules in allow.items()
            if isinstance(rules, list)
        }
    package = table.get("package")
    if isinstance(package, str) and package:
        kwargs["package_name"] = package

    exec_table = table.get("exec")
    if isinstance(exec_table, dict):
        _take_list(exec_table, "machine-modules", kwargs, "exec_machine_modules")
        _take_str(exec_table, "protocols-module", kwargs, "exec_protocols_module")
        _take_str(exec_table, "services-protocol", kwargs, "exec_services_class")
        _take_list(exec_table, "backends", kwargs, "exec_backends")
        _take_list(exec_table, "banned-imports", kwargs, "exec_banned_imports")
    seed_table = table.get("seed")
    if isinstance(seed_table, dict):
        _take_list(seed_table, "rng-factories", kwargs, "seed_rng_factories")
    lock_table = table.get("lock")
    if isinstance(lock_table, dict):
        _take_list(lock_table, "modules", kwargs, "lock_modules")
        _take_list(lock_table, "sanctioned-blocking", kwargs, "lock_sanctioned")
    return SimLintConfig(**kwargs)


def _take_list(table: dict, key: str, kwargs: dict, field_name: str) -> None:
    value = table.get(key)
    if isinstance(value, list):
        kwargs[field_name] = tuple(str(x) for x in value)


def _take_str(table: dict, key: str, kwargs: dict, field_name: str) -> None:
    value = table.get(key)
    if isinstance(value, str) and value:
        kwargs[field_name] = value


def _discover_pyproject(start: Path) -> Optional[Path]:
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def _read_toml(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib  # Python >= 3.11
    except ImportError:
        return parse_toml_subset(text)
    return tomllib.loads(text)


# -- fallback parser (Python 3.9/3.10, stdlib only) ------------------------

_SECTION_RE = re.compile(r"^\[\s*([^\]]+?)\s*\]\s*$")
_KEY_RE = re.compile(r"""^\s*(?:"([^"]+)"|'([^']+)'|([A-Za-z0-9_.-]+))\s*=\s*(.*)$""")
_STRING_RE = re.compile(r"""^(?:"([^"]*)"|'([^']*)')$""")


def parse_toml_subset(text: str) -> dict:
    """Parse the TOML subset ``[tool.sim-lint]`` uses into nested dicts.

    Supports: ``[dotted.section]`` headers, ``key = "string"``,
    ``key = true/false``, integers/floats, and arrays of strings that may
    span multiple lines.  Unparseable values are skipped (this fallback
    only needs to be correct for the sim-lint tables; it must merely not
    crash on the rest of the file).
    """
    root: dict = {}
    section = root
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip_comment(lines[i])
        i += 1
        if not line.strip():
            continue
        header = _SECTION_RE.match(line.strip())
        if header:
            section = root
            for part in _split_section(header.group(1)):
                section = section.setdefault(part, {})
                if not isinstance(section, dict):  # scalar collision: bail out
                    section = {}
            continue
        key_match = _KEY_RE.match(line)
        if not key_match:
            continue
        key = next(g for g in key_match.groups()[:3] if g is not None)
        value_src = key_match.group(4).strip()
        if value_src.startswith("[") and "]" not in value_src:
            # multi-line array: accumulate until the closing bracket
            parts = [value_src]
            while i < len(lines):
                fragment = _strip_comment(lines[i])
                i += 1
                parts.append(fragment.strip())
                if "]" in fragment:
                    break
            value_src = " ".join(parts)
        value = _parse_value(value_src)
        if value is not None:
            section[key] = value
    return root


def _split_section(name: str) -> List[str]:
    parts: List[str] = []
    for raw in re.findall(r'"[^"]*"|\'[^\']*\'|[^.]+', name):
        parts.append(raw.strip().strip("\"'"))
    return [p for p in parts if p]


def _strip_comment(line: str) -> str:
    out: List[str] = []
    quote = ""
    for ch in line:
        if quote:
            out.append(ch)
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out)


def _parse_value(src: str):
    src = src.strip().rstrip(",").strip()
    if not src:
        return None
    if src in ("true", "false"):
        return src == "true"
    string = _STRING_RE.match(src)
    if string:
        return string.group(1) if string.group(1) is not None else string.group(2)
    if src.startswith("[") and src.endswith("]"):
        # Arrays of scalars (strings, booleans, numbers — possibly
        # mixed): split on top-level commas, parse each item with the
        # scalar rules above, and skip anything unparseable.  Scenario
        # specs (repro.scenarios) rely on numeric items for ranges like
        # ``crash_window_s = [0.5, 15.0]``.
        items = []
        for part in _split_array_items(src[1:-1]):
            value = _parse_value(part)
            if value is not None:
                items.append(value)
        return items
    try:
        return int(src)
    except ValueError:
        pass
    try:
        return float(src)
    except ValueError:
        return None


def _split_array_items(inner: str) -> List[str]:
    """Split an array body on commas outside quotes."""
    items: List[str] = []
    current: List[str] = []
    quote = ""
    for ch in inner:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch == ",":
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    items.append("".join(current))
    return [item for item in (i.strip() for i in items) if item]
