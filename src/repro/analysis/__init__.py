"""Simulation-purity static analysis (``sim-lint``) and determinism oracle.

Everything this reproduction claims — convergence curves, bills, the
PR-1 fault-injection story — rests on the DES kernel being
bit-deterministic: one seed, one byte-identical event schedule.  The
invariants that guarantee this (named RNG streams, no wall-clock in
simulated layers, stable event ordering) used to live only in
docstrings; this package makes violating them a CI failure.

Two complementary halves:

``repro.analysis`` (static)
    A two-phase project analyzer (``python -m repro.analysis``): a
    *collect* phase parses every file once into a shared
    :class:`~repro.analysis.project.ProjectContext` (import graph,
    symbol tables, machine detection, seed-stream call sites); a *check*
    phase runs the per-file purity rules (``SIM0xx``) plus three
    cross-module families — ``EXEC1xx`` (backend-neutrality of the
    training machines), ``SEED1xx`` (project-wide seed-stream
    discipline), ``LOCK1xx`` (thread-backend lock hygiene).  Pure
    ``ast`` + a small rule engine — no third-party lint framework.
    Findings are suppressible per line (``# sim-lint: disable=ID``), per
    module (the ``[tool.sim-lint]`` allowlist in ``pyproject.toml``) or
    via a ``--baseline`` file for grandfathered findings; reports render
    as text, JSON, GitHub annotations, or SARIF.

``repro.analysis.determinism`` (runtime)
    An end-to-end oracle that runs a small training job twice, hashes
    the per-event monitor trace, and pinpoints the first diverging
    event.  The static rules catch hazards the oracle's single workload
    never executes; the oracle catches semantic non-determinism no
    syntactic rule can see.
"""

from .baseline import load_baseline, write_baseline
from .config import SimLintConfig, load_config
from .engine import Finding, analyze_paths, iter_source_files
from .formats import FORMATS, render
from .project import ProjectContext
from .rules import ALL_RULES, rule_by_id

__all__ = [
    "ALL_RULES",
    "FORMATS",
    "Finding",
    "ProjectContext",
    "SimLintConfig",
    "analyze_paths",
    "iter_source_files",
    "load_baseline",
    "load_config",
    "render",
    "rule_by_id",
    "write_baseline",
]
