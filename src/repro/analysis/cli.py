"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Examples::

    python -m repro.analysis                        # scan src/repro, text output
    python -m repro.analysis --json                 # machine-readable report
    python -m repro.analysis --format github        # PR-diff annotations
    python -m repro.analysis --format sarif --output sim-lint.sarif
    python -m repro.analysis --baseline analysis-baseline.json
    python -m repro.analysis --rules SIM001,EXEC102 src/repro/core
    python -m repro.analysis --write-baseline analysis-baseline.json

Exit codes: 0 clean (no non-grandfathered findings), 1 findings, 2 bad
invocation or unreadable configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import load_baseline, split_by_baseline, write_baseline
from .config import load_config
from .engine import Finding, analyze_paths
from .formats import FORMATS, render
from .rules import ALL_RULES, iter_rule_docs, rule_by_id

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Simulation-purity static analysis for the MLLess reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=sorted(FORMATS), default=None, dest="fmt",
        help="report format (default: text); github = Actions annotations, "
        "sarif = SARIF 2.1.0 for code-scanning upload",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE as well as stdout",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="JSON baseline of grandfathered findings that do not fail the run",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", dest="write_baseline_path",
        help="write current findings to FILE as a new baseline and exit 0",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT",
        help="pyproject.toml holding [tool.sim-lint] (default: discovered upward)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule subset to run (e.g. SIM001,SIM003)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its rationale and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for doc in iter_rule_docs():
            print(f"{doc['id']}: {doc['title']}")
            for line in doc["doc"].splitlines():
                print(f"    {line.rstrip()}")
            print()
        return 0

    try:
        rules = _select_rules(args.rules)
    except KeyError as exc:
        parser.error(str(exc))

    scan_paths = [Path(p) for p in args.paths]
    missing = [p for p in scan_paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    config_path = Path(args.config) if args.config else None
    if config_path is not None and not config_path.is_file():
        print(f"error: config file not found: {config_path}", file=sys.stderr)
        return 2
    config = load_config(pyproject=config_path, start=scan_paths[0])

    findings = analyze_paths(scan_paths, config=config, rules=rules)

    if args.write_baseline_path:
        count = write_baseline(findings, Path(args.write_baseline_path))
        print(f"wrote {count} finding(s) to baseline {args.write_baseline_path}")
        return 0

    grandfathered: List[Finding] = []
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"error: baseline file not found: {baseline_path}", file=sys.stderr)
            return 2
        try:
            fingerprints = load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered = split_by_baseline(findings, fingerprints)

    fmt = args.fmt or ("json" if args.as_json else "text")
    report = render(fmt, findings, grandfathered)
    print(report)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    return 1 if findings else 0


def _select_rules(spec: Optional[str]):
    if not spec:
        return list(ALL_RULES)
    return [rule_by_id(rule_id.strip()) for rule_id in spec.split(",") if rule_id.strip()]
