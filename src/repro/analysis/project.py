"""The collect phase: a whole-program ``ProjectContext`` shared by rules.

Per-file AST scanning cannot see the three architectural contracts the
recent backend/platform work rests on — backend-neutral machines, named
seed-stream isolation, and the local backend's lock discipline — because
each is a property of *several* modules at once.  This module parses
every file exactly once and derives the shared facts the cross-module
rule families (``EXEC1xx``/``SEED1xx``/``LOCK1xx``) check against:

* the **module table**: one :class:`ModuleInfo` per parsed file, holding
  its :class:`~repro.analysis.engine.FileContext`, alias map, class and
  top-level-function symbol tables, and extent-aware suppressions;
* the **import graph**: every import statement resolved to a
  package-relative dotted module (relative imports are resolved against
  the importing module's own package path, ``repro.``-absolute imports
  are normalised the same way);
* **machine detection**: a function is a *machine* when it is a
  generator and is annotated against the backend contract — its return
  annotation is ``Machine`` or a parameter is annotated
  ``ExecutionContext``;
* **seed-stream call sites**: every ``streams.stream(...)``-shaped call,
  classified as a literal name, a dynamic name carrying a per-entity
  placeholder, or a dynamic name without one;
* the **Services protocol surface**: the method table of the configured
  ``Services`` protocol class plus each configured backend class, for
  the conformance-drift check.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .astutils import build_import_map, is_generator_function, terminal_name
from .config import SimLintConfig
from .engine import FileContext, Finding, parse_file, module_path, parse_suppressions

__all__ = [
    "MachineFunction",
    "ModuleImport",
    "ModuleInfo",
    "ProjectContext",
    "StreamCall",
]


@dataclass(frozen=True)
class ModuleImport:
    """One import statement, resolved to a package-relative dotted module."""

    #: dotted module name: ``exec.protocols`` for internal (relative or
    #: ``repro.``-absolute) imports, ``threading``/``numpy`` for external
    name: str
    node: ast.stmt


@dataclass(frozen=True)
class MachineFunction:
    """A backend-neutral generator machine definition."""

    module: str
    qualname: str
    node: ast.FunctionDef


@dataclass(frozen=True)
class StreamCall:
    """One ``streams.stream(<name>)`` call site."""

    module: str
    node: ast.Call
    #: the literal stream name, when the argument is a string constant
    literal: Optional[str]
    #: True when the name is built dynamically (f-string/concat) but
    #: contains no per-entity placeholder — every caller would share one
    #: stream while the code reads as if each entity had its own
    dynamic_without_entity: bool


@dataclass
class ModuleInfo:
    """Everything the collect phase knows about one parsed module."""

    ctx: FileContext
    imports: Dict[str, str]
    module_imports: List[ModuleImport]
    classes: Dict[str, ast.ClassDef]
    functions: Dict[str, ast.FunctionDef]
    machines: List[MachineFunction]
    stream_calls: List[StreamCall]
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)


class ProjectContext:
    """The shared result of parsing every file under the scan roots."""

    def __init__(self, config: SimLintConfig):
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}
        self.parse_errors: List[Finding] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def collect(cls, files: Iterable[Path], config: SimLintConfig) -> "ProjectContext":
        project = cls(config)
        for path in files:
            module = module_path(path)
            if config.is_excluded(module):
                continue
            ctx, error = parse_file(path, module, config)
            if error is not None:
                project.parse_errors.append(error)
                continue
            assert ctx is not None
            project.modules[module] = _collect_module(ctx)
        return project

    def module_names(self) -> List[str]:
        return sorted(self.modules)

    # -- derived facts ----------------------------------------------------

    def machine_modules(self) -> List[str]:
        """Modules hosting at least one machine, plus config-forced ones."""
        hosts = {m for m, info in self.modules.items() if info.machines}
        hosts.update(m for m in self.config.exec_machine_modules if m in self.modules)
        return sorted(hosts)

    def services_methods(self) -> Optional[Dict[str, ast.FunctionDef]]:
        """Method table of the configured ``Services`` protocol class.

        ``None`` when the protocols module (or the class) is not part of
        this scan — the protocol-dependent rules then skip rather than
        guess.  Dunder and private methods are not part of the contract.
        """
        info = self.modules.get(self.config.exec_protocols_module)
        if info is None:
            return None
        cls = info.classes.get(self.config.exec_services_class)
        if cls is None:
            return None
        return {
            node.name: node
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and not node.name.startswith("_")
        }

    def backend_classes(self) -> List[Tuple[str, str, Optional[ast.ClassDef]]]:
        """``(module, class name, class def or None)`` per configured backend.

        Backends whose module is outside this scan are omitted entirely
        (scanning a subtree must not report the rest of the repo as
        missing); a backend whose module *is* scanned but lacks the class
        comes back with ``None`` so the conformance rule can flag the
        drifted class name.
        """
        out: List[Tuple[str, str, Optional[ast.ClassDef]]] = []
        for spec in self.config.exec_backends:
            module, _, cls_name = spec.partition(":")
            info = self.modules.get(module)
            if info is None:
                continue
            out.append((module, cls_name, info.classes.get(cls_name)))
        return out


# -- per-module collection -------------------------------------------------


def _collect_module(ctx: FileContext) -> ModuleInfo:
    imports = build_import_map(ctx.tree)
    classes: Dict[str, ast.ClassDef] = {}
    functions: Dict[str, ast.FunctionDef] = {}
    machines: List[MachineFunction] = []

    for node in ctx.tree.body:  # type: ignore[attr-defined]
        if isinstance(node, ast.ClassDef):
            classes[node.name] = node
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node

    for parent_name, fn in _iter_functions(ctx.tree):
        if _is_machine(fn):
            qualname = f"{parent_name}.{fn.name}" if parent_name else fn.name
            machines.append(MachineFunction(module=ctx.module, qualname=qualname, node=fn))

    return ModuleInfo(
        ctx=ctx,
        imports=imports,
        module_imports=_resolve_module_imports(ctx.module, ctx.tree),
        classes=classes,
        functions=functions,
        machines=machines,
        stream_calls=_collect_stream_calls(ctx),
        suppressions=parse_suppressions(ctx.lines, ctx.tree),
    )


def _iter_functions(tree: ast.AST):
    """(enclosing class name or None, function def) for every def."""
    for node in tree.body:  # type: ignore[attr-defined]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, item


def _is_machine(fn: ast.AST) -> bool:
    """Backend-neutral machine: a generator annotated against the contract."""
    returns_machine = terminal_name(getattr(fn, "returns", None)) == "Machine"
    args = getattr(fn, "args", None)
    takes_ectx = args is not None and any(
        terminal_name(arg.annotation) == "ExecutionContext"
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    )
    return (returns_machine or takes_ectx) and is_generator_function(fn)


def _resolve_module_imports(module: str, tree: ast.AST) -> List[ModuleImport]:
    """Every import in ``tree`` as a package-relative dotted module name."""
    pkg_parts = module.split("/")[:-1]  # e.g. "core/worker.py" -> ["core"]
    out: List[ModuleImport] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append(ModuleImport(name=alias.name, node=node))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            if node.level == 0:
                out.append(ModuleImport(name=node.module or "", node=node))
                continue
            # ``from .x import y`` / ``from .. import z``: resolve against
            # this module's package path.  level 1 is the current package.
            base = pkg_parts[: len(pkg_parts) - (node.level - 1)] if node.level > 1 else pkg_parts
            if node.module:
                out.append(ModuleImport(name=".".join([*base, *node.module.split(".")]), node=node))
            else:
                # ``from . import a, b``: each alias is itself a module.
                for alias in node.names:
                    out.append(ModuleImport(name=".".join([*base, alias.name]), node=node))
    return out


def _collect_stream_calls(ctx: FileContext) -> List[StreamCall]:
    calls: List[StreamCall] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "stream"):
            continue
        if len(node.args) != 1 or node.keywords:
            continue
        arg = node.args[0]
        literal: Optional[str] = None
        dynamic_without_entity = False
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            literal = arg.value
        elif isinstance(arg, ast.JoinedStr):
            has_placeholder = any(
                isinstance(part, ast.FormattedValue) for part in arg.values
            )
            dynamic_without_entity = not has_placeholder
            if not has_placeholder:
                # A placeholder-free f-string is a constant in disguise;
                # fold it so SEED101 sees the collision too.
                literal = "".join(
                    part.value
                    for part in arg.values
                    if isinstance(part, ast.Constant) and isinstance(part.value, str)
                )
        elif isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add):
            dynamic_without_entity = _is_constant_concat(arg)
        calls.append(
            StreamCall(
                module=ctx.module,
                node=node,
                literal=literal,
                dynamic_without_entity=dynamic_without_entity,
            )
        )
    return calls


def _is_constant_concat(node: ast.AST) -> bool:
    """True when a ``+`` chain is built purely from string constants."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _is_constant_concat(node.left) and _is_constant_concat(node.right)
    return isinstance(node, ast.Constant) and isinstance(node.value, str)
