"""LOCK1xx: concurrency discipline for the thread-backed local backend.

``exec/local.py`` is the one place real ``threading`` primitives are
allowed, which makes it the one place the classic thread bugs can live.
These rules encode the file's own documented discipline:

``LOCK101``
    a blocking call (``queue.get()``, ``join()``, ``wait()``,
    ``time.sleep``) is reachable while a lock is held — directly, or by
    calling a function that (transitively) blocks;

``LOCK102``
    two locks are acquired in inconsistent order somewhere in the module
    (an acquisition-order cycle), the precondition for an ABBA deadlock;

``LOCK103``
    a blocking call has no ``timeout=`` bound and sits outside the
    sanctioned helpers — a stuck peer then hangs the backend forever
    instead of surfacing as a timeout.

Everything here is a heuristic over one module's AST — lock identity is
``Class.attr``/name matching ``lock|mutex|sem|cond``, call resolution
covers plain names and ``self.method`` — but that is exactly the shape
of ``exec/local.py``, and the point is to catch regressions in *this*
file, not to model arbitrary Python.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .astutils import resolve
from .engine import FileContext, Finding, Rule
from .project import ModuleInfo, ProjectContext

__all__ = [
    "LOCK_RULES",
    "BlockingWhileLockedRule",
    "LockOrderCycleRule",
    "UnboundedBlockingRule",
]

#: names that denote a mutual-exclusion object
_LOCK_NAME_RE = re.compile(r"lock|mutex|sem|cond", re.IGNORECASE)

#: service-level consume calls: blocking, but internally deadline-bounded
#: (the local backend converts a stuck peer into a timeout), so they are
#: LOCK101 material when under a lock yet never LOCK103 material
_BOUNDED_SERVICE_ATTRS = {"consume", "consume_with_timeout"}


@dataclass(frozen=True)
class _BlockEvent:
    """One blocking call site."""

    node: ast.Call
    label: str
    bounded: bool
    held: Tuple[str, ...]


@dataclass(frozen=True)
class _CallEvent:
    """One intra-module call site (plain name or ``self.method``)."""

    node: ast.Call
    callee: str
    held: Tuple[str, ...]


@dataclass
class _FnFacts:
    """Per-function facts feeding the interprocedural fixpoint."""

    qualname: str
    node: ast.AST
    blocks: List[_BlockEvent] = field(default_factory=list)
    calls: List[_CallEvent] = field(default_factory=list)
    acquires: Set[str] = field(default_factory=set)
    #: (held lock, acquired lock, site) direct acquisition-order edges
    edges: List[Tuple[str, str, ast.AST]] = field(default_factory=list)


# -- per-function scan ------------------------------------------------------


class _FunctionScanner:
    """Walks one function body tracking the set of held locks."""

    def __init__(self, ctx: FileContext, imports: Dict[str, str], class_name: Optional[str]):
        self.ctx = ctx
        self.imports = imports
        self.class_name = class_name

    def scan(self, qualname: str, fn: ast.AST) -> _FnFacts:
        facts = _FnFacts(qualname=qualname, node=fn)
        self._scan_block(getattr(fn, "body", []), (), facts)
        return facts

    def _scan_block(self, stmts: Sequence[ast.stmt], held: Tuple[str, ...], facts: _FnFacts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scope: not executed under this region
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[str] = []
                for item in stmt.items:
                    lock = self._lock_of(item.context_expr)
                    if lock is None:
                        self._scan_expr(item.context_expr, held, facts)
                        continue
                    for prior in (*held, *acquired):
                        facts.edges.append((prior, lock, item.context_expr))
                    acquired.append(lock)
                    facts.acquires.add(lock)
                self._scan_block(stmt.body, (*held, *acquired), facts)
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, (ast.stmt, ast.excepthandler)):
                    continue
                self._scan_expr(child, held, facts)
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    self._scan_block(sub, held, facts)
            for handler in getattr(stmt, "handlers", []):
                self._scan_block(handler.body, held, facts)

    def _scan_expr(self, expr: ast.AST, held: Tuple[str, ...], facts: _FnFacts) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            blocking, bounded, label = self._classify_blocking(node)
            if blocking:
                facts.blocks.append(
                    _BlockEvent(node=node, label=label, bounded=bounded, held=held)
                )
                continue
            callee = self._callee_of(node)
            if callee is not None:
                facts.calls.append(_CallEvent(node=node, callee=callee, held=held))

    def _lock_of(self, expr: ast.AST) -> Optional[str]:
        """The lock identity of a ``with`` context expression, if any."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and _LOCK_NAME_RE.search(expr.attr)
        ):
            return f"{self.class_name or 'self'}.{expr.attr}"
        if isinstance(expr, ast.Name) and _LOCK_NAME_RE.search(expr.id):
            return expr.id
        return None

    def _callee_of(self, node: ast.Call) -> Optional[str]:
        """Intra-module callee qualname, for the fixpoint; None if unresolvable."""
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.class_name
        ):
            return f"{self.class_name}.{func.attr}"
        return None

    def _classify_blocking(self, call: ast.Call) -> Tuple[bool, bool, str]:
        """``(blocking, bounded, label)`` for one call site.

        Zero-positional-arg gating keeps the attribute heuristics honest:
        ``q.get()`` blocks but ``d.get(key)`` does not, ``t.join()``
        blocks but ``",".join(xs)`` does not.
        """
        if resolve(call.func, self.imports) == "time.sleep":
            return True, True, "time.sleep"
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False, False, ""
        attr = func.attr
        has_timeout = any(
            kw.arg == "timeout"
            and not (isinstance(kw.value, ast.Constant) and kw.value.value is None)
            for kw in call.keywords
        )
        if attr in _BOUNDED_SERVICE_ATTRS:
            return True, True, attr
        if attr in ("get", "join", "wait") and not call.args:
            return True, has_timeout, attr
        if attr == "acquire":
            bounded = has_timeout or any(
                kw.arg == "blocking" for kw in call.keywords
            ) or bool(call.args)
            return True, bounded, attr
        return False, False, ""


def _module_facts(info: ModuleInfo) -> Dict[str, _FnFacts]:
    """Scan every function and method of one module."""
    facts: Dict[str, _FnFacts] = {}
    for node in info.ctx.tree.body:  # type: ignore[attr-defined]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scanner = _FunctionScanner(info.ctx, info.imports, class_name=None)
            facts[node.name] = scanner.scan(node.name, node)
        elif isinstance(node, ast.ClassDef):
            scanner = _FunctionScanner(info.ctx, info.imports, class_name=node.name)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{item.name}"
                    facts[qualname] = scanner.scan(qualname, item)
    return facts


def _fixpoint(facts: Dict[str, _FnFacts]) -> Tuple[Dict[str, bool], Dict[str, Set[str]]]:
    """Transitive (may-block, may-acquire) summaries over the call graph."""
    blocks = {q: bool(f.blocks) for q, f in facts.items()}
    acquires = {q: set(f.acquires) for q, f in facts.items()}
    changed = True
    while changed:
        changed = False
        for qualname, fn in facts.items():
            for call in fn.calls:
                callee = call.callee
                if callee not in facts:
                    continue
                if blocks[callee] and not blocks[qualname]:
                    blocks[qualname] = True
                    changed = True
                missing = acquires[callee] - acquires[qualname]
                if missing:
                    acquires[qualname] |= missing
                    changed = True
    return blocks, acquires


class LockRule(Rule):
    requires_project = True

    def scope(self, config, module) -> bool:  # pragma: no cover - not used
        return True

    def _lock_module_facts(self, project: ProjectContext):
        for module in project.module_names():
            if project.config.in_lock_module(module):
                info = project.modules[module]
                yield info, _module_facts(info)


# -- LOCK101 ----------------------------------------------------------------


class BlockingWhileLockedRule(LockRule):
    """LOCK101: never block while holding a lock.

    A blocking call under a held lock stalls every thread contending for
    that lock for as long as the call takes — and if the blocked-on event
    is itself produced under the same lock, that is a deadlock, not a
    stall.  Checked both directly (the blocking call is lexically inside
    the ``with`` region) and through one level of indirection closed
    under a fixpoint (the region calls a helper that transitively
    blocks).
    """

    id = "LOCK101"
    title = "blocking call while holding a lock"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info, facts in self._lock_module_facts(project):
            trans_blocks, _ = _fixpoint(facts)
            for qualname in sorted(facts):
                fn = facts[qualname]
                for event in fn.blocks:
                    if event.held:
                        yield info.ctx.finding(
                            self.id,
                            event.node,
                            f"`{qualname}` calls blocking `{event.label}(...)` while "
                            f"holding {_fmt_locks(event.held)}; release the lock "
                            "before blocking (copy state out, block, re-acquire)",
                        )
                for call in fn.calls:
                    if call.held and trans_blocks.get(call.callee, False):
                        yield info.ctx.finding(
                            self.id,
                            call.node,
                            f"`{qualname}` calls `{call.callee}()` while holding "
                            f"{_fmt_locks(call.held)}, and `{call.callee}` "
                            "(transitively) makes a blocking call",
                        )


# -- LOCK102 ----------------------------------------------------------------


class LockOrderCycleRule(LockRule):
    """LOCK102: lock acquisition order must be acyclic.

    Builds the module-wide acquired-while-holding graph — an edge A→B
    whenever lock B is taken while A is held, including through
    intra-module calls (region calls a function that acquires B) — and
    reports every elementary cycle.  A cycle is the ABBA precondition:
    two threads entering it from different edges deadlock.
    """

    id = "LOCK102"
    title = "lock acquisition-order cycle"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info, facts in self._lock_module_facts(project):
            _, trans_acquires = _fixpoint(facts)
            edges: Dict[Tuple[str, str], ast.AST] = {}
            for fn in facts.values():
                for held, acquired, site in fn.edges:
                    edges.setdefault((held, acquired), site)
                for call in fn.calls:
                    for held in call.held:
                        for acquired in trans_acquires.get(call.callee, ()):
                            if acquired != held:
                                edges.setdefault((held, acquired), call.node)
            adjacency: Dict[str, Set[str]] = {}
            for a, b in edges:
                adjacency.setdefault(a, set()).add(b)
            for cycle in _elementary_cycles(adjacency):
                chain = " -> ".join((*cycle, cycle[0]))
                site = edges[(cycle[0], cycle[1 % len(cycle)])]
                yield info.ctx.finding(
                    self.id,
                    site,
                    f"lock acquisition-order cycle: {chain}; two threads "
                    "entering this cycle from different edges deadlock — pick "
                    "one global order and acquire in it everywhere",
                )


def _elementary_cycles(adjacency: Dict[str, Set[str]]) -> List[Tuple[str, ...]]:
    """All elementary cycles, each reported once in canonical rotation.

    Exhaustive path enumeration — fine because a module holds a handful
    of locks, not a handful of thousands.
    """
    cycles: Set[Tuple[str, ...]] = set()
    for start in sorted(adjacency):
        stack: List[Tuple[str, Tuple[str, ...]]] = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(adjacency.get(node, ())):
                if nxt == start:
                    pivot = path.index(min(path))
                    cycles.add(path[pivot:] + path[:pivot])
                elif nxt not in path:
                    stack.append((nxt, (*path, nxt)))
    return sorted(cycles)


# -- LOCK103 ----------------------------------------------------------------


class UnboundedBlockingRule(LockRule):
    """LOCK103: every blocking call carries a timeout.

    The local backend's liveness story is "a stuck peer becomes a
    timeout, the supervisor decides" — an unbounded ``q.get()`` /
    ``t.join()`` / ``ev.wait()`` opts out of that story and turns the
    first lost message into a hung process.  Helpers that are *supposed*
    to park forever go in ``[tool.sim-lint.lock] sanctioned-blocking``
    by qualified name.  Calls that are deadline-bounded internally
    (``consume``/``consume_with_timeout``) are exempt by construction.
    """

    id = "LOCK103"
    title = "unbounded blocking call"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info, facts in self._lock_module_facts(project):
            sanctioned = set(project.config.lock_sanctioned)
            for qualname in sorted(facts):
                if qualname in sanctioned or qualname.split(".")[-1] in sanctioned:
                    continue
                for event in facts[qualname].blocks:
                    if event.bounded:
                        continue
                    yield info.ctx.finding(
                        self.id,
                        event.node,
                        f"`{qualname}` makes an unbounded `{event.label}(...)` "
                        "call; pass timeout= so a stuck peer surfaces as a "
                        "timeout (or sanction this helper in "
                        "[tool.sim-lint.lock])",
                    )


def _fmt_locks(held: Tuple[str, ...]) -> str:
    names = ", ".join(f"`{lock}`" for lock in held)
    return f"lock {names}" if len(held) == 1 else f"locks {names}"


LOCK_RULES = (
    BlockingWhileLockedRule(),
    LockOrderCycleRule(),
    UnboundedBlockingRule(),
)
