"""EXEC1xx: backend-neutrality of the training machines (cross-module).

The PR-5 seam — worker/supervisor/SSP loops and the platform job machine
are plain generators yielding :class:`~repro.exec.protocols.Services`
tokens, driven either by the DES sim or by real threads — is only worth
anything if the machines *stay* neutral.  These rules make the three
ways the seam erodes a lint failure instead of a runtime surprise:

``EXEC101``
    a machine-hosting module imports the sim kernel, a concrete backend,
    or a host concurrency/clock module, re-coupling the core to one
    substrate;

``EXEC102``
    a machine yields something that is not a ``Services`` protocol call
    (or a ``yield from`` of another service generator) — the token would
    be meaningful to at most one backend;

``EXEC103``
    the ``Services`` protocol and its backend implementations drift: a
    method exists on the protocol but not in every configured backend,
    so the first job to use it dies with ``AttributeError`` on the
    backend nobody tested.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .engine import FileContext, Finding, Rule
from .project import MachineFunction, ProjectContext

__all__ = ["EXEC_RULES", "MachineImportRule", "MachineYieldRule", "ServicesConformanceRule"]


class ProjectRule(Rule):
    """Cross-module rule: scoping is internal to :meth:`check_project`."""

    requires_project = True

    def scope(self, config, module) -> bool:  # pragma: no cover - not used
        return True


# -- EXEC101 ----------------------------------------------------------------


class MachineImportRule(ProjectRule):
    """EXEC101: machine-hosting modules import only backend-neutral code.

    A module is a *machine host* when it defines at least one backend-
    neutral machine (a generator annotated ``-> Machine`` or taking an
    ``ExecutionContext``), or is listed in
    ``[tool.sim-lint.exec] machine-modules``.  Hosts may import
    ``exec.protocols`` (the contract) and pure-Python/numpy code, but
    never the sim kernel (``sim``), a concrete backend (``exec.sim``,
    ``exec.local``), or host concurrency/clock/IO modules
    (``threading``, ``queue``, ``time``, ``os``, ...): any of those
    re-couples the shared core to one substrate and silently breaks the
    other backend.
    """

    id = "EXEC101"
    title = "backend-coupled import in a machine-hosting module"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        banned = project.config.exec_banned_imports
        for module in project.machine_modules():
            info = project.modules[module]
            for imported in info.module_imports:
                name = project.config.normalize_import(imported.name)
                hit = _banned_prefix(name, banned)
                if hit is not None:
                    yield info.ctx.finding(
                        self.id,
                        imported.node,
                        f"machine-hosting module imports `{imported.name}` "
                        f"(banned family `{hit}`); machines may depend on "
                        "`exec.protocols` only — route this through a yielded "
                        "service token or move the code out of the machine module",
                    )


def _banned_prefix(name: str, banned: Tuple[str, ...]) -> Optional[str]:
    for ban in banned:
        if name == ban or name.startswith(ban + "."):
            return ban
    return None


# -- EXEC102 ----------------------------------------------------------------


class MachineYieldRule(ProjectRule):
    """EXEC102: every machine yield is a protocol call.

    Inside a machine, ``yield <expr>`` must be a call to a method of the
    ``Services`` protocol (``yield sv.kv_get(...)``) — that is the whole
    token contract — and ``yield from <expr>`` must delegate to another
    generator call (a sub-machine or service helper).  A bare-value
    yield (``yield 42``, ``yield``, ``yield some_variable``) produces a
    token only one backend (or none) can resolve and is exactly the kind
    of drift that worked by accident on the DES and deadlocks on
    threads.  The method table is read from the collected ``Services``
    protocol, so the rule tracks the contract automatically; when the
    protocols module is outside the scan there is no table to check
    against and the rule stays quiet.
    """

    id = "EXEC102"
    title = "machine yields a non-protocol value"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        services = project.services_methods()
        if services is None:
            return
        method_names = set(services)
        for module in project.machine_modules():
            info = project.modules[module]
            for machine in info.machines:
                yield from self._check_machine(info.ctx, machine, method_names)

    def _check_machine(
        self, ctx: FileContext, machine: MachineFunction, methods: set
    ) -> Iterator[Finding]:
        for node in _own_nodes(machine.node):
            if isinstance(node, ast.YieldFrom):
                if not isinstance(node.value, ast.Call):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"`{machine.qualname}` delegates with `yield from` to a "
                        "non-call expression; machines may only `yield from` "
                        "another service generator call",
                    )
            elif isinstance(node, ast.Yield):
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in methods
                ):
                    continue
                what = "a bare `yield`" if value is None else "a non-protocol value"
                yield ctx.finding(
                    self.id,
                    node,
                    f"`{machine.qualname}` yields {what}; every machine yield "
                    "must be a `Services` protocol call "
                    f"({', '.join(sorted(methods)[:4])}, ...) or a `yield from` "
                    "of another service generator",
                )


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """All nodes in ``fn``'s own scope, nested defs/lambdas excluded."""
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# -- EXEC103 ----------------------------------------------------------------


class ServicesConformanceRule(ProjectRule):
    """EXEC103: every ``Services`` method is implemented by every backend.

    The protocol in ``exec/protocols.py`` is structural — nothing at
    runtime forces ``SimServices`` and ``LocalServices`` to keep up with
    it.  This rule compares the protocol's public method table against
    each backend class configured in ``[tool.sim-lint.exec] backends``
    (``"module:Class"`` entries) and reports each missing method, so
    adding a service verb without implementing it everywhere is a lint
    error at commit time, not an ``AttributeError`` in the first job
    that exercises the forgotten backend.
    """

    id = "EXEC103"
    title = "Services protocol method missing from a backend"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        services = project.services_methods()
        if services is None:
            return
        for module, cls_name, cls_def in project.backend_classes():
            info = project.modules[module]
            if cls_def is None:
                yield Finding(
                    rule=self.id,
                    path=str(info.ctx.path),
                    module=module,
                    line=1,
                    col=1,
                    message=(
                        f"configured Services backend class `{cls_name}` does "
                        f"not exist in {module}; update the class or "
                        "`[tool.sim-lint.exec] backends`"
                    ),
                    snippet=f"{cls_name} (missing class)",
                )
                continue
            implemented = {
                item.name
                for item in cls_def.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for name in sorted(services):
                if name not in implemented:
                    # Synthetic snippet: (rule, module, snippet) is the
                    # baseline fingerprint, and the class-def source line
                    # would collide for two different missing methods.
                    yield Finding(
                        rule=self.id,
                        path=str(info.ctx.path),
                        module=module,
                        line=cls_def.lineno,
                        col=cls_def.col_offset + 1,
                        message=(
                            f"`{cls_name}` does not implement "
                            f"`Services.{name}`; a machine yielding "
                            f"`sv.{name}(...)` would die with AttributeError "
                            "on this backend"
                        ),
                        snippet=f"{cls_name}.{name} (missing)",
                    )


EXEC_RULES = (
    MachineImportRule(),
    MachineYieldRule(),
    ServicesConformanceRule(),
)
