"""The sim-lint rule engine: file discovery, suppression, rule dispatch.

Deliberately framework-free: a rule is an object with an ``id``, a
``scope`` predicate (which modules it polices, derived from
:class:`~repro.analysis.config.SimLintConfig`), and a ``check`` method
that walks a parsed AST and yields findings.  The engine owns everything
rules share: stable file ordering, module-path normalisation,
``# sim-lint: disable=`` comment handling, the per-module allowlist, and
deterministic output ordering.

Since the project-analyzer upgrade the engine runs in **two phases**:

*collect*
    every file is parsed exactly once into a
    :class:`~repro.analysis.project.ProjectContext` — module import
    graph, symbol table of class/function definitions, machine
    detection, alias-resolved call sites — shared by all rules;

*check*
    per-file rules (``SIM0xx``) run against each file's
    :class:`FileContext`; project rules (``EXEC1xx``/``SEED1xx``/
    ``LOCK1xx``, ``requires_project = True``) run once against the
    whole :class:`ProjectContext`.  All findings flow through the same
    suppression/allowlist filter, so ``# sim-lint: disable=EXEC102``
    works exactly like ``disable=SIM001``.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .config import SimLintConfig

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "analyze_paths",
    "iter_source_files",
    "module_path",
    "parse_suppressions",
]

#: ``# sim-lint: disable=SIM001`` or ``...disable=SIM001,EXEC102 — prose``
_SUPPRESS_RE = re.compile(
    r"#\s*sim-lint:\s*disable\s*=\s*([A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*|all)",
)

#: statement types whose multi-line extent a suppression comment covers —
#: simple (non-compound) statements only: extending a comment on a
#: ``def``/``for``/``with`` header over the whole body would suppress far
#: more than the author wrote the comment against.
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a precise source location."""

    rule: str
    path: str
    module: str
    line: int
    col: int
    message: str
    snippet: str

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity, for baseline files.

        Hashing (rule, module, source text) instead of (rule, path, line)
        keeps grandfathered findings pinned through unrelated edits that
        shift line numbers.
        """
        digest = hashlib.sha256(
            f"{self.rule}::{self.module}::{self.snippet}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    module: str
    source: str
    lines: Sequence[str]
    tree: ast.AST
    config: SimLintConfig

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule=rule_id,
            path=str(self.path),
            module=self.module,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )

    def segment(self, node: ast.AST) -> str:
        return ast.get_source_segment(self.source, node) or ""


class Rule:
    """Base rule: subclasses set ``id``/``title`` and implement a check.

    Per-file rules implement :meth:`check`; cross-module rules set
    ``requires_project = True`` and implement :meth:`check_project`
    against the shared :class:`~repro.analysis.project.ProjectContext`.
    """

    id: str = "SIM000"
    title: str = ""
    #: True for cross-module rules checked once per run, not per file
    requires_project: bool = False

    def scope(self, config: SimLintConfig, module: str) -> bool:
        """Whether this rule applies to ``module`` at all."""
        return config.in_simulated_layer(module)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:  # noqa: F821
        raise NotImplementedError


def parse_suppressions(
    lines: Sequence[str], tree: Optional[ast.AST] = None
) -> Dict[int, Set[str]]:
    """Per-line suppressed rule ids (1-based), from sim-lint comments.

    ``disable=all`` suppresses every rule on that line.  Trailing prose
    after the rule list is permitted and encouraged::

        if value == 0:  # sim-lint: disable=SIM004 — exact-zero display check

    When ``tree`` is given, a comment anywhere on a **multi-line simple
    statement** (a parenthesized call, a continued assignment, a long
    import) covers the statement's full ``lineno..end_lineno`` extent, so
    a finding whose node reports a continuation line is still suppressed
    by the comment on the opening line.
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        spec = match.group(1)
        if spec == "all":
            suppressed[lineno] = {"all"}
        else:
            suppressed[lineno] = {part.strip().upper() for part in spec.split(",")}
    if tree is not None and suppressed:
        for node in ast.walk(tree):
            if not isinstance(node, _SIMPLE_STMTS):
                continue
            end = getattr(node, "end_lineno", None)
            if end is None or end <= node.lineno:
                continue
            covering: Set[str] = set()
            for ln in range(node.lineno, end + 1):
                covering |= suppressed.get(ln, set())
            if covering:
                for ln in range(node.lineno, end + 1):
                    suppressed.setdefault(ln, set()).update(covering)
    return suppressed


def iter_source_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, each exactly once, sorted.

    Sorting makes the finding order (and therefore text/JSON output and
    exit codes under ``--baseline``) independent of filesystem order.
    """
    seen: Set[Path] = set()
    collected: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = path.rglob("*.py")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(sorted(collected, key=lambda p: str(p)))


def module_path(path: Path) -> str:
    """``path`` relative to its top-level package, as a posix string.

    Walks up while ``__init__.py`` is present, so
    ``src/repro/core/worker.py`` and ``core/worker.py`` (scanned from a
    different cwd) both normalise to ``core/worker.py`` — which is what
    the config's layer prefixes and allowlist keys are written against.
    A file outside any package is its own module path (file name).
    """
    path = Path(path).resolve()
    top_package = path.parent
    current = path.parent
    while (current / "__init__.py").is_file() and current.parent != current:
        top_package = current
        current = current.parent
    if (top_package / "__init__.py").is_file():
        return path.relative_to(top_package).as_posix()
    return path.name


def parse_file(
    path: Path, module: str, config: SimLintConfig
) -> "tuple[Optional[FileContext], Optional[Finding]]":
    """Parse one source file into a :class:`FileContext`.

    Returns ``(ctx, None)`` on success and ``(None, finding)`` when the
    file is unreadable or does not parse (rule id ``SIM000``).
    """
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, _degenerate_finding(path, module, f"unreadable file: {exc}")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            rule="SIM000",
            path=str(path),
            module=module,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
            snippet=(exc.text or "").strip(),
        )
    return (
        FileContext(
            path=path, module=module, source=source, lines=lines, tree=tree, config=config
        ),
        None,
    )


def analyze_paths(
    paths: Iterable[Path],
    config: Optional[SimLintConfig] = None,
    rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Run ``rules`` over every source file under ``paths``.

    Phase 1 parses every file once into a shared
    :class:`~repro.analysis.project.ProjectContext`; phase 2 runs the
    per-file rules against each file and the project rules against the
    whole context.  Returns findings sorted by (module, line, col, rule),
    already filtered through per-line suppressions and the module
    allowlist.
    """
    from .project import ProjectContext
    from .rules import ALL_RULES

    config = config or SimLintConfig()
    active_rules = list(rules if rules is not None else ALL_RULES)
    file_rules = [r for r in active_rules if not r.requires_project]
    project_rules = [r for r in active_rules if r.requires_project]

    project = ProjectContext.collect(iter_source_files(paths), config)

    raw: List[Finding] = list(project.parse_errors)
    for module in project.module_names():
        info = project.modules[module]
        allowed = set(config.allowed_rules(module))
        for rule in file_rules:
            if rule.id in allowed or not rule.scope(config, module):
                continue
            raw.extend(rule.check(info.ctx))
    for rule in project_rules:
        raw.extend(rule.check_project(project))

    findings = [f for f in raw if not _is_silenced(f, project, config)]
    findings.sort(key=lambda f: (f.module, f.line, f.col, f.rule))
    return findings


def _is_silenced(finding: Finding, project, config: SimLintConfig) -> bool:
    """Apply the module allowlist and line suppressions to one finding."""
    if finding.rule in config.allowed_rules(finding.module):
        return True
    info = project.modules.get(finding.module)
    if info is None:
        return False
    line_rules = info.suppressions.get(finding.line, ())
    return "all" in line_rules or finding.rule in line_rules


def _degenerate_finding(path: Path, module: str, message: str) -> Finding:
    return Finding(
        rule="SIM000",
        path=str(path),
        module=module,
        line=1,
        col=1,
        message=message,
        snippet="",
    )
