"""The sim-lint rule engine: file discovery, suppression, rule dispatch.

Deliberately framework-free: a rule is an object with an ``id``, a
``scope`` predicate (which modules it polices, derived from
:class:`~repro.analysis.config.SimLintConfig`), and a ``check`` method
that walks a parsed AST and yields findings.  The engine owns everything
rules share: stable file ordering, module-path normalisation,
``# sim-lint: disable=`` comment handling, the per-module allowlist, and
deterministic output ordering.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .config import SimLintConfig

__all__ = [
    "FileContext",
    "Finding",
    "analyze_paths",
    "iter_source_files",
    "module_path",
    "parse_suppressions",
]

#: ``# sim-lint: disable=SIM001`` or ``...disable=SIM001,SIM003 — prose``
_SUPPRESS_RE = re.compile(
    r"#\s*sim-lint:\s*disable\s*=\s*([A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*|all)",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a precise source location."""

    rule: str
    path: str
    module: str
    line: int
    col: int
    message: str
    snippet: str

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity, for baseline files.

        Hashing (rule, module, source text) instead of (rule, path, line)
        keeps grandfathered findings pinned through unrelated edits that
        shift line numbers.
        """
        digest = hashlib.sha256(
            f"{self.rule}::{self.module}::{self.snippet}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    module: str
    source: str
    lines: Sequence[str]
    tree: ast.AST
    config: SimLintConfig

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule=rule_id,
            path=str(self.path),
            module=self.module,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )

    def segment(self, node: ast.AST) -> str:
        return ast.get_source_segment(self.source, node) or ""


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line suppressed rule ids (1-based), from sim-lint comments.

    ``disable=all`` suppresses every rule on that line.  Trailing prose
    after the rule list is permitted and encouraged::

        if value == 0:  # sim-lint: disable=SIM004 — exact-zero display check
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        spec = match.group(1)
        if spec == "all":
            suppressed[lineno] = {"all"}
        else:
            suppressed[lineno] = {part.strip().upper() for part in spec.split(",")}
    return suppressed


def iter_source_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, each exactly once, sorted.

    Sorting makes the finding order (and therefore text/JSON output and
    exit codes under ``--baseline``) independent of filesystem order.
    """
    seen: Set[Path] = set()
    collected: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = path.rglob("*.py")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(sorted(collected, key=lambda p: str(p)))


def module_path(path: Path) -> str:
    """``path`` relative to its top-level package, as a posix string.

    Walks up while ``__init__.py`` is present, so
    ``src/repro/core/worker.py`` and ``core/worker.py`` (scanned from a
    different cwd) both normalise to ``core/worker.py`` — which is what
    the config's layer prefixes and allowlist keys are written against.
    A file outside any package is its own module path (file name).
    """
    path = Path(path).resolve()
    top_package = path.parent
    current = path.parent
    while (current / "__init__.py").is_file() and current.parent != current:
        top_package = current
        current = current.parent
    if (top_package / "__init__.py").is_file():
        return path.relative_to(top_package).as_posix()
    return path.name


def analyze_paths(
    paths: Iterable[Path],
    config: Optional[SimLintConfig] = None,
    rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Run ``rules`` over every source file under ``paths``.

    Returns findings sorted by (module, line, col, rule), already
    filtered through per-line suppressions and the module allowlist.
    """
    from .rules import ALL_RULES

    config = config or SimLintConfig()
    active_rules = list(rules if rules is not None else ALL_RULES)
    findings: List[Finding] = []
    for path in iter_source_files(paths):
        module = module_path(path)
        if config.is_excluded(module):
            continue
        findings.extend(_analyze_file(path, module, config, active_rules))
    findings.sort(key=lambda f: (f.module, f.line, f.col, f.rule))
    return findings


def _analyze_file(
    path: Path, module: str, config: SimLintConfig, rules: Sequence
) -> List[Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [_degenerate_finding(path, module, f"unreadable file: {exc}")]
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="SIM000",
                path=str(path),
                module=module,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        ]
    ctx = FileContext(
        path=path, module=module, source=source, lines=lines, tree=tree, config=config
    )
    suppressions = parse_suppressions(lines)
    allowed = set(config.allowed_rules(module))
    results: List[Finding] = []
    for rule in rules:
        if rule.id in allowed or not rule.scope(config, module):
            continue
        for finding in rule.check(ctx):
            line_rules = suppressions.get(finding.line, ())
            if "all" in line_rules or finding.rule in line_rules:
                continue
            results.append(finding)
    return results


def _degenerate_finding(path: Path, module: str, message: str) -> Finding:
    return Finding(
        rule="SIM000",
        path=str(path),
        module=module,
        line=1,
        col=1,
        message=message,
        snippet="",
    )
