"""SEED1xx: project-wide seed-stream discipline (cross-module).

The determinism story rests on :class:`~repro.sim.rand.RandomStreams`
giving every entity its own named child of one root ``SeedSequence``.
Per-file scanning (SIM002) catches raw ``default_rng()`` calls, but the
properties that actually protect replayability are global:

``SEED101``
    two *different* modules ask for the same literal stream name — their
    draws silently interleave and replay depends on interleaving order;

``SEED102``
    a stream name is built dynamically (f-string, ``+``-concat) but
    carries no per-entity placeholder — it reads as "one stream per
    caller" while every caller shares one;

``SEED103``
    an RNG object is constructed outside the allowlisted factory modules
    through an alias or class constructor (``gen = default_rng; gen(s)``,
    ``Generator(PCG64(...))``) — the dataflow-aware complement to
    SIM002's direct-call check.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from .astutils import resolve
from .engine import Finding, Rule
from .project import ProjectContext

__all__ = [
    "SEED_RULES",
    "StreamCollisionRule",
    "StreamDynamicNameRule",
    "RngConstructionRule",
]


class ProjectRule(Rule):
    requires_project = True

    def scope(self, config, module) -> bool:  # pragma: no cover - not used
        return True


# -- SEED101 ----------------------------------------------------------------


class StreamCollisionRule(ProjectRule):
    """SEED101: literal stream names must not collide across modules.

    ``streams.stream(name)`` derives the child seed purely from ``name``,
    so two modules using the same literal get the *same* RNG: their draws
    interleave, and the sequence each one sees depends on scheduling —
    precisely the replay hazard named streams exist to prevent.  Repeats
    within one module are left alone (a module re-opening its own stream
    is the documented way to share it deliberately).
    """

    id = "SEED101"
    title = "seed-stream name collides across modules"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        by_name: Dict[str, List[Tuple[str, object]]] = {}
        for module in project.module_names():
            for call in project.modules[module].stream_calls:
                if call.literal is not None:
                    by_name.setdefault(call.literal, []).append((module, call.node))
        for name in sorted(by_name):
            sites = by_name[name]
            owners = sorted({module for module, _ in sites})
            if len(owners) < 2:
                continue
            for module, node in sites:
                others = ", ".join(m for m in owners if m != module)
                yield project.modules[module].ctx.finding(
                    self.id,
                    node,
                    f"stream name '{name}' is also opened in {others}; "
                    "shared-name streams interleave their draws and break "
                    "per-entity replay — qualify the name with the owning "
                    "module or entity id",
                )


# -- SEED102 ----------------------------------------------------------------


class StreamDynamicNameRule(ProjectRule):
    """SEED102: dynamic stream names must carry a per-entity placeholder.

    ``streams.stream(f"worker.{wid}")`` is the idiom: the placeholder is
    what makes the stream per-entity.  An f-string with no
    ``FormattedValue`` (or a ``+``-concat of constants) *looks* dynamic
    but is one fixed name — every entity that executes the call shares a
    single stream while the code reads as if each had its own.
    """

    id = "SEED102"
    title = "dynamic stream name without a per-entity placeholder"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module in project.module_names():
            for call in project.modules[module].stream_calls:
                if call.dynamic_without_entity:
                    yield project.modules[module].ctx.finding(
                        self.id,
                        call.node,
                        "stream name is built dynamically but contains no "
                        "placeholder — every caller shares one stream; "
                        "interpolate the entity id (f\"name.{entity_id}\") "
                        "or use a plain literal",
                    )


# -- SEED103 ----------------------------------------------------------------

#: numpy.random constructors that mint an independent RNG
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
    "numpy.random.RandomState",
}

#: the subset SIM002 already reports as direct calls — SEED103 leaves
#: these to SIM002 so one violation produces one finding
_SIM002_DIRECT = {"numpy.random.default_rng"}


class RngConstructionRule(ProjectRule):
    """SEED103: RNG objects are constructed only inside factory modules.

    SIM002 flags the direct ``np.random.default_rng(...)`` call; this
    rule closes the two escape hatches a per-file scan cannot see.
    First, *aliased* construction::

        make = np.random.default_rng     # no call here
        rng = make(seed)                 # SIM002 sees a plain name call

    Second, the *class* constructors (``Generator(PCG64(seed))``,
    ``RandomState(...)``) that mint an RNG without ever saying
    ``default_rng``.  Both are tracked through the import map plus a
    module-level assignment dataflow pass, and both are fine inside the
    ``[tool.sim-lint.seed] rng-factories`` modules — everywhere else an
    RNG must come from a named stream.
    """

    id = "SEED103"
    title = "RNG constructed outside an allowlisted factory"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module in project.module_names():
            if project.config.is_rng_factory(module):
                continue
            info = project.modules[module]
            aliases = _rng_aliases(info.ctx.tree, info.imports)
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolve(node.func, info.imports)
                if isinstance(node.func, ast.Name) and node.func.id in aliases:
                    resolved = aliases[node.func.id]
                elif resolved in _SIM002_DIRECT:
                    # direct default_rng(...) call: SIM002's finding
                    continue
                if resolved in _RNG_CONSTRUCTORS:
                    yield info.ctx.finding(
                        self.id,
                        node,
                        f"constructs an RNG via `{resolved.rsplit('.', 1)[-1]}` "
                        "outside the allowlisted factories; request a named "
                        "stream (streams.stream(...)) so the draw order is "
                        "replayable",
                    )


def _rng_aliases(tree: ast.AST, imports: Dict[str, str]) -> Dict[str, str]:
    """Names bound (uncalled) to an RNG constructor at any assignment.

    One flow-insensitive pass over ``Assign``/``AnnAssign`` targets: if
    the right-hand side resolves to an RNG constructor *without being
    called*, every plain-name target becomes an alias.  Good enough to
    catch the ``make = np.random.default_rng`` laundering idiom without
    pretending to be a real dataflow engine.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        resolved = resolve(value, imports)
        if resolved not in _RNG_CONSTRUCTORS:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                aliases[target.id] = resolved
    return aliases


SEED_RULES = (
    StreamCollisionRule(),
    StreamDynamicNameRule(),
    RngConstructionRule(),
)
