"""The per-file simulation-purity rules, SIM001..SIM006 — and the registry.

Each rule documents the invariant it protects and the precise syntactic
pattern it matches.  All rules resolve names through the file's imports
(``import numpy as np`` makes ``np.random.rand`` resolve to
``numpy.random.rand``), so aliasing cannot dodge a ban.  The
cross-module families (EXEC1xx backend-neutrality, SEED1xx seed-stream
discipline, LOCK1xx thread-backend lock lint) live in
:mod:`~repro.analysis.exec_rules` / :mod:`~repro.analysis.seed_rules` /
:mod:`~repro.analysis.lock_rules`; this module assembles the combined
``ALL_RULES`` registry.

Scoping vocabulary (see :class:`~repro.analysis.config.SimLintConfig`):

*simulated layers*
    packages that run on the simulated clock (``sim/``, ``faas/``,
    ``storage/``, ``net/``, ``vm/``, ``core/``, ``faults/`` by default).
    Wall-clock reads, host I/O and unordered iteration there leak host
    state into the event schedule.

*billing modules*
    modules whose arithmetic becomes dollar figures; float ``==`` there
    turns representation noise into billing discontinuities.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Sequence, Set

from .astutils import build_import_map, dotted_name, resolve
from .config import SimLintConfig
from .engine import FileContext, Finding, Rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "build_import_map",
    "dotted_name",
    "resolve",
    "rule_by_id",
]


# -- SIM001 ----------------------------------------------------------------

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    """SIM001: no wall-clock reads inside simulated layers.

    Simulated components must take time exclusively from
    ``Environment.now``.  A single ``time.time()`` call ties the event
    schedule to host load and destroys bit-reproducibility.
    """

    id = "SIM001"
    title = "wall-clock read in a simulated layer"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = build_import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve(node.func, imports)
            if name in _WALL_CLOCK:
                yield ctx.finding(
                    self.id,
                    node,
                    f"wall-clock read `{name}()` in a simulated layer; "
                    "take time from `Environment.now` instead",
                )


# -- SIM002 ----------------------------------------------------------------

#: numpy.random names that are fine anywhere: seed plumbing types, not draws
_NP_RANDOM_OK = {
    "numpy.random.SeedSequence",
    "numpy.random.Generator",
    "numpy.random.BitGenerator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}


class GlobalRngRule(Rule):
    """SIM002: all randomness flows through named, seeded streams.

    Bans the stdlib ``random`` module, module-level ``np.random.<draw>``
    calls (they share one hidden global state), and
    ``np.random.default_rng(...)`` outside modules allowlisted as RNG
    factories.  Components must draw from ``RandomStreams.stream(name)``
    or an explicitly passed ``rng`` parameter so that adding a component
    never perturbs another's draws.

    Applies to the whole tree (not just simulated layers): a global draw
    in an experiment harness corrupts reproducibility just as surely.
    """

    id = "SIM002"
    title = "global / unseeded RNG usage"

    def scope(self, config: SimLintConfig, module: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = build_import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve(node.func, imports)
            if name is None:
                continue
            if name.split(".")[0] == "random" and "." in name:
                yield ctx.finding(
                    self.id,
                    node,
                    f"stdlib global RNG call `{name}()`; draw from "
                    "`RandomStreams.stream(name)` instead",
                )
            elif name == "numpy.random.default_rng":
                yield ctx.finding(
                    self.id,
                    node,
                    "`np.random.default_rng(...)` outside an allowlisted RNG "
                    "factory; route seeds through `RandomStreams` or add this "
                    "module to `[tool.sim-lint.allow]`",
                )
            elif name.startswith("numpy.random.") and name not in _NP_RANDOM_OK:
                yield ctx.finding(
                    self.id,
                    node,
                    f"global numpy RNG call `{name}()` shares hidden global "
                    "state; use a `Generator` from `RandomStreams`",
                )


# -- SIM003 ----------------------------------------------------------------

_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}


class UnorderedIterRule(Rule):
    """SIM003: no iteration over sets in simulated layers.

    ``for x in some_set`` yields elements in hash order — stable within
    one process for small ints, but not an interface guarantee, not
    stable across Python implementations, and silently order-sensitive
    the moment elements stop being small ints.  Anything iterated in a
    simulated layer eventually feeds event scheduling or float
    accumulation, so the rule applies module-wide there; the fix is
    ``sorted(...)`` (which this rule deliberately does not flag).

    Detection is set-provenance based: set literals/comprehensions,
    ``set()``/``frozenset()`` calls, set-method and set-operator results,
    local names assigned from those, and attributes annotated as sets in
    the same module (e.g. ``self.active: Set[int]``).
    """

    id = "SIM003"
    title = "iteration over an unordered set"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_attrs = self._annotated_set_attributes(ctx.tree)
        imports = build_import_map(ctx.tree)
        # local names assigned set-provenance values, per enclosing function
        set_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                if self._is_setish(node.value, set_names, set_attrs, imports):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if self._annotation_is_set(node.annotation):
                    set_names.add(node.target.id)

        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_node in iters:
                if self._is_setish(iter_node, set_names, set_attrs, imports):
                    yield ctx.finding(
                        self.id,
                        iter_node,
                        f"iterating unordered set `{ctx.segment(iter_node)}`; "
                        "wrap in `sorted(...)` for a deterministic order",
                    )

    def _annotated_set_attributes(self, tree: ast.AST) -> Set[str]:
        """Attribute names annotated as sets anywhere in the module."""
        attrs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and self._annotation_is_set(node.annotation):
                if isinstance(node.target, ast.Attribute):
                    attrs.add(node.target.attr)
        return attrs

    def _annotation_is_set(self, annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        parts = dotted_name(annotation)
        return bool(parts) and parts[-1] in _SET_ANNOTATIONS

    def _is_setish(
        self,
        node: ast.AST,
        set_names: Set[str],
        set_attrs: Set[str],
        imports: Dict[str, str],
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Attribute):
            return node.attr in set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_setish(node.left, set_names, set_attrs, imports) or self._is_setish(
                node.right, set_names, set_attrs, imports
            )
        if isinstance(node, ast.Call):
            name = resolve(node.func, imports)
            if name in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
                return self._is_setish(node.func.value, set_names, set_attrs, imports)
        return False


# -- SIM004 ----------------------------------------------------------------

_FLOATISH_NAME = re.compile(
    r"cost|price|rate|duration|bill|total|amount|loss|seconds|gb_s|value|fraction|usage",
    re.IGNORECASE,
)
_INTISH_CALLS = {"len", "int", "round", "id", "ord", "hash"}


class FloatEqualityRule(Rule):
    """SIM004: no float ``==`` / ``!=`` in billing and metering modules.

    100 ms quantum rounding plus IEEE-754 noise means two bills that are
    "equal" can differ in the last ulp; exact comparisons there create
    seed-dependent branches.  Compare against a tolerance
    (``math.isclose``) or compare integer quanta instead.

    Heuristic (documented, suppressible): a comparison is flagged when
    either side is a float literal, a division, a ``float(...)`` call,
    or an identifier whose name suggests a monetary/temporal quantity
    (cost, rate, duration, total, value, ...).  Comparisons where both
    sides are clearly integral (int literals, ``len()``/``int()`` calls)
    are never flagged.
    """

    id = "SIM004"
    title = "exact float comparison in a billing module"

    def scope(self, config: SimLintConfig, module: str) -> bool:
        return config.is_billing_module(module)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if all(self._intish(o) for o in operands):
                continue
            if any(self._floatish(o) for o in operands):
                yield ctx.finding(
                    self.id,
                    node,
                    "exact float equality in a billing module; use "
                    "`math.isclose` or compare integer billing quanta",
                )

    def _floatish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._floatish(node.left) or self._floatish(node.right)
        if isinstance(node, ast.Call):
            parts = dotted_name(node.func)
            return bool(parts) and parts[-1] == "float"
        if isinstance(node, ast.UnaryOp):
            return self._floatish(node.operand)
        parts = dotted_name(node)
        if parts:
            return bool(_FLOATISH_NAME.search(parts[-1]))
        return False

    def _intish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, int) and not isinstance(node.value, bool)
        if isinstance(node, ast.Call):
            parts = dotted_name(node.func)
            return bool(parts) and parts[-1] in _INTISH_CALLS
        if isinstance(node, ast.UnaryOp):
            return self._intish(node.operand)
        return False


# -- SIM005 ----------------------------------------------------------------

_IO_CALLS = {
    "open",
    "input",
    "print",
    "os.getenv",
    "os.putenv",
    "os.system",
    "os.popen",
    "os.listdir",
    "subprocess.run",
    "subprocess.Popen",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
}
_IO_ATTRIBUTES = {"os.environ"}


class IoEnvironmentRule(Rule):
    """SIM005: no host I/O or environment reads in simulated components.

    The sim kernel and simulated services must be pure functions of
    (seed, config): ``open``/``print``/``os.environ`` make behaviour
    depend on the host filesystem or shell, and stdout chatter from
    inside the kernel also breaks machine-readable experiment output.
    CLI, experiment and report modules live outside the simulated layers
    and may do I/O freely.
    """

    id = "SIM005"
    title = "host I/O or environment access in a simulated layer"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = build_import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = resolve(node.func, imports)
                if name in _IO_CALLS:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"host I/O call `{name}(...)` inside a simulated layer; "
                        "simulated components must be pure in (seed, config)",
                    )
            elif isinstance(node, ast.Attribute):
                name = resolve(node, imports)
                if name in _IO_ATTRIBUTES:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"environment access `{name}` inside a simulated layer",
                    )


# -- SIM006 ----------------------------------------------------------------

_TIEBREAK_HINT = re.compile(r"seq|counter|tie|order", re.IGNORECASE)


class HeapTieBreakerRule(Rule):
    """SIM006: event-heap pushes must carry the monotonic tie-breaker.

    The kernel's determinism contract is that same-time events fire in
    scheduling order, which requires every heap entry to be a
    ``(time, seq, payload)`` tuple with a monotonically increasing
    sequence number — ``heapq`` alone falls back to comparing payloads
    (or raising) on time ties.  Flags any ``heappush`` whose pushed item
    is not a 3+-tuple containing a sequence-counter element (an
    identifier matching ``seq``/``counter``/``tie``/``order``).
    """

    id = "SIM006"
    title = "heap push without a monotonic tie-breaker"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = build_import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve(node.func, imports)
            if name not in ("heapq.heappush", "heapq.heappushpop"):
                continue
            if len(node.args) < 2:
                continue
            item = node.args[1]
            if not self._has_tiebreaker(ctx, item):
                yield ctx.finding(
                    self.id,
                    node,
                    "heap push without a `(time, seq, ...)` tie-breaker tuple; "
                    "same-time events would fall back to comparing payloads",
                )

    def _has_tiebreaker(self, ctx: FileContext, item: ast.AST) -> bool:
        if not isinstance(item, ast.Tuple) or len(item.elts) < 3:
            return False
        return any(
            _TIEBREAK_HINT.search(ctx.segment(element)) for element in item.elts[1:-1]
        )


SIM_RULES: Sequence[Rule] = (
    WallClockRule(),
    GlobalRngRule(),
    UnorderedIterRule(),
    FloatEqualityRule(),
    IoEnvironmentRule(),
    HeapTieBreakerRule(),
)

# The cross-module families live in their own modules; importing them
# here (after the helpers and SIM rules they build on are defined) keeps
# a single registry every caller — engine, CLI, docs — agrees on.
from .exec_rules import EXEC_RULES  # noqa: E402
from .seed_rules import SEED_RULES  # noqa: E402
from .lock_rules import LOCK_RULES  # noqa: E402

ALL_RULES: Sequence[Rule] = (*SIM_RULES, *EXEC_RULES, *SEED_RULES, *LOCK_RULES)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id.upper():
            return rule
    raise KeyError(f"unknown rule {rule_id!r}")


def iter_rule_docs() -> Iterable[dict]:
    """Rule metadata for ``--list-rules``."""
    for rule in ALL_RULES:
        yield {
            "id": rule.id,
            "title": rule.title,
            "doc": (rule.__doc__ or "").strip(),
        }
