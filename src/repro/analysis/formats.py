"""Report renderers: text, JSON, GitHub annotations, SARIF.

One findings list, four serialisations.  ``text`` and ``json`` are the
human/tooling pair the CLI always had; ``github`` emits workflow
annotation commands so findings land inline on the PR diff; ``sarif``
emits a minimal SARIF 2.1.0 log for the code-scanning upload action.
All four take the same ``(findings, grandfathered)`` pair the baseline
split produces — grandfathered findings are reported (text summary,
JSON section) but never rendered as annotations, because annotating
what the baseline explicitly forgives is noise.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .engine import Finding

__all__ = [
    "FORMATS",
    "render",
    "render_github",
    "render_json",
    "render_sarif",
    "render_text",
]

#: tool metadata stamped into the SARIF log
_TOOL_NAME = "sim-lint"
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding], grandfathered: Sequence[Finding]) -> str:
    lines: List[str] = []
    for finding in findings:
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
        lines.append(f"    {finding.snippet}")
    summary = f"sim-lint: {len(findings)} finding(s)"
    if grandfathered:
        summary += f", {len(grandfathered)} grandfathered by baseline"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], grandfathered: Sequence[Finding]) -> str:
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": 1,
        "findings": [f.to_dict() for f in findings],
        "grandfathered": [f.to_dict() for f in grandfathered],
        "counts": {"total": len(findings), "by_rule": by_rule},
        "clean": not findings,
    }
    return json.dumps(payload, indent=2)


def render_github(findings: Sequence[Finding], grandfathered: Sequence[Finding]) -> str:
    """GitHub Actions workflow commands, one ``::error`` per finding.

    The runner parses these off stdout and attaches them to the diff at
    ``file``/``line``, so a reviewer sees the violation in place without
    opening the job log.  Commands are single-line by contract: newlines
    and the command metacharacters are percent-escaped per the workflow
    command spec.
    """
    lines = [
        f"::error file={_escape_property(f.path)},line={f.line},col={f.col},"
        f"title={_escape_property(f.rule)}::{f.rule}: {_escape_data(f.message)}"
        for f in findings
    ]
    summary = f"sim-lint: {len(findings)} finding(s)"
    if grandfathered:
        summary += f", {len(grandfathered)} grandfathered by baseline"
    lines.append(summary)
    return "\n".join(lines)


def _escape_data(value: str) -> str:
    """Escape a workflow-command message (the part after the ``::``)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (``title=...`` etc.)."""
    return _escape_data(value).replace(":", "%3A").replace(",", "%2C")


def render_sarif(findings: Sequence[Finding], grandfathered: Sequence[Finding]) -> str:
    """A minimal SARIF 2.1.0 log.

    One run, one tool, one result per non-grandfathered finding.  The
    line-shift-stable :attr:`Finding.fingerprint` goes into
    ``partialFingerprints`` so code scanning tracks a finding across
    commits the same way the baseline file does.
    """
    rule_ids = sorted({f.rule for f in findings})
    rules_meta = [
        {
            "id": rule_id,
            "name": rule_id,
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in rule_ids
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                            "snippet": {"text": f.snippet},
                        },
                    }
                }
            ],
            "partialFingerprints": {"simLintFingerprint/v1": f.fingerprint},
        }
        for f in findings
    ]
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "https://example.invalid/sim-lint",
                        "rules": rules_meta,
                    }
                },
                "results": results,
                "properties": {"grandfathered": len(grandfathered)},
            }
        ],
    }
    return json.dumps(log, indent=2)


FORMATS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
    "sarif": render_sarif,
}


def render(
    fmt: str, findings: Sequence[Finding], grandfathered: Sequence[Finding]
) -> str:
    try:
        renderer = FORMATS[fmt]
    except KeyError:
        raise ValueError(f"unknown format: {fmt!r} (choose from {sorted(FORMATS)})")
    return renderer(findings, grandfathered)
