"""Runtime determinism oracle: run twice, hash the trace, diff events.

The static rules in :mod:`repro.analysis.rules` prove the *absence of
known hazard patterns*; this module checks the *end-to-end property*
itself: a given seed must yield a byte-identical per-event monitor trace
(loss samples, worker counts, step durations — everything the figures
and the bill are computed from).  When two runs diverge, the report
pinpoints the first diverging event, which in practice names the
subsystem that went non-deterministic.

Run it as::

    python -m repro.analysis.determinism --seed 7
    python -m repro.analysis.determinism --json
    python -m repro.analysis.determinism --inject-wallclock   # self-test: must FAIL

The ``--inject-wallclock`` flag deliberately contaminates the second run
with a host-clock-derived sample, demonstrating (and testing) that the
oracle actually catches what it claims to catch.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..sim import Monitor, TraceEntry

__all__ = [
    "Divergence",
    "DeterminismReport",
    "check_determinism",
    "default_run",
    "first_divergence",
    "main",
]

#: a run function: seed -> the traced Monitor of a completed run
RunFn = Callable[[int], Monitor]


@dataclass(frozen=True)
class Divergence:
    """The first event at which two traces disagree."""

    index: int
    expected: Optional[TraceEntry]
    actual: Optional[TraceEntry]

    def describe(self) -> str:
        def fmt(entry: Optional[TraceEntry]) -> str:
            if entry is None:
                return "<trace ended>"
            ordinal, name, time, value = entry
            return f"#{ordinal} {name} @t={time!r} value={value!r}"

        return (
            f"first divergence at event {self.index}: "
            f"run 1 recorded {fmt(self.expected)}, run 2 recorded {fmt(self.actual)}"
        )


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of an N-run determinism check."""

    ok: bool
    seed: int
    runs: int
    digests: Sequence[str]
    n_events: int
    divergence: Optional[Divergence] = None

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "runs": self.runs,
            "digests": list(self.digests),
            "n_events": self.n_events,
            "divergence": None
            if self.divergence is None
            else {
                "index": self.divergence.index,
                "expected": self.divergence.expected,
                "actual": self.divergence.actual,
                "description": self.divergence.describe(),
            },
        }


def first_divergence(
    reference: Sequence[TraceEntry], other: Sequence[TraceEntry]
) -> Optional[Divergence]:
    """The first index where two traces differ, or None when identical."""
    for index, (a, b) in enumerate(zip(reference, other)):
        if a != b:
            return Divergence(index=index, expected=a, actual=b)
    if len(reference) != len(other):
        index = min(len(reference), len(other))
        expected = reference[index] if index < len(reference) else None
        actual = other[index] if index < len(other) else None
        return Divergence(index=index, expected=expected, actual=actual)
    return None


def default_run(seed: int, tracer=None) -> Monitor:
    """One small-but-real MLLess training run with a traced monitor.

    Deliberately exercises the full stack — FaaS platform, KV/MQ/COS
    services, barrier supervisor, significance filter — on a PMF
    workload small enough to finish in about a second, so the oracle is
    cheap enough for CI yet covers the same code paths the figures use.

    ``tracer`` optionally threads a :class:`repro.trace.Tracer` through the
    run — used by :func:`trace_invariance_check` to prove that span tracing
    does not perturb the schedule.
    """
    from ..core import JobConfig, MLLessDriver
    from ..experiments.common import build_world, make_runtime
    from ..ml.data import MovieLensSpec, movielens_like
    from ..ml.models import PMF
    from ..ml.optim import InverseSqrtLR, MomentumSGD

    spec = MovieLensSpec(n_users=60, n_movies=50, n_ratings=3_000, rank=3, batch_size=400)
    config = JobConfig(
        model=PMF(spec.n_users, spec.n_movies, rank=4, l2=0.02, rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(lr=InverseSqrtLR(8.0), momentum=0.9),
        dataset=movielens_like(spec, seed=2),
        n_workers=3,
        significance_v=0.5,
        target_loss=None,
        max_steps=25,
        seed=seed,
    )
    world = build_world(seed=config.seed, tracer=tracer)
    runtime = make_runtime(world, config)
    runtime.monitor.enable_trace()
    MLLessDriver(world.env, world.platform, runtime, meter=world.meter).run()
    return runtime.monitor


def check_determinism(
    seed: int = 0, runs: int = 2, run_fn: Optional[RunFn] = None
) -> DeterminismReport:
    """Execute ``run_fn(seed)`` ``runs`` times and compare event traces.

    All runs must produce bit-identical traces; the report carries every
    digest and, on failure, the first diverging event between the first
    run and the first run that disagrees with it.
    """
    if runs < 2:
        raise ValueError("a determinism check needs at least 2 runs")
    run_fn = run_fn or default_run
    monitors: List[Monitor] = [run_fn(seed) for _ in range(runs)]
    digests = [m.trace_digest() for m in monitors]
    reference = monitors[0].trace
    for monitor, digest in zip(monitors[1:], digests[1:]):
        if digest != digests[0]:
            divergence = first_divergence(reference, monitor.trace)
            return DeterminismReport(
                ok=False,
                seed=seed,
                runs=runs,
                digests=digests,
                n_events=len(reference),
                divergence=divergence,
            )
    return DeterminismReport(
        ok=True, seed=seed, runs=runs, digests=digests, n_events=len(reference)
    )


def trace_invariance_check(seed: int = 0) -> DeterminismReport:
    """Prove the zero-perturbation invariant of :mod:`repro.trace`.

    Runs the default workload once untraced and once with a recording
    :class:`~repro.trace.Tracer` attached to every service, and requires
    the monitor trace digests to be bit-identical.  Any tracer that
    schedules events, yields, or draws randomness fails this check.
    """
    from ..trace import Tracer

    calls = {"n": 0}

    def alternating(s: int) -> Monitor:
        calls["n"] += 1
        if calls["n"] % 2 == 0:
            return default_run(s, tracer=Tracer())
        return default_run(s)

    return check_determinism(seed=seed, runs=2, run_fn=alternating)


def _wallclock_contaminated(run_fn: RunFn) -> RunFn:
    """Wrap ``run_fn`` so every other call leaks a host-clock sample.

    Used by ``--inject-wallclock`` (and the test suite) as a self-test:
    the oracle must flag the injected read, otherwise it is vacuous.
    """
    import time

    calls = {"n": 0}

    def contaminated(seed: int) -> Monitor:
        monitor = run_fn(seed)
        calls["n"] += 1
        if calls["n"] % 2 == 0:
            final_time = monitor.trace[-1][2] if monitor.trace else 0.0
            monitor.record("wallclock_leak", final_time, time.perf_counter())
        return monitor

    return contaminated


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.determinism",
        description="Trace-divergence determinism oracle for the simulation stack.",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed (default 0)")
    parser.add_argument(
        "--runs", type=int, default=2, help="number of identical runs to compare (default 2)"
    )
    parser.add_argument("--json", action="store_true", dest="as_json", help="JSON output")
    parser.add_argument(
        "--inject-wallclock",
        action="store_true",
        help="self-test: contaminate run 2 with a host-clock read (must fail)",
    )
    parser.add_argument(
        "--trace-invariance",
        action="store_true",
        help="compare an untraced run against one with span tracing on "
        "(must produce identical digests)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    run_fn: RunFn = default_run
    if args.inject_wallclock:
        run_fn = _wallclock_contaminated(run_fn)
    try:
        if args.trace_invariance:
            report = trace_invariance_check(seed=args.seed)
        else:
            report = check_determinism(
                seed=args.seed, runs=args.runs, run_fn=run_fn
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    label = "trace-invariance" if args.trace_invariance else "determinism oracle"
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
    elif report.ok:
        print(
            f"{label}: OK — {report.runs} runs of seed {report.seed} "
            f"produced identical traces ({report.n_events} events, "
            f"digest {report.digests[0][:16]}…)"
        )
    else:
        print(f"{label}: FAIL — seed {report.seed}")
        for index, digest in enumerate(report.digests, start=1):
            print(f"  run {index}: {digest}")
        if report.divergence is not None:
            print(f"  {report.divergence.describe()}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
