"""Shared AST helpers: import maps, dotted-name flattening, alias resolution.

Factored out of :mod:`repro.analysis.rules` so the per-file SIM rules,
the cross-module EXEC/SEED/LOCK rule families and the
:class:`~repro.analysis.project.ProjectContext` collect phase all
resolve names the same way — an alias dodge that fools one rule must
fool none.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = [
    "build_import_map",
    "dotted_name",
    "resolve",
    "terminal_name",
    "is_generator_function",
]


def build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local alias -> fully dotted origin for every import in ``tree``.

    ``import numpy as np``            -> ``{"np": "numpy"}``
    ``from time import time as now``  -> ``{"now": "time.time"}``
    ``import os.path``                -> ``{"os": "os"}``
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module in (None, "__future__"):
                continue  # relative imports resolve inside the package
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` attribute chains into ``["a", "b", "c"]``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def resolve(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Fully qualified name of ``node`` (a Name/Attribute), or None.

    The head segment is resolved through ``imports``; a bare name that
    was never imported resolves to itself (covering builtins such as
    ``open``), while a dotted chain whose head is an unimported local
    variable resolves to None — we cannot know what it is, and guessing
    would produce false positives on e.g. a parameter named ``time``.
    """
    parts = dotted_name(node)
    if parts is None:
        return None
    head, rest = parts[0], parts[1:]
    if head in imports:
        return ".".join([imports[head], *rest])
    if not rest:
        return head
    return None


def terminal_name(node: Optional[ast.AST]) -> Optional[str]:
    """The last segment of a (possibly subscripted) annotation expression.

    ``Machine`` -> ``Machine``; ``protocols.Machine`` -> ``Machine``;
    ``Optional[ExecutionContext]`` -> the subscript *value*'s terminal is
    not unwrapped — annotations in this codebase are plain names, and a
    wrapped one simply fails the (conservative) machine detection.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation, e.g. ``-> "Machine"``.
        return node.value.split("[")[0].split(".")[-1].strip() or None
    parts = dotted_name(node)
    return parts[-1] if parts else None


def is_generator_function(fn: ast.AST) -> bool:
    """True when ``fn``'s own body contains a yield (nested defs excluded)."""
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue  # a nested scope's yields are not ours
        stack.extend(ast.iter_child_nodes(node))
    return False
