"""Baseline-file support for grandfathered findings.

A baseline is a JSON list of finding records (fingerprint plus
human-readable context).  Findings whose fingerprint appears in the
baseline are reported separately and do not fail the run, so the
analyzer can be adopted on a tree with pre-existing violations and
ratcheted down.  This repo ships an **empty** baseline
(``analysis-baseline.json``): the tree starts clean, and the file exists
only so CI pins the contract that it stays that way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Set, Tuple

from .engine import Finding

__all__ = ["load_baseline", "write_baseline", "split_by_baseline"]


def load_baseline(path: Path) -> Set[str]:
    """The set of grandfathered fingerprints in ``path``.

    Accepts either a bare list of fingerprint strings or a list of
    record objects with a ``fingerprint`` key (what
    :func:`write_baseline` emits).
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError(f"baseline {path}: expected a JSON list, got {type(data).__name__}")
    fingerprints: Set[str] = set()
    for entry in data:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and "fingerprint" in entry:
            fingerprints.add(str(entry["fingerprint"]))
        else:
            raise ValueError(f"baseline {path}: unrecognised entry {entry!r}")
    return fingerprints


def write_baseline(findings: Iterable[Finding], path: Path) -> int:
    """Write ``findings`` as a baseline file; returns the entry count."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "module": f.module,
            "snippet": f.snippet,
        }
        for f in sorted(findings, key=lambda f: (f.module, f.line, f.rule))
    ]
    Path(path).write_text(json.dumps(entries, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def split_by_baseline(
    findings: Sequence[Finding], baseline: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, grandfathered)."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding.fingerprint in baseline else new).append(finding)
    return new, old
