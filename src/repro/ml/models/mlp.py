"""A dense layered MLP, partitionable across pipeline stages (FuncPipe).

The paper's workloads are sparse LR/PMF jobs whose updates fit one
function; ROADMAP item 3 asks for the opposite regime — a dense model
whose parameter tensors are *partitioned across functions*.  FuncPipe
(PAPERS.md) shows the serverless recipe: split the layers into
contiguous stages, run one stage per function, and pipeline micro-batch
activations/gradients between neighbors through shared storage.

``LayeredMLP`` is that model.  Besides the ordinary :class:`Model`
interface (data-parallel training with the regular worker), it exposes
*stage primitives* used by :mod:`repro.core.pipeline`:

* :meth:`stage_layers` — contiguous near-even layer partition;
* :meth:`stage_forward` / :meth:`stage_backward` — run a slice of the
  network, caching exactly what backward needs;
* :meth:`output_grad` — loss + output-gradient at the last stage;
* :meth:`stage_fwd_flops` / :meth:`stage_bwd_flops` — the calibrated
  cost of a stage pass.

:meth:`gradient` is implemented *from* the stage primitives over all
layers, so data-parallel and pipeline training share the same math by
construction — the cross-backend loss test pins them together.

Architecture: ``layer_sizes = [d_in, h1, ..., d_out]``, tanh hidden
activations, linear output, squared error
``loss = 0.5 * mean_n sum_out (y_hat - y)^2``.  All tensors are dense
float64; gradients travel as :class:`~repro.ml.sparse.SparseDelta` like
every other update in the repo (``from_dense`` drops exact zeros only).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..parameters import ModelUpdate, ParameterSet
from ..sparse import SparseDelta
from .base import Model

__all__ = ["LayeredMLP"]


class LayeredMLP(Model):
    """Fully-connected tanh network with a linear output layer."""

    metric_name = "mse"

    def __init__(self, layer_sizes: Sequence[int]):
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise ValueError(f"need >= 2 layer sizes, got {sizes}")
        if any(s < 1 for s in sizes):
            raise ValueError(f"layer sizes must be >= 1, got {sizes}")
        self.layer_sizes = sizes

    @property
    def n_layers(self) -> int:
        """Number of weight layers (= len(layer_sizes) - 1)."""
        return len(self.layer_sizes) - 1

    # -- Model interface ---------------------------------------------------

    def init_params(self, rng: np.random.Generator) -> ParameterSet:
        """1/sqrt(fan-in) normal weights, zero biases, fixed layer order."""
        tensors: Dict[str, np.ndarray] = {}
        for i in range(self.n_layers):
            fan_in = self.layer_sizes[i]
            fan_out = self.layer_sizes[i + 1]
            tensors[f"W{i}"] = rng.normal(
                0.0, 1.0 / np.sqrt(fan_in), size=(fan_in, fan_out)
            )
            tensors[f"b{i}"] = np.zeros(fan_out)
        return ParameterSet(tensors)

    def gradient(self, params: ParameterSet, batch) -> Tuple[float, ModelUpdate]:
        # Composed from the stage primitives over all layers, so the
        # data-parallel gradient IS the pipeline gradient by construction.
        layers = list(range(self.n_layers))
        out, cache = self.stage_forward(params, batch.x, layers)
        loss, grad_out = self.output_grad(out, batch.y)
        _, update = self.stage_backward(params, cache, grad_out, layers)
        return loss, update

    def loss(self, params: ParameterSet, batch) -> float:
        out, _ = self.stage_forward(params, batch.x, list(range(self.n_layers)))
        r = out - batch.y
        return float(0.5 * np.mean(np.sum(r * r, axis=1)))

    # -- stage primitives (pipeline parallelism) ---------------------------

    def stage_layers(self, n_stages: int) -> List[List[int]]:
        """Contiguous near-even split of the weight layers into stages."""
        if not 1 <= n_stages <= self.n_layers:
            raise ValueError(
                f"n_stages must be in [1, {self.n_layers}], got {n_stages}"
            )
        base, extra = divmod(self.n_layers, n_stages)
        stages: List[List[int]] = []
        start = 0
        for s in range(n_stages):
            size = base + (1 if s < extra else 0)
            stages.append(list(range(start, start + size)))
            start += size
        return stages

    def stage_param_names(self, layers: Sequence[int]) -> List[str]:
        """The parameter tensors a stage owns."""
        return [name for i in layers for name in (f"W{i}", f"b{i}")]

    def stage_forward(
        self, params: ParameterSet, x: np.ndarray, layers: Sequence[int]
    ) -> Tuple[np.ndarray, List[Tuple[int, np.ndarray, np.ndarray]]]:
        """Forward through a contiguous layer slice.

        Returns ``(out, cache)``; the cache holds, per layer, the layer
        index, its input, and its post-activation output — exactly what
        :meth:`stage_backward` needs.
        """
        a = np.asarray(x, dtype=np.float64)
        cache: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for i in layers:
            z = a @ params[f"W{i}"] + params[f"b{i}"]
            out = np.tanh(z) if i < self.n_layers - 1 else z
            cache.append((i, a, out))
            a = out
        return a, cache

    def output_grad(
        self, y_hat: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Loss and d(loss)/d(y_hat) at the network output."""
        r = y_hat - np.asarray(y, dtype=np.float64)
        loss = float(0.5 * np.mean(np.sum(r * r, axis=1)))
        return loss, r / r.shape[0]

    def stage_backward(
        self,
        params: ParameterSet,
        cache: List[Tuple[int, np.ndarray, np.ndarray]],
        grad_out: np.ndarray,
        layers: Sequence[int],
    ) -> Tuple[np.ndarray, ModelUpdate]:
        """Backward through a stage; returns (input grad, weight grads)."""
        if [i for i, _, _ in cache] != list(layers):
            raise ValueError("cache does not match the stage's layers")
        deltas: Dict[str, SparseDelta] = {}
        grad = np.asarray(grad_out, dtype=np.float64)
        for i, a_in, a_out in reversed(cache):
            if i < self.n_layers - 1:  # tanh'(z) = 1 - tanh(z)^2
                dz = grad * (1.0 - a_out * a_out)
            else:  # linear output layer
                dz = grad
            deltas[f"W{i}"] = SparseDelta.from_dense(a_in.T @ dz)
            deltas[f"b{i}"] = SparseDelta.from_dense(dz.sum(axis=0))
            grad = dz @ params[f"W{i}"].T
        return grad, ModelUpdate(deltas)

    # -- cost model --------------------------------------------------------

    def _stage_macs(self, n: int, layers: Sequence[int]) -> float:
        return float(n) * sum(
            self.layer_sizes[i] * self.layer_sizes[i + 1] for i in layers
        )

    def stage_fwd_flops(self, n: int, layers: Sequence[int]) -> float:
        """One stage forward pass on ``n`` samples (2 flops per MAC)."""
        return 2.0 * self._stage_macs(n, layers)

    def stage_bwd_flops(self, n: int, layers: Sequence[int]) -> float:
        """One stage backward pass: grads w.r.t. weights AND inputs."""
        return 4.0 * self._stage_macs(n, layers)

    def sparse_step_flops(self, batch) -> float:
        # Dense model: no sparsity to exploit — both kernel styles cost
        # the full fwd+bwd sweep.
        all_layers = list(range(self.n_layers))
        return self.stage_fwd_flops(batch.n, all_layers) + self.stage_bwd_flops(
            batch.n, all_layers
        )

    def dense_step_flops(self, batch) -> float:
        return self.sparse_step_flops(batch)

    def dense_gradient_bytes(self) -> int:
        n_params = sum(
            self.layer_sizes[i] * self.layer_sizes[i + 1] + self.layer_sizes[i + 1]
            for i in range(self.n_layers)
        )
        return n_params * 8

    def sparse_entries(self, batch) -> int:
        return 0  # fully dense inputs: nothing to gather/scatter

    def __repr__(self) -> str:
        arch = "x".join(str(s) for s in self.layer_sizes)
        return f"<LayeredMLP {arch}>"
