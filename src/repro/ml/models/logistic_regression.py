"""Sparse logistic regression (the paper's LR/Criteo workload).

Binary classifier over hashed sparse features with optional L2
regularization applied lazily on the touched coordinates (the only
affordable way with sparse data — and one of the "subtle model artifacts"
the paper's sanity check controls for across systems).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..data.dataset import LRBatch
from ..loss import bce_grad_residual, bce_loss, sigmoid
from ..parameters import ModelUpdate, ParameterSet
from ..sparse import SparseDelta
from .base import Model

__all__ = ["LogisticRegression"]


class LogisticRegression(Model):
    """L2-regularized logistic regression over sparse features."""

    metric_name = "bce"

    def __init__(self, n_features: int, l2: float = 0.0, init_scale: float = 0.0):
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.n_features = n_features
        self.l2 = l2
        self.init_scale = init_scale

    def init_params(self, rng: np.random.Generator) -> ParameterSet:
        if self.init_scale > 0:
            w = rng.normal(0.0, self.init_scale, size=self.n_features)
        else:
            w = np.zeros(self.n_features)
        return ParameterSet({"w": w, "b": np.zeros(1)})

    # -- forward/backward ------------------------------------------------
    def _probs(self, params: ParameterSet, batch: LRBatch) -> np.ndarray:
        return sigmoid(batch.X.matvec(params["w"]) + params["b"][0])

    def predict(self, params: ParameterSet, batch: LRBatch) -> np.ndarray:
        """Predicted positive-class probabilities."""
        return self._probs(params, batch)

    def loss(self, params: ParameterSet, batch: LRBatch) -> float:
        return bce_loss(self._probs(params, batch), batch.y)

    def gradient(
        self, params: ParameterSet, batch: LRBatch
    ) -> Tuple[float, ModelUpdate]:
        probs = self._probs(params, batch)
        loss = bce_loss(probs, batch.y)
        residual = bce_grad_residual(probs, batch.y) / batch.n
        grad_w = batch.X.rmatvec_on_support(residual)
        if self.l2 > 0 and grad_w.nnz:
            # Lazy L2: regularize only the touched coordinates.
            w = params["w"]
            grad_w = SparseDelta(
                grad_w.indices,
                grad_w.values + self.l2 * w[grad_w.indices],
                grad_w.shape,
            )
        grad_b = SparseDelta(
            np.array([0]), np.array([float(residual.sum())]), (1,)
        )
        return loss, ModelUpdate({"w": grad_w, "b": grad_b})

    # -- cost model -------------------------------------------------------
    def sparse_step_flops(self, batch: LRBatch) -> float:
        # matvec + rmatvec touch each nonzero twice; sigmoid/loss ~ O(n).
        return 4.0 * batch.X.nnz + 20.0 * batch.n

    def dense_step_flops(self, batch: LRBatch) -> float:
        # Dense X @ w and X.T @ r over the full feature dimension.
        return 4.0 * batch.n * self.n_features

    def dense_gradient_bytes(self) -> int:
        return (self.n_features + 1) * 8

    def sparse_entries(self, batch: LRBatch) -> int:
        return batch.X.nnz
