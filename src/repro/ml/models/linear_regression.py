"""Sparse linear regression — a simple convex model used by tests.

Not part of the paper's evaluation, but Theorem 1's convergence guarantee
is stated for convex objectives, and a least-squares model with a known
planted solution is the cleanest way to test it (the ISP regret-decay
property tests use this model).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..data.dataset import LRBatch
from ..loss import mse_loss
from ..parameters import ModelUpdate, ParameterSet
from ..sparse import SparseDelta
from .base import Model

__all__ = ["LinearRegression"]


class LinearRegression(Model):
    """Least-squares regression over sparse features (labels are targets)."""

    metric_name = "mse"

    def __init__(self, n_features: int, l2: float = 0.0):
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.n_features = n_features
        self.l2 = l2

    def init_params(self, rng: np.random.Generator) -> ParameterSet:
        return ParameterSet({"w": np.zeros(self.n_features), "b": np.zeros(1)})

    def predict(self, params: ParameterSet, batch: LRBatch) -> np.ndarray:
        return batch.X.matvec(params["w"]) + params["b"][0]

    def loss(self, params: ParameterSet, batch: LRBatch) -> float:
        return mse_loss(self.predict(params, batch), batch.y)

    def gradient(
        self, params: ParameterSet, batch: LRBatch
    ) -> Tuple[float, ModelUpdate]:
        preds = self.predict(params, batch)
        err = preds - batch.y
        loss = float(np.mean(err**2))
        residual = 2.0 * err / batch.n
        grad_w = batch.X.rmatvec_on_support(residual)
        if self.l2 > 0 and grad_w.nnz:
            w = params["w"]
            grad_w = SparseDelta(
                grad_w.indices,
                grad_w.values + self.l2 * w[grad_w.indices],
                grad_w.shape,
            )
        grad_b = SparseDelta(np.array([0]), np.array([float(residual.sum())]), (1,))
        return loss, ModelUpdate({"w": grad_w, "b": grad_b})

    def sparse_step_flops(self, batch: LRBatch) -> float:
        return 4.0 * batch.X.nnz + 10.0 * batch.n

    def dense_step_flops(self, batch: LRBatch) -> float:
        return 4.0 * batch.n * self.n_features

    def dense_gradient_bytes(self) -> int:
        return (self.n_features + 1) * 8

    def sparse_entries(self, batch: LRBatch) -> int:
        return batch.X.nnz
