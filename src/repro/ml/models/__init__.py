"""Trainable models: logistic regression, linear regression, PMF."""

from .base import Model
from .biased_pmf import BiasedPMF
from .linear_regression import LinearRegression
from .logistic_regression import LogisticRegression
from .pmf import PMF

__all__ = ["Model", "LogisticRegression", "LinearRegression", "PMF", "BiasedPMF"]
