"""Trainable models: logistic regression, linear regression, PMF, MLP."""

from .base import Model
from .biased_pmf import BiasedPMF
from .linear_regression import LinearRegression
from .logistic_regression import LogisticRegression
from .mlp import LayeredMLP
from .pmf import PMF

__all__ = [
    "Model",
    "LogisticRegression",
    "LinearRegression",
    "PMF",
    "BiasedPMF",
    "LayeredMLP",
]
