"""Probabilistic matrix factorization (the paper's PMF/MovieLens workload).

Factorizes the ratings matrix ``R (n_users x n_movies)`` into
``U (n_users x r)`` and ``M (n_movies x r)`` such that ``R ~ U Mᵀ``,
by SGD on the regularized squared error (Salakhutdinov & Mnih, 2007).
The gradient of a mini-batch only touches the user/movie rows present in
the batch, so updates are naturally row-sparse — the property MLLess's
significance filter exploits.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..data.dataset import PMFBatch
from ..loss import rmse
from ..parameters import ModelUpdate, ParameterSet
from ..sparse import SparseDelta
from .base import Model

__all__ = ["PMF"]


class PMF(Model):
    """Low-rank matrix factorization trained on (user, movie, rating) triples."""

    metric_name = "rmse"

    def __init__(
        self,
        n_users: int,
        n_movies: int,
        rank: int = 20,
        l2: float = 0.01,
        init_scale: float = 0.1,
        rating_offset: float = 0.0,
    ):
        if min(n_users, n_movies, rank) < 1:
            raise ValueError("n_users, n_movies and rank must all be >= 1")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.n_users = n_users
        self.n_movies = n_movies
        self.rank = rank
        self.l2 = l2
        self.init_scale = init_scale
        #: constant added to U·M predictions (e.g. the global mean rating)
        self.rating_offset = rating_offset

    def init_params(self, rng: np.random.Generator) -> ParameterSet:
        return ParameterSet(
            {
                "U": rng.normal(0, self.init_scale, (self.n_users, self.rank)),
                "M": rng.normal(0, self.init_scale, (self.n_movies, self.rank)),
            }
        )

    # -- forward/backward ------------------------------------------------
    def predict(self, params: ParameterSet, batch: PMFBatch) -> np.ndarray:
        U, M = params["U"], params["M"]
        return (
            np.einsum("ij,ij->i", U[batch.users], M[batch.movies])
            + self.rating_offset
        )

    def loss(self, params: ParameterSet, batch: PMFBatch) -> float:
        return rmse(self.predict(params, batch), batch.ratings)

    def gradient(
        self, params: ParameterSet, batch: PMFBatch
    ) -> Tuple[float, ModelUpdate]:
        U, M = params["U"], params["M"]
        u_rows, m_rows = batch.users, batch.movies
        Uu, Mm = U[u_rows], M[m_rows]
        err = np.einsum("ij,ij->i", Uu, Mm) + self.rating_offset - batch.ratings
        loss = float(np.sqrt(np.mean(err**2)))

        scale = 2.0 / batch.n  # d/dU of mean squared error
        g_u_rows = scale * err[:, None] * Mm + self.l2 * Uu / batch.n
        g_m_rows = scale * err[:, None] * Uu + self.l2 * Mm / batch.n

        grad_U = self._scatter_rows(u_rows, g_u_rows, U.shape)
        grad_M = self._scatter_rows(m_rows, g_m_rows, M.shape)
        return loss, ModelUpdate({"U": grad_U, "M": grad_M})

    @staticmethod
    def _scatter_rows(
        rows: np.ndarray, row_grads: np.ndarray, shape: Tuple[int, int]
    ) -> SparseDelta:
        """Sum duplicate-row gradients and emit a flat-indexed delta."""
        uniq, inverse = np.unique(rows, return_inverse=True)
        rank = shape[1]
        acc = np.zeros((len(uniq), rank))
        np.add.at(acc, inverse, row_grads)
        flat_idx = (uniq.astype(np.int64)[:, None] * rank + np.arange(rank)).ravel()
        return SparseDelta(flat_idx, acc.ravel(), shape)

    # -- cost model -------------------------------------------------------
    def sparse_step_flops(self, batch: PMFBatch) -> float:
        # Per rating: dot product + two rank-sized gradient rows (~6r).
        return 6.0 * batch.n * self.rank

    def dense_step_flops(self, batch: PMFBatch) -> float:
        # Dense frameworks pay gather/scatter + dense optimizer state over
        # the touched embedding tables; empirically ~an order of magnitude
        # over the minimal sparse kernel on CPU for high-sparsity data.
        return 60.0 * batch.n * self.rank

    def dense_gradient_bytes(self) -> int:
        return (self.n_users + self.n_movies) * self.rank * 8

    def sparse_entries(self, batch: PMFBatch) -> int:
        # Each rating gathers and scatters one user row and one movie row.
        return 2 * batch.n * self.rank
