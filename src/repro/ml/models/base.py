"""Model interface.

A model knows how to initialize parameters, compute the mini-batch loss
and a **sparse** gradient, and estimate the computational cost of a step
under two kernel styles:

* ``sparse_step_flops`` — the MLLess/Cython path that touches only the
  nonzeros;
* ``dense_step_flops`` — the PyTorch-on-CPU path that the paper found
  dramatically slower on highly sparse data (dense ops + serialization).

The flop estimates feed the simulated compute-time model; the gradient
arithmetic itself is exact numpy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from ..parameters import ModelUpdate, ParameterSet

__all__ = ["Model"]


class Model(ABC):
    """Interface shared by all trainable models."""

    #: name of the reported metric ("bce" or "rmse")
    metric_name: str = "loss"

    @abstractmethod
    def init_params(self, rng: np.random.Generator) -> ParameterSet:
        """Fresh parameters (deterministic given ``rng``)."""

    @abstractmethod
    def gradient(
        self, params: ParameterSet, batch
    ) -> Tuple[float, ModelUpdate]:
        """Mini-batch loss at ``params`` and the sparse raw gradient."""

    @abstractmethod
    def loss(self, params: ParameterSet, batch) -> float:
        """Mini-batch loss only (no gradient)."""

    # -- cost model -------------------------------------------------------
    @abstractmethod
    def sparse_step_flops(self, batch) -> float:
        """Flops of one gradient step with sparsity-aware kernels."""

    @abstractmethod
    def dense_step_flops(self, batch) -> float:
        """Flops of one gradient step with dense kernels."""

    @abstractmethod
    def dense_gradient_bytes(self) -> int:
        """Bytes of a full dense gradient (what all-reduce must move)."""

    @abstractmethod
    def sparse_entries(self, batch) -> int:
        """Sparse values a framework must gather/scatter for one batch.

        Feeds the per-batch sparse-handling overhead of the serverful
        baseline's cost model.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
