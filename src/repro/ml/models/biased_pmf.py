"""PMF with user/movie bias terms.

An extension of the paper's PMF: predictions add per-user and per-movie
scalar biases on top of the latent dot product — the standard improvement
for ratings data (and our synthetic MovieLens generator plants biases, so
this model genuinely fits it better than plain PMF; see
``tests/test_extensions.py``).  Updates stay row-sparse, so ISP applies
unchanged.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..data.dataset import PMFBatch
from ..parameters import ModelUpdate, ParameterSet
from ..sparse import SparseDelta
from .base import Model

__all__ = ["BiasedPMF"]


class BiasedPMF(Model):
    """Low-rank factorization plus user/movie biases."""

    metric_name = "rmse"

    def __init__(
        self,
        n_users: int,
        n_movies: int,
        rank: int = 20,
        l2: float = 0.01,
        init_scale: float = 0.1,
        rating_offset: float = 0.0,
    ):
        if min(n_users, n_movies, rank) < 1:
            raise ValueError("n_users, n_movies and rank must all be >= 1")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.n_users = n_users
        self.n_movies = n_movies
        self.rank = rank
        self.l2 = l2
        self.init_scale = init_scale
        self.rating_offset = rating_offset

    def init_params(self, rng: np.random.Generator) -> ParameterSet:
        return ParameterSet(
            {
                "U": rng.normal(0, self.init_scale, (self.n_users, self.rank)),
                "M": rng.normal(0, self.init_scale, (self.n_movies, self.rank)),
                "bu": np.zeros(self.n_users),
                "bm": np.zeros(self.n_movies),
            }
        )

    def predict(self, params: ParameterSet, batch: PMFBatch) -> np.ndarray:
        U, M = params["U"], params["M"]
        return (
            np.einsum("ij,ij->i", U[batch.users], M[batch.movies])
            + params["bu"][batch.users]
            + params["bm"][batch.movies]
            + self.rating_offset
        )

    def loss(self, params: ParameterSet, batch: PMFBatch) -> float:
        err = self.predict(params, batch) - batch.ratings
        return float(np.sqrt(np.mean(err**2)))

    def gradient(
        self, params: ParameterSet, batch: PMFBatch
    ) -> Tuple[float, ModelUpdate]:
        U, M = params["U"], params["M"]
        u_rows, m_rows = batch.users, batch.movies
        Uu, Mm = U[u_rows], M[m_rows]
        err = (
            np.einsum("ij,ij->i", Uu, Mm)
            + params["bu"][u_rows]
            + params["bm"][m_rows]
            + self.rating_offset
            - batch.ratings
        )
        loss = float(np.sqrt(np.mean(err**2)))
        scale = 2.0 / batch.n

        g_u_rows = scale * err[:, None] * Mm + self.l2 * Uu / batch.n
        g_m_rows = scale * err[:, None] * Uu + self.l2 * Mm / batch.n
        grad_U = self._scatter_rows(u_rows, g_u_rows, U.shape)
        grad_M = self._scatter_rows(m_rows, g_m_rows, M.shape)
        grad_bu = self._scatter_scalars(
            u_rows, scale * err + self.l2 * params["bu"][u_rows] / batch.n,
            self.n_users,
        )
        grad_bm = self._scatter_scalars(
            m_rows, scale * err + self.l2 * params["bm"][m_rows] / batch.n,
            self.n_movies,
        )
        return loss, ModelUpdate(
            {"U": grad_U, "M": grad_M, "bu": grad_bu, "bm": grad_bm}
        )

    @staticmethod
    def _scatter_rows(rows, row_grads, shape) -> SparseDelta:
        uniq, inverse = np.unique(rows, return_inverse=True)
        rank = shape[1]
        acc = np.zeros((len(uniq), rank))
        np.add.at(acc, inverse, row_grads)
        flat = (uniq.astype(np.int64)[:, None] * rank + np.arange(rank)).ravel()
        return SparseDelta(flat, acc.ravel(), shape)

    @staticmethod
    def _scatter_scalars(rows, grads, size) -> SparseDelta:
        uniq, inverse = np.unique(rows, return_inverse=True)
        acc = np.bincount(inverse, weights=grads, minlength=len(uniq))
        return SparseDelta(uniq.astype(np.int64), acc, (size,))

    # -- cost model -------------------------------------------------------
    def sparse_step_flops(self, batch: PMFBatch) -> float:
        return 6.0 * batch.n * self.rank + 8.0 * batch.n

    def dense_step_flops(self, batch: PMFBatch) -> float:
        return 60.0 * batch.n * self.rank + 40.0 * batch.n

    def dense_gradient_bytes(self) -> int:
        return ((self.n_users + self.n_movies) * (self.rank + 1)) * 8

    def sparse_entries(self, batch: PMFBatch) -> int:
        return 2 * batch.n * (self.rank + 1)
