"""The hashing trick for categorical features.

The paper hashes Criteo's 26 categorical features into a sparse vector of
size 1e5 before training.  This module implements the same transformation:
each ``(field, value)`` pair maps to a column via a deterministic hash, with
a sign hash to reduce collision bias (Weinberger et al., 2009).
"""

from __future__ import annotations

import zlib
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["hash_feature", "hash_categoricals"]


def hash_feature(field: int, value: str, n_buckets: int) -> Tuple[int, float]:
    """Map a categorical (field, value) pair to (column, signed weight)."""
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
    token = f"{field}={value}".encode()
    h = zlib.crc32(token)
    column = h % n_buckets
    sign = 1.0 if (zlib.crc32(token, 0x9E3779B9) & 1) else -1.0
    return column, sign


def hash_categoricals(
    rows: Sequence[Sequence[str]], n_buckets: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Hash rows of categorical values into sparse (indices, values) pairs.

    Collisions within a row are summed (signed), matching the standard
    hashing-trick semantics.
    """
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for row in rows:
        cols: dict = {}
        for field, value in enumerate(row):
            col, sign = hash_feature(field, value, n_buckets)
            cols[col] = cols.get(col, 0.0) + sign
        idx = np.fromiter(sorted(cols), dtype=np.int32, count=len(cols))
        val = np.array([cols[i] for i in idx], dtype=np.float64)
        keep = val != 0.0
        out.append((idx[keep], val[keep]))
    return out
