"""Synthetic dataset generators standing in for Criteo and MovieLens.

The real datasets are not available offline, so the generators plant a
ground-truth model and sample from it, preserving the two properties the
paper's evaluation exercises: **high sparsity** and **fast convergence**.

``criteo_like``
    Click-through data: each sample has a few dense numeric features plus
    a fixed number of active hashed categorical columns (one per
    categorical field, like Criteo's 26), labels drawn from a planted
    logistic model.  Density matches Criteo's regime (~tens of nonzeros
    out of 1e5 columns).

``movielens_like``
    Ratings sampled from a planted low-rank matrix with user/movie biases
    and Gaussian noise, clipped to the 0.5–5 star range.  Popularity is
    Zipf-distributed so some movies are rated far more than others, as in
    MovieLens.

``mlp_synth``
    Dense regression data from a planted *teacher* MLP with Gaussian
    observation noise — the layered-MLP workload that exercises dense
    data parallelism and pipeline-parallel stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..sparse import CSRMatrix
from .dataset import Dataset, DenseBatch, LRBatch, PMFBatch

__all__ = [
    "criteo_like",
    "movielens_like",
    "mlp_synth",
    "CriteoSpec",
    "MLPSpec",
    "MovieLensSpec",
]


@dataclass(frozen=True)
class CriteoSpec:
    """Shape of a Criteo-like dataset (defaults scaled for laptop runs)."""

    n_samples: int = 100_000
    n_numeric: int = 13
    n_categorical: int = 26
    n_hash_buckets: int = 20_000
    batch_size: int = 6_250
    positive_rate: float = 0.25
    label_noise: float = 0.05
    #: Zipf exponent of categorical-value popularity.  Real CTR data is
    #: heavily skewed; the skew concentrates each batch's nonzeros on few
    #: hot columns — the "intrinsic filter" that makes LR updates small
    #: (§6.2's explanation for ISP's modest gains on LR).
    zipf_a: float = 1.4


def criteo_like(spec: CriteoSpec = CriteoSpec(), seed: int = 0) -> Dataset:
    """Sparse CTR dataset from a planted logistic model.

    Each sample's nonzeros: ``n_numeric`` dense columns (min-max scaled to
    [0, 1]) followed by ``n_categorical`` one-hot hashed columns.  The
    label is Bernoulli from a planted weight vector, with ``label_noise``
    flips, and the intercept is tuned to hit ``positive_rate``.
    """
    rng = np.random.default_rng(seed)
    n_features = spec.n_numeric + spec.n_hash_buckets
    # Planted model: numeric weights strong, categorical weights sparse.
    w_true = np.zeros(n_features)
    w_true[: spec.n_numeric] = rng.normal(0, 1.5, spec.n_numeric)
    hot = rng.choice(
        spec.n_hash_buckets, size=spec.n_hash_buckets // 5, replace=False
    )
    w_true[spec.n_numeric + hot] = rng.normal(0, 1.0, len(hot))

    # Zipf popularity over categorical values, independently permuted per
    # field so fields do not share hot buckets.
    ranks = np.arange(1, spec.n_hash_buckets + 1, dtype=np.float64)
    popularity = ranks ** (-spec.zipf_a)
    popularity /= popularity.sum()
    field_perms = [
        rng.permutation(spec.n_hash_buckets) for _ in range(spec.n_categorical)
    ]

    batches: List[LRBatch] = []
    intercept = None
    for start in range(0, spec.n_samples, spec.batch_size):
        n = min(spec.batch_size, spec.n_samples - start)
        numeric = rng.uniform(0.0, 1.0, (n, spec.n_numeric))
        cats = np.column_stack(
            [
                field_perms[f][
                    rng.choice(spec.n_hash_buckets, size=n, p=popularity)
                ]
                for f in range(spec.n_categorical)
            ]
        )
        rows = []
        logits = np.zeros(n)
        for i in range(n):
            cat_cols = spec.n_numeric + np.unique(cats[i])
            idx = np.concatenate([np.arange(spec.n_numeric), cat_cols])
            val = np.concatenate([numeric[i], np.ones(len(cat_cols))])
            rows.append((idx, val))
            logits[i] = numeric[i] @ w_true[: spec.n_numeric] + w_true[
                cat_cols
            ].sum()
        if intercept is None:
            # Shift logits so the marginal positive rate is as requested.
            intercept = float(
                np.quantile(logits, 1.0 - spec.positive_rate)
            )
        probs = 1.0 / (1.0 + np.exp(-(logits - intercept)))
        y = (rng.uniform(size=n) < probs).astype(np.float64)
        flips = rng.uniform(size=n) < spec.label_noise
        y[flips] = 1.0 - y[flips]
        batches.append(LRBatch(CSRMatrix.from_rows(rows, n_features), y))
    return Dataset(batches, name=f"criteo-like-{spec.n_samples}")


@dataclass(frozen=True)
class MLPSpec:
    """Shape of a dense regression dataset for the layered-MLP workload."""

    n_samples: int = 8_000
    n_features: int = 32
    #: hidden widths of the planted teacher network
    hidden: Tuple[int, ...] = (24, 24)
    n_outputs: int = 1
    batch_size: int = 400
    noise: float = 0.1


def mlp_synth(spec: MLPSpec = MLPSpec(), seed: int = 0) -> Dataset:
    """Dense regression data from a planted tanh teacher network.

    Inputs are standard normal; targets are the teacher's forward pass
    plus ``noise``-scaled Gaussian observation noise.  A student MLP of
    comparable capacity drives the MSE down fast, which keeps the
    pipeline and data-parallel convergence runs short.
    """
    rng = np.random.default_rng(seed)
    sizes = [spec.n_features, *spec.hidden, spec.n_outputs]
    weights = [
        rng.normal(0.0, 1.0 / np.sqrt(sizes[i]), size=(sizes[i], sizes[i + 1]))
        for i in range(len(sizes) - 1)
    ]
    biases = [rng.normal(0.0, 0.1, size=sizes[i + 1]) for i in range(len(sizes) - 1)]

    x = rng.normal(0.0, 1.0, (spec.n_samples, spec.n_features))
    a = x
    for i, (W, b) in enumerate(zip(weights, biases)):
        z = a @ W + b
        a = np.tanh(z) if i < len(weights) - 1 else z
    y = a + rng.normal(0.0, spec.noise, a.shape)

    batches: List[DenseBatch] = []
    for start in range(0, spec.n_samples, spec.batch_size):
        stop = min(start + spec.batch_size, spec.n_samples)
        batches.append(DenseBatch(x[start:stop], y[start:stop]))
    return Dataset(batches, name=f"mlp-synth-{spec.n_samples}")


@dataclass(frozen=True)
class MovieLensSpec:
    """Shape of a MovieLens-like dataset (defaults scaled for laptop runs).

    ``ml10m_scaled`` / ``ml20m_scaled`` build specs with the 10M/20M
    user:movie proportions at a configurable scale.
    """

    n_users: int = 1_200
    n_movies: int = 800
    n_ratings: int = 120_000
    rank: int = 8
    batch_size: int = 4_000
    noise: float = 0.4
    zipf_a: float = 1.3

    @staticmethod
    def ml10m_scaled(scale: float = 0.02, **overrides) -> "MovieLensSpec":
        """ML-10M proportions (10,681 users : 71,567 movies is inverted in
        the paper's table; we keep users < movies as published)."""
        kwargs = dict(
            n_users=max(int(10_681 * scale), 20),
            n_movies=max(int(7_157 * scale), 20),
            n_ratings=max(int(10_000_000 * scale * scale), 2_000),
        )
        kwargs.update(overrides)
        return MovieLensSpec(**kwargs)

    @staticmethod
    def ml20m_scaled(scale: float = 0.02, **overrides) -> "MovieLensSpec":
        kwargs = dict(
            n_users=max(int(27_278 * scale), 20),
            n_movies=max(int(13_849 * scale), 20),
            n_ratings=max(int(20_000_000 * scale * scale), 2_000),
        )
        kwargs.update(overrides)
        return MovieLensSpec(**kwargs)


def movielens_like(
    spec: MovieLensSpec = MovieLensSpec(), seed: int = 0
) -> Dataset:
    """Ratings from a planted low-rank + biases model, Zipf popularity."""
    rng = np.random.default_rng(seed)
    U = rng.normal(0, 0.5, (spec.n_users, spec.rank))
    M = rng.normal(0, 0.5, (spec.n_movies, spec.rank))
    user_bias = rng.normal(0, 0.3, spec.n_users)
    movie_bias = rng.normal(0, 0.3, spec.n_movies)

    # Zipf-ish popularity over movies; uniform over users.
    ranks = np.arange(1, spec.n_movies + 1, dtype=np.float64)
    pop = ranks ** (-spec.zipf_a)
    pop /= pop.sum()
    movie_order = rng.permutation(spec.n_movies)

    users = rng.integers(0, spec.n_users, spec.n_ratings).astype(np.int32)
    movies = movie_order[
        rng.choice(spec.n_movies, size=spec.n_ratings, p=pop)
    ].astype(np.int32)
    raw = (
        3.5
        + np.einsum("ij,ij->i", U[users], M[movies])
        + user_bias[users]
        + movie_bias[movies]
        + rng.normal(0, spec.noise, spec.n_ratings)
    )
    ratings = np.clip(np.round(raw * 2.0) / 2.0, 0.5, 5.0)

    batches: List[PMFBatch] = []
    for start in range(0, spec.n_ratings, spec.batch_size):
        stop = min(start + spec.batch_size, spec.n_ratings)
        batches.append(
            PMFBatch(users[start:stop], movies[start:stop], ratings[start:stop])
        )
    return Dataset(batches, name=f"movielens-like-{spec.n_ratings}")
