"""Datasets: containers, synthetic generators, normalization, hashing."""

from .dataset import Dataset, DenseBatch, LRBatch, PMFBatch
from .hashing import hash_categoricals, hash_feature
from .normalize import (
    FeatureStats,
    combine_stats,
    minmax_apply,
    minmax_stats,
    normalize_dataset,
)
from .synthetic import (
    CriteoSpec,
    MLPSpec,
    MovieLensSpec,
    criteo_like,
    mlp_synth,
    movielens_like,
)

__all__ = [
    "Dataset",
    "LRBatch",
    "PMFBatch",
    "DenseBatch",
    "CriteoSpec",
    "MLPSpec",
    "MovieLensSpec",
    "criteo_like",
    "mlp_synth",
    "movielens_like",
    "FeatureStats",
    "minmax_stats",
    "minmax_apply",
    "combine_stats",
    "normalize_dataset",
    "hash_feature",
    "hash_categoricals",
]
