"""Datasets: containers, synthetic generators, normalization, hashing."""

from .dataset import Dataset, LRBatch, PMFBatch
from .hashing import hash_categoricals, hash_feature
from .normalize import (
    FeatureStats,
    combine_stats,
    minmax_apply,
    minmax_stats,
    normalize_dataset,
)
from .synthetic import CriteoSpec, MovieLensSpec, criteo_like, movielens_like

__all__ = [
    "Dataset",
    "LRBatch",
    "PMFBatch",
    "CriteoSpec",
    "MovieLensSpec",
    "criteo_like",
    "movielens_like",
    "FeatureStats",
    "minmax_stats",
    "minmax_apply",
    "combine_stats",
    "normalize_dataset",
    "hash_feature",
    "hash_categoricals",
]
