"""Feature normalization, including the map-reduce formulation.

The paper normalizes datasets with min-max scaling implemented as two
chained PyWren map-reduce jobs: job 1 computes per-feature min/max, job 2
applies the scaling (§3.2).  ``minmax_stats``/``minmax_apply`` are the pure
kernels; :func:`normalize_via_mapreduce` runs them through this repo's
PyWren-like framework so the pipeline exercised is the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..sparse import CSRMatrix
from .dataset import Dataset, LRBatch

__all__ = ["FeatureStats", "minmax_stats", "minmax_apply", "combine_stats"]


@dataclass(frozen=True)
class FeatureStats:
    """Per-column min and max over some set of rows."""

    minimum: np.ndarray
    maximum: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.minimum.nbytes + self.maximum.nbytes

    def range_or_one(self) -> np.ndarray:
        """max - min with zero ranges replaced by 1 (constant columns)."""
        span = self.maximum - self.minimum
        return np.where(span > 0, span, 1.0)


def minmax_stats(X: CSRMatrix, dense_cols: int) -> FeatureStats:
    """Column-wise min/max over the first ``dense_cols`` columns.

    Only the leading dense block (numeric features) is normalized; hashed
    categorical indicators are already 0/1.  Sparse semantics: only
    explicitly *stored* entries are observed (implicit zeros are neither
    counted in the stats nor rescaled — the standard practice for sparse
    feature matrices, where shifting zeros would destroy sparsity).
    """
    lo = np.full(dense_cols, np.inf)
    hi = np.full(dense_cols, -np.inf)
    mask = X.indices < dense_cols
    cols = X.indices[mask]
    vals = X.data[mask]
    if len(cols):
        np.minimum.at(lo, cols, vals)
        np.maximum.at(hi, cols, vals)
    lo[np.isinf(lo)] = 0.0
    hi[np.isinf(hi)] = 0.0
    return FeatureStats(lo, hi)


def combine_stats(parts: List[FeatureStats]) -> FeatureStats:
    """Reduce step: element-wise min of mins and max of maxes."""
    if not parts:
        raise ValueError("need at least one partial stats")
    lo = np.min(np.stack([p.minimum for p in parts]), axis=0)
    hi = np.max(np.stack([p.maximum for p in parts]), axis=0)
    return FeatureStats(lo, hi)


def minmax_apply(X: CSRMatrix, stats: FeatureStats) -> CSRMatrix:
    """Scale the dense block of ``X`` to [0, 1] using ``stats``."""
    dense_cols = len(stats.minimum)
    data = X.data.copy()
    mask = X.indices < dense_cols
    cols = X.indices[mask]
    span = stats.range_or_one()
    data[mask] = (X.data[mask] - stats.minimum[cols]) / span[cols]
    return CSRMatrix(X.indptr, X.indices, data, X.shape)


def normalize_dataset(dataset: Dataset, dense_cols: int) -> Tuple[Dataset, FeatureStats]:
    """Pure (non-simulated) two-pass min-max normalization of an LR dataset."""
    stats = combine_stats([minmax_stats(b.X, dense_cols) for b in dataset])
    batches = [LRBatch(minmax_apply(b.X, stats), b.y) for b in dataset]
    return Dataset(batches, name=f"{dataset.name}-norm"), stats
