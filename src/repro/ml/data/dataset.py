"""Mini-batch and dataset containers.

Training data lives in the simulated object store as a sequence of
mini-batch objects; workers fetch one batch per step (§3.2).  Two batch
types cover the paper's workloads:

``LRBatch``
    Sparse feature rows (:class:`~repro.ml.sparse.CSRMatrix`) plus 0/1
    labels — logistic regression on Criteo-like data.

``PMFBatch``
    ``(user, movie, rating)`` triples — matrix factorization on
    MovieLens-like data.

``DenseBatch``
    Dense feature/target matrices — the layered-MLP workload, sliceable
    into micro-batches for pipeline parallelism.

``Dataset``
    An ordered collection of batches with helpers for staging into the
    object store and for round-robin partitioning across workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, List, Sequence, TypeVar

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["LRBatch", "PMFBatch", "DenseBatch", "Dataset"]


@dataclass(frozen=True)
class LRBatch:
    """A sparse classification mini-batch."""

    X: CSRMatrix
    y: np.ndarray

    def __post_init__(self):
        if self.y.shape != (self.X.shape[0],):
            raise ValueError(
                f"labels shape {self.y.shape} != ({self.X.shape[0]},)"
            )

    @property
    def n(self) -> int:
        return self.X.shape[0]

    @property
    def nbytes(self) -> int:
        return self.X.nbytes + self.y.size * 8


@dataclass(frozen=True)
class PMFBatch:
    """A ratings mini-batch: parallel (user, movie, rating) arrays."""

    users: np.ndarray
    movies: np.ndarray
    ratings: np.ndarray

    def __post_init__(self):
        if not (len(self.users) == len(self.movies) == len(self.ratings)):
            raise ValueError("users/movies/ratings must have equal length")

    @property
    def n(self) -> int:
        return len(self.ratings)

    @property
    def nbytes(self) -> int:
        return self.users.size * 4 + self.movies.size * 4 + self.ratings.size * 8


@dataclass(frozen=True)
class DenseBatch:
    """A dense regression mini-batch: ``x`` (n, d_in), ``y`` (n, d_out)."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        if self.x.ndim != 2 or self.y.ndim != 2:
            raise ValueError(
                f"x and y must be 2-D, got {self.x.shape} and {self.y.shape}"
            )
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"row mismatch: x has {self.x.shape[0]}, y has {self.y.shape[0]}"
            )

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def nbytes(self) -> int:
        return self.x.nbytes + self.y.nbytes

    def micro_split(self, parts: int) -> List["DenseBatch"]:
        """Near-even contiguous row split into ``parts`` micro-batches."""
        if not 1 <= parts <= self.n:
            raise ValueError(
                f"parts must be in [1, {self.n}], got {parts}"
            )
        base, extra = divmod(self.n, parts)
        out: List["DenseBatch"] = []
        start = 0
        for i in range(parts):
            size = base + (1 if i < extra else 0)
            out.append(DenseBatch(self.x[start:start + size],
                                  self.y[start:start + size]))
            start += size
        return out


BatchT = TypeVar("BatchT")


class Dataset(Generic[BatchT]):
    """An ordered collection of mini-batches."""

    def __init__(self, batches: Sequence[BatchT], name: str = "dataset"):
        if not batches:
            raise ValueError("dataset needs at least one batch")
        self.batches: List[BatchT] = list(batches)
        self.name = name

    def __len__(self) -> int:
        return len(self.batches)

    def __getitem__(self, i: int) -> BatchT:
        return self.batches[i]

    def __iter__(self) -> Iterator[BatchT]:
        return iter(self.batches)

    @property
    def n_samples(self) -> int:
        return sum(b.n for b in self.batches)

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.batches)

    def partition(self, workers: int) -> List[List[int]]:
        """Round-robin assignment of batch indices to ``workers`` parts.

        Returns a list of index lists; part ``p`` holds the batches worker
        ``p`` will cycle through.  Every batch is assigned to exactly one
        worker (data parallelism without sample overlap).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        parts: List[List[int]] = [[] for _ in range(workers)]
        for i in range(len(self.batches)):
            parts[i % workers].append(i)
        return parts

    def stage(self, object_store, bucket: str) -> List[str]:
        """Preload all batches into the object store; returns their keys."""
        keys = []
        for i, batch in enumerate(self.batches):
            key = f"{self.name}/batch-{i:05d}"
            object_store.preload(bucket, key, batch)
            keys.append(key)
        return keys

    def __repr__(self) -> str:
        return (
            f"<Dataset {self.name!r} batches={len(self.batches)} "
            f"samples={self.n_samples}>"
        )
