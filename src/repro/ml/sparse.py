"""Sparse data structures for training.

The paper's prototype reimplements models, optimizers and **sparse data
structures** in Cython because dense handling of highly sparse data (what
PyTorch does here) wastes both compute and network.  This module provides
the two structures everything else uses:

``CSRMatrix``
    Compressed sparse row feature matrix with the two kernels SGD needs:
    ``matvec`` (X @ w) and ``rmatvec_on_support`` (Xᵀ r restricted to the
    touched columns, returned sparse).

``SparseDelta``
    A flat-indexed sparse increment over one parameter tensor — the wire
    format of MLLess model updates.  Supports accumulation, scaling and
    in-place application to a dense array, and knows its wire size.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["CSRMatrix", "SparseDelta"]

#: wire bytes per stored entry: 4-byte index + 8-byte value
_INDEX_BYTES = 4
_VALUE_BYTES = 8


class CSRMatrix:
    """Compressed sparse row matrix (float64 values, int32 indices)."""

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._validate()

    def _validate(self) -> None:
        rows, cols = self.shape
        if len(self.indptr) != rows + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} != rows+1 ({rows + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data length mismatch")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= cols
        ):
            raise ValueError("column index out of range")

    # -- construction ----------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Tuple[np.ndarray, np.ndarray]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Build from an iterable of (col_indices, values) per row."""
        indptr: List[int] = [0]
        all_idx: List[np.ndarray] = []
        all_val: List[np.ndarray] = []
        for cols, vals in rows:
            cols = np.asarray(cols, dtype=np.int32)
            vals = np.asarray(vals, dtype=np.float64)
            if len(cols) != len(vals):
                raise ValueError("row indices/values length mismatch")
            all_idx.append(cols)
            all_val.append(vals)
            indptr.append(indptr[-1] + len(cols))
        indices = np.concatenate(all_idx) if all_idx else np.empty(0, np.int32)
        data = np.concatenate(all_val) if all_val else np.empty(0, np.float64)
        return cls(np.asarray(indptr), indices, data, (len(indptr) - 1, n_cols))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"need a 2-D array, got shape {dense.shape}")
        rows = []
        for r in range(dense.shape[0]):
            (cols,) = np.nonzero(dense[r])
            rows.append((cols, dense[r, cols]))
        return cls.from_rows(rows, dense.shape[1])

    # -- properties -------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def nbytes(self) -> int:
        """Wire size: CSR arrays as shipped to a worker."""
        return (
            self.indptr.size * 8
            + self.indices.size * _INDEX_BYTES
            + self.data.size * _VALUE_BYTES
        )

    @property
    def density(self) -> float:
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    # -- kernels ---------------------------------------------------------
    def matvec(self, w: np.ndarray) -> np.ndarray:
        """X @ w for dense ``w`` of length n_cols."""
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (self.shape[1],):
            raise ValueError(f"w has shape {w.shape}, need ({self.shape[1]},)")
        if self.nnz == 0:
            return np.zeros(self.shape[0])
        products = self.data * w[self.indices]
        row_ids = np.repeat(
            np.arange(self.shape[0]), np.diff(self.indptr)
        )
        return np.bincount(row_ids, weights=products, minlength=self.shape[0])

    def rmatvec_on_support(self, r: np.ndarray) -> "SparseDelta":
        """Xᵀ r restricted to touched columns, as a :class:`SparseDelta`.

        This is the sparse-gradient kernel: with r the per-sample residual,
        the LR gradient only has mass on features present in the batch.
        """
        r = np.asarray(r, dtype=np.float64)
        if r.shape != (self.shape[0],):
            raise ValueError(f"r has shape {r.shape}, need ({self.shape[0]},)")
        if self.nnz == 0:
            return SparseDelta.empty((self.shape[1],))
        row_nnz = np.diff(self.indptr)
        per_entry = self.data * np.repeat(r, row_nnz)
        cols, inverse = np.unique(self.indices, return_inverse=True)
        values = np.bincount(inverse, weights=per_entry, minlength=len(cols))
        return SparseDelta(cols.astype(np.int64), values, (self.shape[1],))

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """The sub-matrix of rows ``[start, stop)``."""
        start = max(0, start)
        stop = min(self.shape[0], stop)
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSRMatrix(
            self.indptr[start : stop + 1] - lo,
            self.indices[lo:hi],
            self.data[lo:hi],
            (stop - start, self.shape[1]),
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        for r in range(self.shape[0]):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            dense[r, self.indices[lo:hi]] = self.data[lo:hi]
        return dense

    def __repr__(self) -> str:
        return (
            f"<CSRMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz} "
            f"density={self.density:.4f}>"
        )


class SparseDelta:
    """A sparse increment over one parameter tensor.

    Indices are *flat* (``np.ravel`` order), so the same structure covers
    vectors (LR weights) and matrices (PMF factor rows).  Instances are
    value objects: arithmetic returns new deltas.
    """

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, ...],
    ):
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.shape = tuple(int(s) for s in shape)
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise ValueError("indices/values must be 1-D and equal length")
        size = int(np.prod(self.shape)) if self.shape else 0
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= size
        ):
            raise ValueError("flat index out of range for shape")

    @classmethod
    def empty(cls, shape: Tuple[int, ...]) -> "SparseDelta":
        return cls(np.empty(0, np.int64), np.empty(0, np.float64), shape)

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> "SparseDelta":
        """Extract the nonzero (or masked) entries of a dense tensor."""
        flat = np.ravel(dense)
        if mask is not None:
            sel = np.flatnonzero(np.ravel(mask))
        else:
            sel = np.flatnonzero(flat)
        return cls(sel, flat[sel], dense.shape)

    # -- properties -------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def nbytes(self) -> int:
        """Wire size of the update as MLLess would serialize it."""
        return self.nnz * (_INDEX_BYTES + _VALUE_BYTES)

    # -- arithmetic -------------------------------------------------------
    def scale(self, factor: float) -> "SparseDelta":
        return SparseDelta(self.indices, self.values * factor, self.shape)

    def merge(self, other: "SparseDelta") -> "SparseDelta":
        """Sum of two deltas over the same tensor (indices deduplicated)."""
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if self.nnz == 0:
            return other
        if other.nnz == 0:
            return self
        idx = np.concatenate([self.indices, other.indices])
        val = np.concatenate([self.values, other.values])
        uniq, inverse = np.unique(idx, return_inverse=True)
        summed = np.bincount(inverse, weights=val, minlength=len(uniq))
        return SparseDelta(uniq, summed, self.shape)

    def apply_to(self, dense: np.ndarray) -> None:
        """In-place ``dense[flat idx] += values``."""
        if dense.shape != self.shape:
            raise ValueError(f"shape mismatch: {dense.shape} vs {self.shape}")
        if self.nnz:
            np.add.at(np.ravel(dense), self.indices, self.values)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        self.apply_to(dense)
        return dense

    def norm(self) -> float:
        return float(np.linalg.norm(self.values))

    def __repr__(self) -> str:
        return f"<SparseDelta shape={self.shape} nnz={self.nnz}>"
