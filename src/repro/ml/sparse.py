"""Sparse data structures for training.

The paper's prototype reimplements models, optimizers and **sparse data
structures** in Cython because dense handling of highly sparse data (what
PyTorch does here) wastes both compute and network.  This module provides
the two structures everything else uses:

``CSRMatrix``
    Compressed sparse row feature matrix with the two kernels SGD needs:
    ``matvec`` (X @ w) and ``rmatvec_on_support`` (Xᵀ r restricted to the
    touched columns, returned sparse).

``SparseDelta``
    A flat-indexed sparse increment over one parameter tensor — the wire
    format of MLLess model updates.  Supports accumulation, scaling and
    in-place application to a dense array, and knows its wire size.

Hot-path contracts (see DESIGN.md "Hot-path performance"):

* ``CSRMatrix`` instances are **immutable once constructed** — batches are
  staged once and re-read every epoch — so per-matrix derived state
  (``matvec`` row ids, ``rmatvec_on_support`` column support, the SciPy
  matvec handle) is computed once and cached on the instance.
* ``SparseDelta`` indices produced by this module (and by every gradient
  / filter path in the repo) are **sorted and duplicate-free**; the
  constructor verifies cheap invariants and the sortedness flag is
  tracked so kernels can rely on it.
* Every fast path below is bit-identical to the naive formulation it
  replaces — property tests in ``tests/property`` enforce this, and the
  SciPy matvec handle self-verifies against the numpy kernel on first
  use, falling back if the platform's BLAS-free CSR loop ever disagrees.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CSRMatrix", "SparseDelta"]

#: wire bytes per stored entry: 4-byte index + 8-byte value
_INDEX_BYTES = 4
_VALUE_BYTES = 8


class CSRMatrix:
    """Compressed sparse row matrix (float64 values, int32 indices).

    Instances are immutable: the index/data arrays must not be written to
    after construction, which is what makes the per-instance kernel
    caches (``_row_ids``, ``_support``, ``_spmv``) safe — there is no
    cache-invalidation story because there is nothing to invalidate.
    """

    __slots__ = ("indptr", "indices", "data", "shape", "_row_ids", "_support", "_spmv")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._row_ids: Optional[np.ndarray] = None
        self._support: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        #: SciPy CSR handle: None = not built yet, False = unavailable or
        #: failed the bit-identity self-check, else the scipy.sparse matrix
        self._spmv = None
        self._validate()

    @classmethod
    def _trusted(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CSRMatrix":
        """Internal constructor for arrays already known to be valid.

        Skips the O(nnz) ``_validate`` scan; callers guarantee the CSR
        invariants hold (e.g. :meth:`row_slice` of an already-validated
        matrix).  Dtypes must already match the public constructor's.
        """
        obj = cls.__new__(cls)
        obj.indptr = indptr
        obj.indices = indices
        obj.data = data
        obj.shape = (int(shape[0]), int(shape[1]))
        obj._row_ids = None
        obj._support = None
        obj._spmv = None
        return obj

    def _validate(self) -> None:
        rows, cols = self.shape
        if len(self.indptr) != rows + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} != rows+1 ({rows + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data length mismatch")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= cols
        ):
            raise ValueError("column index out of range")

    # -- construction ----------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Tuple[np.ndarray, np.ndarray]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Build from an iterable of (col_indices, values) per row."""
        indptr: List[int] = [0]
        all_idx: List[np.ndarray] = []
        all_val: List[np.ndarray] = []
        for cols, vals in rows:
            cols = np.asarray(cols, dtype=np.int32)
            vals = np.asarray(vals, dtype=np.float64)
            if len(cols) != len(vals):
                raise ValueError("row indices/values length mismatch")
            all_idx.append(cols)
            all_val.append(vals)
            indptr.append(indptr[-1] + len(cols))
        indices = np.concatenate(all_idx) if all_idx else np.empty(0, np.int32)
        data = np.concatenate(all_val) if all_val else np.empty(0, np.float64)
        return cls(np.asarray(indptr), indices, data, (len(indptr) - 1, n_cols))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"need a 2-D array, got shape {dense.shape}")
        rows = []
        for r in range(dense.shape[0]):
            (cols,) = np.nonzero(dense[r])
            rows.append((cols, dense[r, cols]))
        return cls.from_rows(rows, dense.shape[1])

    # -- properties -------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def nbytes(self) -> int:
        """Wire size: CSR arrays as shipped to a worker."""
        return (
            self.indptr.size * 8
            + self.indices.size * _INDEX_BYTES
            + self.data.size * _VALUE_BYTES
        )

    @property
    def density(self) -> float:
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    # -- cached derived state ---------------------------------------------
    def _cached_row_ids(self) -> np.ndarray:
        """Row id of every stored entry (compute-once per matrix)."""
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.shape[0]), np.diff(self.indptr)
            )
        return self._row_ids

    def _cached_support(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(cols, inverse, row_nnz)`` of the column support (compute-once).

        ``cols`` is int64, sorted-unique and frozen (read-only) so it can
        be shared with the :class:`SparseDelta` results of
        :meth:`rmatvec_on_support` without defensive copies.
        """
        if self._support is None:
            cols, inverse = np.unique(self.indices, return_inverse=True)
            cols = cols.astype(np.int64)
            cols.setflags(write=False)
            self._support = (cols, inverse, np.diff(self.indptr))
        return self._support

    # -- kernels ---------------------------------------------------------
    def matvec(self, w: np.ndarray) -> np.ndarray:
        """X @ w for dense ``w`` of length n_cols."""
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (self.shape[1],):
            raise ValueError(f"w has shape {w.shape}, need ({self.shape[1]},)")
        if self.nnz == 0:
            return np.zeros(self.shape[0])
        if self._spmv is None:
            return self._build_spmv(w)
        if self._spmv is not False:
            return self._spmv @ w
        return self._matvec_numpy(w)

    def _matvec_numpy(self, w: np.ndarray) -> np.ndarray:
        """Reference kernel: per-row left-to-right accumulation from zero."""
        products = self.data * w[self.indices]
        return np.bincount(
            self._cached_row_ids(), weights=products, minlength=self.shape[0]
        )

    def _build_spmv(self, w: np.ndarray) -> np.ndarray:
        """Build (and self-verify) the SciPy CSR matvec handle.

        SciPy's csr matvec runs the same per-row left-to-right
        accumulation as the bincount reference, so the results are
        bit-identical — but that is a property of the platform's build,
        not of the API, so the first call checks it.  On any mismatch
        (or without scipy installed) the matrix permanently falls back
        to the numpy kernel.
        """
        reference = self._matvec_numpy(w)
        try:
            from scipy.sparse import csr_matrix
        except ImportError:
            self._spmv = False
            return reference
        handle = csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )
        if (handle @ w).tobytes() == reference.tobytes():
            self._spmv = handle
        else:
            self._spmv = False
        return reference

    def rmatvec_on_support(self, r: np.ndarray) -> "SparseDelta":
        """Xᵀ r restricted to touched columns, as a :class:`SparseDelta`.

        This is the sparse-gradient kernel: with r the per-sample residual,
        the LR gradient only has mass on features present in the batch.
        The column support (one ``np.unique`` over nnz entries) is cached
        per matrix; only the O(nnz) multiply + bincount run per call.
        """
        r = np.asarray(r, dtype=np.float64)
        if r.shape != (self.shape[0],):
            raise ValueError(f"r has shape {r.shape}, need ({self.shape[0]},)")
        if self.nnz == 0:
            return SparseDelta.empty((self.shape[1],))
        cols, inverse, row_nnz = self._cached_support()
        per_entry = self.data * np.repeat(r, row_nnz)
        values = np.bincount(inverse, weights=per_entry, minlength=len(cols))
        return SparseDelta._trusted(cols, values, (self.shape[1],))

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """The sub-matrix of rows ``[start, stop)``.

        A slice of a validated matrix cannot violate the CSR invariants,
        so this skips the O(nnz) validation scan of the public
        constructor (the index/data arrays are shared, not copied).
        """
        start = max(0, start)
        stop = min(self.shape[0], stop)
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSRMatrix._trusted(
            self.indptr[start : stop + 1] - lo,
            self.indices[lo:hi],
            self.data[lo:hi],
            (stop - start, self.shape[1]),
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        for r in range(self.shape[0]):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            dense[r, self.indices[lo:hi]] = self.data[lo:hi]
        return dense

    def __repr__(self) -> str:
        return (
            f"<CSRMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz} "
            f"density={self.density:.4f}>"
        )


class SparseDelta:
    """A sparse increment over one parameter tensor.

    Indices are *flat* (``np.ravel`` order), so the same structure covers
    vectors (LR weights) and matrices (PMF factor rows).  Instances are
    value objects: arithmetic returns new deltas, and callers must never
    write to ``indices``/``values`` in place.

    Every delta produced by this repo's kernels (gradients, filters,
    merges) has **sorted, duplicate-free** indices; the
    ``has_sorted_unique_indices`` property tracks the invariant lazily so
    consumers can rely on it without re-scanning.
    """

    __slots__ = ("indices", "values", "shape", "_sorted_unique")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, ...],
    ):
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.shape = tuple(int(s) for s in shape)
        self._sorted_unique: Optional[bool] = None
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise ValueError("indices/values must be 1-D and equal length")
        size = int(np.prod(self.shape)) if self.shape else 0
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= size
        ):
            raise ValueError("flat index out of range for shape")

    @classmethod
    def _trusted(
        cls,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, ...],
        sorted_unique: Optional[bool] = True,
    ) -> "SparseDelta":
        """Internal constructor for arrays already known to be valid.

        Skips the O(nnz) range scan; callers guarantee dtypes (int64 /
        float64, contiguous), bounds, and the ``sorted_unique`` claim.
        """
        obj = cls.__new__(cls)
        obj.indices = indices
        obj.values = values
        obj.shape = tuple(int(s) for s in shape)
        obj._sorted_unique = sorted_unique
        return obj

    @classmethod
    def empty(cls, shape: Tuple[int, ...]) -> "SparseDelta":
        return cls._trusted(np.empty(0, np.int64), np.empty(0, np.float64), shape)

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> "SparseDelta":
        """Extract the nonzero (or masked) entries of a dense tensor."""
        flat = np.ravel(dense)
        if mask is not None:
            sel = np.flatnonzero(np.ravel(mask))
        else:
            sel = np.flatnonzero(flat)
        return cls._trusted(sel, np.ascontiguousarray(flat[sel]), dense.shape)

    # -- properties -------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def nbytes(self) -> int:
        """Wire size of the update as MLLess would serialize it."""
        return self.nnz * (_INDEX_BYTES + _VALUE_BYTES)

    @property
    def has_sorted_unique_indices(self) -> bool:
        """True when indices are strictly increasing (checked lazily once)."""
        if self._sorted_unique is None:
            self._sorted_unique = bool(np.all(np.diff(self.indices) > 0))
        return self._sorted_unique

    # -- arithmetic -------------------------------------------------------
    def scale(self, factor: float) -> "SparseDelta":
        return SparseDelta._trusted(
            self.indices, self.values * factor, self.shape, self._sorted_unique
        )

    def merge(self, other: "SparseDelta") -> "SparseDelta":
        """Sum of two deltas over the same tensor (indices deduplicated).

        Always returns a delta whose arrays alias neither input — an
        empty side yields a defensive copy of the other, never the other
        object's own arrays.
        """
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if self.nnz == 0:
            return other._copy()
        if other.nnz == 0:
            return self._copy()
        idx = np.concatenate([self.indices, other.indices])
        val = np.concatenate([self.values, other.values])
        uniq, inverse = np.unique(idx, return_inverse=True)
        summed = np.bincount(inverse, weights=val, minlength=len(uniq))
        return SparseDelta._trusted(uniq, summed, self.shape)

    @classmethod
    def merge_many(
        cls,
        deltas: "Sequence[SparseDelta]",
        shape: Optional[Tuple[int, ...]] = None,
    ) -> "SparseDelta":
        """Sum of n deltas over the same tensor (indices deduplicated).

        One concatenate and one ``np.unique`` over all entries, instead
        of the O(k) pairwise merges of a fold — and bit-identical to that
        fold, because both accumulate each index's contributions in input
        order starting from zero.  ``shape`` is only needed when
        ``deltas`` may be empty.
        """
        deltas = [d for d in deltas if d.nnz]
        if not deltas:
            if shape is None:
                raise ValueError("merge_many of no deltas needs an explicit shape")
            return cls.empty(shape)
        first_shape = deltas[0].shape
        for d in deltas[1:]:
            if d.shape != first_shape:
                raise ValueError(f"shape mismatch: {first_shape} vs {d.shape}")
        if len(deltas) == 1:
            return deltas[0]._copy()
        idx = np.concatenate([d.indices for d in deltas])
        val = np.concatenate([d.values for d in deltas])
        uniq, inverse = np.unique(idx, return_inverse=True)
        summed = np.bincount(inverse, weights=val, minlength=len(uniq))
        return cls._trusted(uniq, summed, first_shape)

    def _copy(self) -> "SparseDelta":
        """An independent copy (fresh index/value arrays)."""
        return SparseDelta._trusted(
            self.indices.copy(), self.values.copy(), self.shape, self._sorted_unique
        )

    def apply_to(self, dense: np.ndarray) -> None:
        """In-place ``dense[flat idx] += values``.

        Uses ``np.add.at``: on NumPy >= 1.25 the ufunc ``.at`` fast path
        is the quickest correct scatter-add (measurably faster than the
        gather/add/scatter of a fancy-index ``+=``, which is kept as
        :meth:`_apply_fancy` for the equivalence property tests).
        """
        if dense.shape != self.shape:
            raise ValueError(f"shape mismatch: {dense.shape} vs {self.shape}")
        if self.nnz:
            np.add.at(np.ravel(dense), self.indices, self.values)

    def _apply_fancy(self, dense: np.ndarray) -> None:
        """Fancy-index scatter: valid only because indices are unique.

        Bit-identical to :meth:`apply_to` for sorted-unique deltas (the
        invariant every kernel in this repo maintains); property-tested
        against it, and benchmarked so a future NumPy where this wins
        again is visible in BENCH output.
        """
        if dense.shape != self.shape:
            raise ValueError(f"shape mismatch: {dense.shape} vs {self.shape}")
        if not self.has_sorted_unique_indices:
            raise ValueError("fancy-index scatter requires sorted-unique indices")
        if self.nnz:
            flat = np.ravel(dense)
            flat[self.indices] += self.values

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        self.apply_to(dense)
        return dense

    def norm(self) -> float:
        return float(np.linalg.norm(self.values))

    def __repr__(self) -> str:
        return f"<SparseDelta shape={self.shape} nnz={self.nnz}>"
