"""Model parameter containers and sparse updates over them.

``ParameterSet``
    Named dense tensors (e.g. LR: ``{"w": (n,), "b": (1,)}``; PMF:
    ``{"U": (n_users, r), "M": (n_movies, r)}``) with copy/arithmetic
    helpers and a wire size for eviction-time model shipping.

``ModelUpdate``
    A named bundle of :class:`~repro.ml.sparse.SparseDelta`, one per
    parameter tensor — the unit that flows through the KV store between
    MLLess workers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

from .sparse import SparseDelta

__all__ = ["ParameterSet", "ModelUpdate"]


class ParameterSet:
    """A named collection of dense parameter tensors."""

    def __init__(self, tensors: Dict[str, np.ndarray]):
        if not tensors:
            raise ValueError("a ParameterSet needs at least one tensor")
        self._tensors = {
            name: np.ascontiguousarray(t, dtype=np.float64)
            for name, t in tensors.items()
        }

    def __getitem__(self, name: str) -> np.ndarray:
        return self._tensors[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tensors

    def __iter__(self) -> Iterator[Tuple[str, np.ndarray]]:
        return iter(sorted(self._tensors.items()))

    @property
    def names(self):
        return sorted(self._tensors)

    @property
    def n_parameters(self) -> int:
        return sum(t.size for t in self._tensors.values())

    @property
    def nbytes(self) -> int:
        """Wire size of a full dense snapshot (eviction hand-off)."""
        return sum(t.nbytes for t in self._tensors.values())

    def copy(self) -> "ParameterSet":
        return ParameterSet({n: t.copy() for n, t in self._tensors.items()})

    def shapes(self) -> Dict[str, Tuple[int, ...]]:
        return {n: t.shape for n, t in self._tensors.items()}

    def apply(self, update: "ModelUpdate") -> None:
        """In-place add of a sparse update."""
        for name, delta in update:
            if name not in self._tensors:
                raise KeyError(f"update names unknown tensor {name!r}")
            delta.apply_to(self._tensors[name])

    def apply_many(self, updates: "Iterable[ModelUpdate]") -> None:
        """In-place add of several sparse updates, in order.

        Semantically (and bit-for-bit) identical to calling :meth:`apply`
        once per update in the given order, but fused: one concatenate +
        one ``np.add.at`` per touched tensor instead of one scatter per
        (update, tensor).  Bit-identical because ``np.add.at`` performs
        its additions element-by-element in argument order — the fused
        index stream replays exactly the sequential one.
        """
        per_tensor: Dict[str, Tuple[list, list]] = {}
        for update in updates:
            for name, delta in update:
                if name not in self._tensors:
                    raise KeyError(f"update names unknown tensor {name!r}")
                if delta.shape != self._tensors[name].shape:
                    raise ValueError(
                        f"shape mismatch: {self._tensors[name].shape} vs {delta.shape}"
                    )
                if delta.nnz:
                    idx, val = per_tensor.setdefault(name, ([], []))
                    idx.append(delta.indices)
                    val.append(delta.values)
        for name, (idx, val) in per_tensor.items():
            np.add.at(
                np.ravel(self._tensors[name]),
                idx[0] if len(idx) == 1 else np.concatenate(idx),
                val[0] if len(val) == 1 else np.concatenate(val),
            )

    def average_with(self, other: "ParameterSet") -> None:
        """In-place ``self = (self + other) / 2`` (eviction reintegration)."""
        if other.shapes() != self.shapes():
            raise ValueError("parameter shape mismatch")
        for name, tensor in self._tensors.items():
            tensor += other[name]
            tensor *= 0.5

    def distance_to(self, other: "ParameterSet") -> float:
        """L2 distance across all tensors (replica-divergence measure)."""
        if other.shapes() != self.shapes():
            raise ValueError("parameter shape mismatch")
        total = 0.0
        for name, tensor in self._tensors.items():
            diff = tensor - other[name]
            total += float(np.dot(diff.ravel(), diff.ravel()))
        return float(np.sqrt(total))

    def __repr__(self) -> str:
        shapes = ", ".join(f"{n}{t.shape}" for n, t in self)
        return f"<ParameterSet {shapes}>"


class ModelUpdate:
    """Sparse deltas for a subset of a model's tensors."""

    def __init__(self, deltas: Dict[str, SparseDelta]):
        self._deltas = dict(deltas)

    def __iter__(self) -> Iterator[Tuple[str, SparseDelta]]:
        return iter(sorted(self._deltas.items()))

    def __getitem__(self, name: str) -> SparseDelta:
        return self._deltas[name]

    def __contains__(self, name: str) -> bool:
        return name in self._deltas

    @property
    def names(self):
        return sorted(self._deltas)

    @property
    def nnz(self) -> int:
        return sum(d.nnz for d in self._deltas.values())

    @property
    def nbytes(self) -> int:
        """Wire size (what the KV store charges for)."""
        return sum(d.nbytes for d in self._deltas.values()) or 8

    def scale(self, factor: float) -> "ModelUpdate":
        return ModelUpdate({n: d.scale(factor) for n, d in self._deltas.items()})

    def merge(self, other: "ModelUpdate") -> "ModelUpdate":
        """Entry-wise sum; tensors present in either side are kept."""
        merged = dict(self._deltas)
        for name, delta in other:
            merged[name] = merged[name].merge(delta) if name in merged else delta
        return ModelUpdate(merged)

    @classmethod
    def merge_many(cls, updates: "Iterable[ModelUpdate]") -> "ModelUpdate":
        """Sum of n updates (tensors present in any input are kept).

        One :meth:`SparseDelta.merge_many` per tensor instead of the
        O(k) pairwise fold — bit-identical to the fold, since both sum
        each index's contributions in input order (see
        :meth:`SparseDelta.merge_many`).
        """
        updates = list(updates)
        if not updates:
            return cls({})
        if len(updates) == 1:
            return updates[0]
        per_name: Dict[str, list] = {}
        for update in updates:
            for name, delta in update:
                per_name.setdefault(name, []).append(delta)
        return cls(
            {
                name: SparseDelta.merge_many(deltas, shape=deltas[0].shape)
                for name, deltas in per_name.items()
            }
        )

    def is_empty(self) -> bool:
        return self.nnz == 0

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{d.nnz}" for n, d in self)
        return f"<ModelUpdate {parts}>"
