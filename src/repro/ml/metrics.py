"""Evaluation metrics beyond training losses.

``auc`` — area under the ROC curve for binary classifiers (the standard
reporting metric for Criteo CTR models), computed exactly via the
rank-statistic formulation with proper tie handling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["auc", "accuracy"]


def auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Exact ROC AUC via the Mann-Whitney U statistic (ties averaged)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be 1-D and equal length")
    pos = labels > 0.5
    n_pos = int(pos.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs both positive and negative labels")
    # Average ranks with tie correction.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(1, len(scores) + 1)
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum_pos = float(ranks[pos].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def accuracy(scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correct binary predictions at ``threshold``."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same shape")
    preds = (scores >= threshold).astype(np.float64)
    return float(np.mean(preds == labels))
