"""ML substrate: sparse structures, losses, optimizers, models, data."""

from . import data, models, optim
from .loss import bce_loss, mse_loss, rmse, sigmoid
from .metrics import accuracy, auc
from .parameters import ModelUpdate, ParameterSet
from .sparse import CSRMatrix, SparseDelta

__all__ = [
    "CSRMatrix",
    "SparseDelta",
    "ParameterSet",
    "ModelUpdate",
    "sigmoid",
    "bce_loss",
    "mse_loss",
    "rmse",
    "auc",
    "accuracy",
    "data",
    "models",
    "optim",
]
