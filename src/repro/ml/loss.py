"""Loss functions used in the evaluation.

Logistic regression is trained against **binary cross entropy** (the paper
stops LR at BCE = 0.58 on Criteo) and matrix factorization against **RMSE**
(stop thresholds 0.82 / 0.738 on the MovieLens jobs).
"""

from __future__ import annotations

import numpy as np

__all__ = ["sigmoid", "bce_loss", "bce_grad_residual", "mse_loss", "rmse"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def bce_loss(probs: np.ndarray, labels: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross entropy of predicted probabilities vs 0/1 labels."""
    probs = np.clip(np.asarray(probs, dtype=np.float64), eps, 1.0 - eps)
    labels = np.asarray(labels, dtype=np.float64)
    if probs.shape != labels.shape:
        raise ValueError(f"shape mismatch: {probs.shape} vs {labels.shape}")
    return float(
        -np.mean(labels * np.log(probs) + (1.0 - labels) * np.log(1.0 - probs))
    )


def bce_grad_residual(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample residual (p - y); Xᵀ residual / n is the BCE gradient."""
    return np.asarray(probs, dtype=np.float64) - np.asarray(labels, dtype=np.float64)


def mse_loss(preds: np.ndarray, targets: np.ndarray) -> float:
    preds = np.asarray(preds, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if preds.shape != targets.shape:
        raise ValueError(f"shape mismatch: {preds.shape} vs {targets.shape}")
    return float(np.mean((preds - targets) ** 2))


def rmse(preds: np.ndarray, targets: np.ndarray) -> float:
    return float(np.sqrt(mse_loss(preds, targets)))
