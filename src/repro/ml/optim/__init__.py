"""Optimizers (SGD, momentum/Nesterov, Adam, AdaGrad) and LR schedules."""

from .adam import Adam, AdaGrad
from .rmsprop import RMSProp
from .base import Optimizer
from .schedules import ConstantLR, InverseSqrtLR, LRSchedule, StepDecayLR
from .sgd import SGD, MomentumSGD

__all__ = [
    "Optimizer",
    "SGD",
    "MomentumSGD",
    "Adam",
    "AdaGrad",
    "RMSProp",
    "LRSchedule",
    "ConstantLR",
    "InverseSqrtLR",
    "StepDecayLR",
]
