"""Adam and AdaGrad, sparse-aware.

The paper's LR/Criteo job trains with Adam (Table 1).  Both optimizers
keep dense moment buffers but only update the entries touched by the
sparse gradient ("lazy" updates), with Adam's bias correction driven by
the global step — the standard serverless/embedding-table approximation.
"""

from __future__ import annotations

import numpy as np

from ..sparse import SparseDelta
from .base import Optimizer

__all__ = ["Adam", "AdaGrad"]


class Adam(Optimizer):
    """Lazy sparse Adam."""

    def __init__(
        self,
        lr,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(lr)
        if not 0 <= beta1 < 1:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0 <= beta2 < 1:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps

    def _transform(self, name, tensor, grad: SparseDelta, lr, t) -> SparseDelta:
        m = np.ravel(self._buffer("m", name, tensor.shape))
        v = np.ravel(self._buffer("v", name, tensor.shape))
        idx, g = grad.indices, grad.values
        m[idx] = self.beta1 * m[idx] + (1.0 - self.beta1) * g
        v[idx] = self.beta2 * v[idx] + (1.0 - self.beta2) * g * g
        m_hat = m[idx] / (1.0 - self.beta1**t)
        v_hat = v[idx] / (1.0 - self.beta2**t)
        step = m_hat / (np.sqrt(v_hat) + self.eps)
        return SparseDelta(idx, -lr * step, grad.shape)


class AdaGrad(Optimizer):
    """Lazy sparse AdaGrad (per-entry accumulated squared gradients)."""

    def __init__(self, lr, eps: float = 1e-10):
        super().__init__(lr)
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.eps = eps

    def _transform(self, name, tensor, grad: SparseDelta, lr, t) -> SparseDelta:
        acc = np.ravel(self._buffer("sq", name, tensor.shape))
        idx, g = grad.indices, grad.values
        acc[idx] += g * g
        step = g / (np.sqrt(acc[idx]) + self.eps)
        return SparseDelta(idx, -lr * step, grad.shape)
