"""RMSProp, sparse-aware (lazy per-entry second-moment decay)."""

from __future__ import annotations

import numpy as np

from ..sparse import SparseDelta
from .base import Optimizer

__all__ = ["RMSProp"]


class RMSProp(Optimizer):
    """Lazy sparse RMSProp with optional momentum."""

    def __init__(self, lr, alpha: float = 0.99, eps: float = 1e-8,
                 momentum: float = 0.0):
        super().__init__(lr)
        if not 0 <= alpha < 1:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum

    def _transform(self, name, tensor, grad: SparseDelta, lr, t) -> SparseDelta:
        sq = np.ravel(self._buffer("sq", name, tensor.shape))
        idx, g = grad.indices, grad.values
        sq[idx] = self.alpha * sq[idx] + (1.0 - self.alpha) * g * g
        step = g / (np.sqrt(sq[idx]) + self.eps)
        if self.momentum > 0:
            buf = np.ravel(self._buffer("momentum", name, tensor.shape))
            buf[idx] = self.momentum * buf[idx] + step
            step = buf[idx]
        return SparseDelta(idx, -lr * step, grad.shape)
