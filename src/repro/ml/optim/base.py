"""Optimizer interface.

An optimizer maps a raw (sparse) gradient into a parameter *update*
``u_t`` such that ``x_t = x_{t-1} + u_t`` — the form MLLess's significance
filter and the convergence analysis work with.  Optimizer state (momentum
buffers, Adam moments) is kept dense per tensor but only the entries
touched by the sparse gradient are updated, matching the "lazy" sparse
variants serverless workers must use to stay within memory and CPU limits.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Dict

import numpy as np

from ..parameters import ModelUpdate, ParameterSet
from ..sparse import SparseDelta
from .schedules import ConstantLR, LRSchedule

__all__ = ["Optimizer"]


class Optimizer(ABC):
    """Transforms gradients into updates; owns per-tensor state buffers."""

    def __init__(self, lr: "LRSchedule | float"):
        self.schedule: LRSchedule = (
            ConstantLR(float(lr)) if isinstance(lr, (int, float)) else lr
        )
        self._state: Dict[str, Dict[str, np.ndarray]] = {}

    def _buffer(self, slot: str, name: str, shape) -> np.ndarray:
        """Get (allocating zeros on first use) state buffer ``slot/name``."""
        per_slot = self._state.setdefault(slot, {})
        if name not in per_slot:
            per_slot[name] = np.zeros(shape)
        return per_slot[name]

    def step(self, params: ParameterSet, grad: ModelUpdate, t: int) -> ModelUpdate:
        """The update ``u_t`` for gradient ``grad`` at global step ``t``."""
        if t < 1:
            raise ValueError(f"step t must be >= 1, got {t}")
        lr = self.schedule.rate(t)
        deltas = {}
        for name, g in grad:
            if name not in params:
                raise KeyError(f"gradient names unknown tensor {name!r}")
            deltas[name] = self._transform(name, params[name], g, lr, t)
        return ModelUpdate(deltas)

    @abstractmethod
    def _transform(
        self,
        name: str,
        tensor: np.ndarray,
        grad: SparseDelta,
        lr: float,
        t: int,
    ) -> SparseDelta:
        """Per-tensor sparse update from a sparse gradient."""

    def clone(self) -> "Optimizer":
        """An independent copy: fresh state buffers, shared schedule.

        Schedules are frozen dataclasses, so sharing them is safe; every
        optimizer in this package keeps its mutable state exclusively in
        ``_state`` (the contract of :meth:`_buffer`).  A subclass that
        adds mutable attributes outside ``_state`` must override this.
        Used by checkpoint snapshotting instead of ``copy.deepcopy``.
        """
        dup = copy.copy(self)
        dup._state = {
            slot: {name: buf.copy() for name, buf in per_slot.items()}
            for slot, per_slot in self._state.items()
        }
        return dup

    def reset(self) -> None:
        """Drop all state (fresh training run)."""
        self._state.clear()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} schedule={self.schedule!r}>"
