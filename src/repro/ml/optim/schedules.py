"""Learning-rate schedules.

Theorem 1's convergence analysis assumes the step size decays as
``eta_t = eta / sqrt(t)``; :class:`InverseSqrtLR` implements exactly that.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["LRSchedule", "ConstantLR", "InverseSqrtLR", "StepDecayLR"]


class LRSchedule(ABC):
    """Maps the (1-based) global step to a learning rate."""

    @abstractmethod
    def rate(self, t: int) -> float:
        """Learning rate at step ``t`` (t >= 1)."""

    def _check(self, t: int) -> None:
        if t < 1:
            raise ValueError(f"step t must be >= 1, got {t}")


@dataclass(frozen=True)
class ConstantLR(LRSchedule):
    eta: float

    def rate(self, t: int) -> float:
        self._check(t)
        return self.eta


@dataclass(frozen=True)
class InverseSqrtLR(LRSchedule):
    """``eta / sqrt(t)`` — the schedule assumed by Theorem 1."""

    eta: float

    def rate(self, t: int) -> float:
        self._check(t)
        return self.eta / math.sqrt(t)


@dataclass(frozen=True)
class StepDecayLR(LRSchedule):
    """Multiply by ``gamma`` every ``period`` steps."""

    eta: float
    gamma: float = 0.5
    period: int = 100

    def rate(self, t: int) -> float:
        self._check(t)
        return self.eta * self.gamma ** ((t - 1) // self.period)
