"""SGD and momentum variants.

``SGD``
    Plain ``u = -lr * g``.

``MomentumSGD``
    Heavy-ball or Nesterov momentum with lazily-updated velocity buffers.
    The paper's PMF jobs use *SGD + Nesterov momentum* (Table 1).
"""

from __future__ import annotations

import numpy as np

from ..sparse import SparseDelta
from .base import Optimizer

__all__ = ["SGD", "MomentumSGD"]


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def _transform(self, name, tensor, grad: SparseDelta, lr, t) -> SparseDelta:
        return grad.scale(-lr)


class MomentumSGD(Optimizer):
    """SGD with (optionally Nesterov) momentum, sparse-aware.

    Velocity follows the PyTorch convention ``v = mu * v + g``; the update
    is ``-lr * v`` (heavy ball) or ``-lr * (g + mu * v)`` (Nesterov).
    Only entries touched by the gradient are decayed and updated — the
    standard lazy trick for sparse training.
    """

    def __init__(self, lr, momentum: float = 0.9, nesterov: bool = False):
        super().__init__(lr)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.nesterov = nesterov

    def _transform(self, name, tensor, grad: SparseDelta, lr, t) -> SparseDelta:
        velocity = self._buffer("velocity", name, tensor.shape)
        flat_v = np.ravel(velocity)
        idx = grad.indices
        flat_v[idx] = self.momentum * flat_v[idx] + grad.values
        if self.nesterov:
            step = grad.values + self.momentum * flat_v[idx]
        else:
            step = flat_v[idx]
        return SparseDelta(idx, -lr * step, grad.shape)
