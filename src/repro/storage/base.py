"""Common machinery for simulated storage services.

Every service (object store, KV store, message queue) charges each request

* a per-request latency drawn from a :class:`~repro.net.LatencyModel`, and
* a transfer time for the payload bytes over the service's shared
  :class:`~repro.net.Link` (so concurrent requests contend), and

records per-operation metrics.  Subclasses implement the data semantics;
this module owns the timing and accounting so they all behave consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator

import numpy as np

from ..net import LatencyModel, Link
from ..sim import Environment, RandomStreams
from ..trace.tracer import NO_SPAN, NULL_TRACER
from .errors import TransientStorageError
from .sizing import payload_size

__all__ = ["ServiceMetrics", "StorageService"]

#: Deterministic client-side retry backoff for injected transient errors.
_RETRY_BACKOFF_BASE_S = 0.05
_RETRY_BACKOFF_CAP_S = 1.0


@dataclass
class ServiceMetrics:
    """Request counts and byte volumes per operation type."""

    requests: Dict[str, int] = field(default_factory=dict)
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    busy_time: float = 0.0

    def count(self, op: str) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1

    @property
    def total_requests(self) -> int:
        return sum(self.requests.values())

    def summary(self) -> Dict[str, float]:
        return {
            "requests": self.total_requests,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "busy_time": self.busy_time,
        }


class StorageService:
    """Base class: request timing, contention and metrics."""

    #: span category prefix for traced requests ("storage.get", "mq.publish", …)
    trace_kind = "storage"

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        latency: LatencyModel,
        bandwidth_bps: float,
        name: str,
        faults=None,
        tracer=None,
    ):
        self.env = env
        self.name = name
        self.latency = latency
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind(env)
        self.link = Link(env, bandwidth_bps, name=f"{name}.link", tracer=self.tracer)
        self.metrics = ServiceMetrics()
        self.faults = faults
        self._rng: np.random.Generator = streams.stream(f"storage.{name}")

    def _charge(
        self, op: str, payload_bytes: float, inbound: bool, detail=None
    ) -> Generator:
        """Process generator: charge latency + transfer for one request."""
        sp = NO_SPAN
        if self.tracer.enabled:
            attrs = {"service": self.name, "bytes": payload_bytes}
            if detail is not None:
                attrs["key"] = detail
            sp = self.tracer.begin(f"{self.trace_kind}.{op}", op, **attrs)
        try:
            yield from self._charge_inner(op, payload_bytes, inbound)
        finally:
            if sp >= 0:
                self.tracer.end(sp)

    def _charge_inner(
        self, op: str, payload_bytes: float, inbound: bool
    ) -> Generator:
        if self.faults is not None:
            attempts = 0
            while self.faults.storage_should_fail(self.name):
                attempts += 1
                self.metrics.count(f"{op}.error")
                # The failed attempt still costs a round-trip.
                yield self.env.timeout(self.latency.sample(self._rng))
                if attempts > self.faults.profile.max_storage_retries:
                    raise TransientStorageError(self.name, op, attempts)
                self.faults.stats.note_recovered("storage_retry")
                backoff = min(
                    _RETRY_BACKOFF_BASE_S * 2 ** (attempts - 1),
                    _RETRY_BACKOFF_CAP_S,
                )
                yield self.env.timeout(backoff)
        start = self.env.now
        self.metrics.count(op)
        yield self.env.timeout(self.latency.sample(self._rng))
        yield from self.link.transfer(payload_bytes)
        if inbound:
            self.metrics.bytes_in += payload_bytes
        else:
            self.metrics.bytes_out += payload_bytes
        self.metrics.busy_time += self.env.now - start

    @staticmethod
    def size_of(obj) -> int:
        """Wire size of a payload (see :func:`payload_size`)."""
        return payload_size(obj)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
