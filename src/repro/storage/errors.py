"""Exceptions raised by the simulated storage services."""

from __future__ import annotations

__all__ = [
    "StorageError",
    "KeyNotFound",
    "BucketNotFound",
    "QueueClosed",
    "TransientStorageError",
]


class StorageError(Exception):
    """Base class for storage-service errors."""


class KeyNotFound(StorageError):
    """A GET referenced a key/object that does not exist."""

    def __init__(self, key: str, where: str = "store"):
        super().__init__(f"key {key!r} not found in {where}")
        self.key = key
        self.where = where


class BucketNotFound(StorageError):
    """An object-store operation referenced an unknown bucket."""

    def __init__(self, bucket: str):
        super().__init__(f"bucket {bucket!r} not found")
        self.bucket = bucket


class QueueClosed(StorageError):
    """An operation was attempted on a closed message queue."""

    def __init__(self, queue: str):
        super().__init__(f"queue {queue!r} is closed")
        self.queue = queue


class TransientStorageError(StorageError):
    """An injected transient fault exhausted the service's retry budget.

    The storage layer retries transient failures internally (with a
    deterministic backoff); only when ``max_storage_retries`` consecutive
    attempts fail does this surface to the caller — who may retry at a
    coarser granularity (e.g. relaunch the whole activation).
    """

    def __init__(self, service: str, op: str, attempts: int):
        super().__init__(
            f"{service}.{op} failed after {attempts} attempts "
            "(injected transient errors)"
        )
        self.service = service
        self.op = op
        self.attempts = attempts
