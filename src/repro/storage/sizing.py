"""Wire-size accounting for simulated payloads.

Simulated transfer times are charged per byte, so every payload moved
through a storage service needs a size.  The rules, in order:

1. Objects exposing an integer ``nbytes`` attribute (numpy arrays, this
   repo's sparse updates and model snapshots) use it directly.
2. ``bytes``/``bytearray`` use their length.
3. Strings use their UTF-8 length.
4. Scalars use fixed widths (8 bytes for floats/ints, 1 for bools).
5. Containers add per-item overhead plus the sizes of their contents —
   a rough stand-in for serialization framing.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["payload_size"]

#: Serialization framing overhead charged per container element, bytes.
CONTAINER_ITEM_OVERHEAD = 8
#: Fixed envelope charged per top-level payload (headers, key, framing).
ENVELOPE_OVERHEAD = 64


def payload_size(obj: Any) -> int:
    """Estimated wire size of ``obj`` in bytes (envelope included)."""
    return ENVELOPE_OVERHEAD + _body_size(obj)


def _body_size(obj: Any) -> int:
    if obj is None:
        return 1
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None and isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, dict):
        return sum(
            CONTAINER_ITEM_OVERHEAD + _body_size(k) + _body_size(v)
            for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(CONTAINER_ITEM_OVERHEAD + _body_size(v) for v in obj)
    raise TypeError(
        f"cannot size object of type {type(obj).__name__}; give it an "
        f"integer 'nbytes' attribute or use a supported container"
    )
