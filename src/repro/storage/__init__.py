"""Simulated storage services: object store, KV store, message queue."""

from .base import ServiceMetrics, StorageService
from .errors import (
    BucketNotFound,
    KeyNotFound,
    QueueClosed,
    StorageError,
    TransientStorageError,
)
from .kv_store import KVStore
from .message_queue import Exchange, MessageQueue
from .object_store import ObjectStore
from .sizing import payload_size

__all__ = [
    "StorageService",
    "ServiceMetrics",
    "ObjectStore",
    "KVStore",
    "MessageQueue",
    "Exchange",
    "payload_size",
    "StorageError",
    "KeyNotFound",
    "BucketNotFound",
    "QueueClosed",
    "TransientStorageError",
]
