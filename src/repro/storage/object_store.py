"""Simulated object storage (IBM Cloud Object Storage stand-in).

Buckets of immutable objects with GET/PUT/LIST/DELETE, high per-request
latency (hundreds of milliseconds by default) and high aggregate
throughput.  MLLess stores dataset mini-batches here; the PyWren baseline
additionally funnels *all* worker communication through it, which is what
makes it so slow in Fig. 6.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..net import LatencyModel, LognormalLatency
from ..sim import Environment, RandomStreams
from .base import StorageService
from .errors import BucketNotFound, KeyNotFound

__all__ = ["ObjectStore"]

#: Default request latency: median 100 ms with a heavy tail — §2 of the
#: paper: a trip through shared external storage "contributes significant
#: extra latency, often hundreds of milliseconds".  Large objects pay
#: bandwidth on top.
DEFAULT_LATENCY = LognormalLatency(median=0.100, sigma=0.40, cap=2.0)
#: Default aggregate throughput: object stores scale out, so the service
#: link is wide (8 Gbps) and per-worker NICs are usually the bottleneck.
DEFAULT_BANDWIDTH_BPS = 8e9


class ObjectStore(StorageService):
    """Bucketed object storage with request-level timing."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        latency: LatencyModel = DEFAULT_LATENCY,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        name: str = "cos",
        faults=None,
        tracer=None,
    ):
        super().__init__(
            env, streams, latency, bandwidth_bps, name, faults=faults, tracer=tracer
        )
        self._buckets: Dict[str, Dict[str, Any]] = {}

    # -- management (instantaneous control-plane calls) -----------------
    def create_bucket(self, bucket: str) -> None:
        self._buckets.setdefault(bucket, {})

    def has_bucket(self, bucket: str) -> bool:
        return bucket in self._buckets

    def _bucket(self, bucket: str) -> Dict[str, Any]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise BucketNotFound(bucket) from None

    # -- data plane (simulation process generators) ----------------------
    def put(self, bucket: str, key: str, obj: Any) -> Generator:
        """Store ``obj`` under ``bucket/key``.  Yields until durable."""
        objects = self._bucket(bucket)
        yield from self._charge(
            "put", self.size_of(obj), inbound=True, detail=f"{bucket}/{key}"
        )
        objects[key] = obj

    def get(self, bucket: str, key: str) -> Generator:
        """Fetch the object at ``bucket/key``; generator returns it."""
        objects = self._bucket(bucket)
        if key not in objects:
            raise KeyNotFound(key, where=f"bucket {bucket!r}")
        obj = objects[key]
        yield from self._charge(
            "get", self.size_of(obj), inbound=False, detail=f"{bucket}/{key}"
        )
        return obj

    def delete(self, bucket: str, key: str) -> Generator:
        """Remove ``bucket/key`` (idempotent, as in S3/COS)."""
        objects = self._bucket(bucket)
        yield from self._charge(
            "delete", 0, inbound=True, detail=f"{bucket}/{key}"
        )
        objects.pop(key, None)

    def list_keys(self, bucket: str, prefix: str = "") -> Generator:
        """List keys in ``bucket`` matching ``prefix``; generator returns them."""
        objects = self._bucket(bucket)
        keys: List[str] = sorted(k for k in objects if k.startswith(prefix))
        yield from self._charge(
            "list", 32 * max(len(keys), 1), inbound=False, detail=f"{bucket}/{prefix}"
        )
        return keys

    # -- synchronous introspection (tests / setup, no time charged) -----
    def peek(self, bucket: str, key: str) -> Any:
        """Read an object without advancing simulated time."""
        objects = self._bucket(bucket)
        if key not in objects:
            raise KeyNotFound(key, where=f"bucket {bucket!r}")
        return objects[key]

    def preload(self, bucket: str, key: str, obj: Any) -> None:
        """Install an object without charging time (dataset staging)."""
        self.create_bucket(bucket)
        self._buckets[bucket][key] = obj

    def object_count(self, bucket: str) -> int:
        return len(self._bucket(bucket))
