"""Simulated low-latency key-value store (Redis stand-in).

MLLess exchanges model updates through this service: each worker PUTs its
(possibly significance-filtered) update and pulls the others' updates every
step.  The store runs on a provisioned VM (M1.2x16 in Table 2), so its cost
is part of the MLLess bill and its NIC is a genuine contention point — the
per-step communication overhead that grows with the worker count (Fig. 2a)
comes from here.

Semantics implemented: GET/SET/DELETE, atomic counters, append-only lists
(RPUSH/LRANGE) used for update logs, and EXISTS.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..net import LatencyModel, LognormalLatency
from ..sim import Environment, RandomStreams
from .base import StorageService
from .errors import KeyNotFound

__all__ = ["KVStore"]

#: Same-zone Redis round trip: median 0.9 ms.
DEFAULT_LATENCY = LognormalLatency(median=0.0009, sigma=0.25, cap=0.05)
#: The Redis VM has a 1 Gbps NIC (Table 2 / §6.1 setup).
DEFAULT_BANDWIDTH_BPS = 1e9


class KVStore(StorageService):
    """In-memory KV store with request-level timing and list ops."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        latency: LatencyModel = DEFAULT_LATENCY,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        name: str = "redis",
        faults=None,
        tracer=None,
    ):
        super().__init__(
            env, streams, latency, bandwidth_bps, name, faults=faults, tracer=tracer
        )
        self._data: Dict[str, Any] = {}
        self._lists: Dict[str, List[Any]] = {}

    # -- plain keys ------------------------------------------------------
    def set(self, key: str, value: Any) -> Generator:
        yield from self._charge("set", self.size_of(value), inbound=True, detail=key)
        self._data[key] = value

    def get(self, key: str) -> Generator:
        if key not in self._data:
            raise KeyNotFound(key, where=self.name)
        value = self._data[key]
        yield from self._charge("get", self.size_of(value), inbound=False, detail=key)
        return value

    def get_or_none(self, key: str) -> Generator:
        """GET that returns ``None`` for a missing key instead of raising."""
        value = self._data.get(key)
        yield from self._charge("get", self.size_of(value), inbound=False, detail=key)
        return value

    def delete(self, key: str) -> Generator:
        yield from self._charge("delete", 0, inbound=True, detail=key)
        self._data.pop(key, None)
        self._lists.pop(key, None)

    def exists(self, key: str) -> Generator:
        yield from self._charge("exists", 8, inbound=False, detail=key)
        return key in self._data or key in self._lists

    def incr(self, key: str, amount: int = 1) -> Generator:
        """Atomic integer increment; generator returns the new value."""
        yield from self._charge("incr", 16, inbound=True, detail=key)
        new = int(self._data.get(key, 0)) + amount
        self._data[key] = new
        return new

    # -- lists (update logs) ----------------------------------------------
    def rpush(self, key: str, value: Any) -> Generator:
        """Append ``value``; generator returns the new list length."""
        yield from self._charge("rpush", self.size_of(value), inbound=True, detail=key)
        self._lists.setdefault(key, []).append(value)
        return len(self._lists[key])

    def llen(self, key: str) -> Generator:
        yield from self._charge("llen", 8, inbound=False, detail=key)
        return len(self._lists.get(key, []))

    def lrange(self, key: str, start: int, stop: int) -> Generator:
        """Slice ``[start, stop)`` of the list; generator returns the items.

        Unlike Redis's inclusive LRANGE, this uses Python slice semantics —
        simpler for callers that track a read cursor.
        """
        items = self._lists.get(key, [])[start:stop]
        size = sum(self.size_of(v) for v in items) if items else 8
        yield from self._charge("lrange", size, inbound=False, detail=key)
        return items

    # -- synchronous introspection (no time charged) ----------------------
    def peek(self, key: str) -> Any:
        if key in self._data:
            return self._data[key]
        raise KeyNotFound(key, where=self.name)

    def peek_list(self, key: str) -> List[Any]:
        return list(self._lists.get(key, []))

    def flush(self) -> None:
        """Drop all data (between experiments); no time charged."""
        self._data.clear()
        self._lists.clear()

    def key_count(self) -> int:
        return len(self._data) + len(self._lists)
