"""Simulated messaging service (RabbitMQ stand-in).

MLLess uses the message queue for small control messages: update
announcements between workers, loss/statistics reports to the supervisor,
and supervisor commands (scale-in orders, termination).  The broker runs on
a provisioned C1.4x4 VM (Table 2), so it contributes to MLLess's bill.

The model offers named queues with publish/consume.  Consumption is
blocking: a consumer's ``get`` event fires when a message is available,
after the delivery latency.  Topic fan-out is provided by
:class:`Exchange`, which copies a published message into every bound queue
(how worker broadcasts reach all peers).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..net import LatencyModel, LognormalLatency
from ..sim import Environment, RandomStreams, Store
from .base import StorageService
from .errors import QueueClosed

__all__ = ["MessageQueue", "Exchange"]

#: Same-zone AMQP publish+deliver: median 1.5 ms.
DEFAULT_LATENCY = LognormalLatency(median=0.0015, sigma=0.3, cap=0.05)
#: The broker VM has a 1 Gbps NIC.
DEFAULT_BANDWIDTH_BPS = 1e9


class MessageQueue(StorageService):
    """Named FIFO queues with timed publish and blocking consume."""

    trace_kind = "mq"

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        latency: LatencyModel = DEFAULT_LATENCY,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        name: str = "rabbitmq",
        faults=None,
        tracer=None,
    ):
        super().__init__(
            env, streams, latency, bandwidth_bps, name, faults=faults, tracer=tracer
        )
        self._queues: Dict[str, Store] = {}
        self._closed: Dict[str, bool] = {}

    def declare(self, queue: str) -> None:
        """Create ``queue`` if it does not exist (idempotent)."""
        if queue not in self._queues:
            self._queues[queue] = Store(self.env)
            self._closed[queue] = False

    def _store(self, queue: str) -> Store:
        self.declare(queue)
        if self._closed[queue]:
            raise QueueClosed(queue)
        return self._queues[queue]

    def publish(self, queue: str, message: Any) -> Generator:
        """Process generator: deliver ``message`` into ``queue``.

        With a fault injector attached the message may be silently dropped
        (at-most-once loss) or delivered twice (at-least-once redelivery);
        the publisher is always charged for the attempt either way.
        """
        store = self._store(queue)
        yield from self._charge(
            "publish", self.size_of(message), inbound=True, detail=queue
        )
        if self.faults is not None:
            fate = self.faults.message_fate(queue)
            if fate == "drop":
                return
            if fate == "duplicate":
                store.put(message)
        store.put(message)  # unbounded store: put never blocks

    def consume(self, queue: str) -> Generator:
        """Process generator: block until a message arrives, return it."""
        store = self._store(queue)
        message = yield store.get()
        yield from self._charge(
            "consume", self.size_of(message), inbound=False, detail=queue
        )
        return message

    def consume_with_timeout(self, queue: str, timeout_s: float) -> Generator:
        """Blocking consume that gives up after ``timeout_s`` seconds.

        Returns the message, or ``None`` on timeout.  The abandoned get is
        cancelled so a later message is not silently delivered to a
        consumer that stopped listening.
        """
        store = self._store(queue)
        get = store.get()
        timeout = self.env.timeout(timeout_s)
        yield get | timeout
        if get.triggered:
            message = get.value
            yield from self._charge(
                "consume", self.size_of(message), inbound=False, detail=queue
            )
            return message
        store.cancel_get(get)
        yield from self._charge("poll", 8, inbound=False, detail=queue)
        return None

    def try_consume(self, queue: str) -> Generator:
        """Non-blocking consume; returns ``None`` when the queue is empty."""
        store = self._store(queue)
        if len(store) == 0:
            yield from self._charge("poll", 8, inbound=False, detail=queue)
            return None
        message = yield store.get()
        yield from self._charge(
            "consume", self.size_of(message), inbound=False, detail=queue
        )
        return message

    def drain(self, queue: str) -> Generator:
        """Consume every currently queued message; returns a list."""
        store = self._store(queue)
        messages: List[Any] = []
        while len(store) > 0:
            messages.append((yield store.get()))
        size = sum(self.size_of(m) for m in messages) if messages else 8
        yield from self._charge("drain", size, inbound=False, detail=queue)
        return messages

    def close(self, queue: str) -> None:
        """Refuse further operations on ``queue``."""
        self.declare(queue)
        self._closed[queue] = True

    def depth(self, queue: str) -> int:
        """Messages currently waiting in ``queue`` (no time charged)."""
        self.declare(queue)
        return len(self._queues[queue])


class Exchange:
    """Topic fan-out: one publish copies the message to all bound queues."""

    def __init__(self, mq: MessageQueue, name: str):
        self.mq = mq
        self.name = name
        self._bindings: List[str] = []

    def bind(self, queue: str) -> None:
        self.mq.declare(queue)
        if queue not in self._bindings:
            self._bindings.append(queue)

    def unbind(self, queue: str) -> None:
        if queue in self._bindings:
            self._bindings.remove(queue)

    @property
    def bindings(self) -> List[str]:
        return list(self._bindings)

    def publish(self, message: Any, exclude: str = "") -> Generator:
        """Deliver ``message`` to every bound queue except ``exclude``."""
        tracer = self.mq.tracer
        sp = -1
        if tracer.enabled:
            sp = tracer.begin(
                "broadcast",
                self.name,
                exchange=self.name,
                queues=len(self._bindings),
            )
        try:
            for queue in list(self._bindings):
                if queue == exclude:
                    continue
                yield from self.mq.publish(queue, message)
        finally:
            if sp >= 0:
                tracer.end(sp)

    def __repr__(self) -> str:
        return f"<Exchange {self.name!r} bindings={len(self._bindings)}>"
