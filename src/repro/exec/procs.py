"""Process execution backend: true parallelism across OS processes.

The third execution backend.  The *same* generator machines that run on
the DES (:mod:`repro.exec.sim`) and on threads (:mod:`repro.exec.local`)
run here one OS process per role, so worker gradient math executes in
parallel on real cores instead of interleaving under the GIL.  The
token protocol is identical to the local backend: a
:class:`ProcServices` method returns a **blocking closure**; the local
backend's :func:`~repro.exec.local.drive` calls it inside the child and
feeds the result back into the machine.

Substrate, piece by piece:

* **Processes** are forked (``multiprocessing`` fork context), so the
  staged dataset and the job config are inherited copy-on-write —
  children never re-pickle mini-batches, and ``cos_get`` in a child is
  a zero-copy dict lookup exactly as in the local backend.
* **Message queues** are per-name ``multiprocessing.Queue`` FIFOs
  created before the fork; consumes are bounded by the shared
  :class:`~repro.exec.deadline.Deadline` discipline so a deadlocked run
  fails loudly.
* **KV store and exchange bindings** live in a control-server *thread
  in the parent* that owns a plain dict and answers request/reply
  queues.  ``kv_set`` is a synchronous round trip (the happens-before
  edge workers rely on: set the update, then announce it), while
  ``kv_delete`` — only used by detached GC sweeps — is fire-and-forget.
* **Model/gradient buffers** go through a :class:`ShmArena`: one
  ``multiprocessing.shared_memory`` block whose per-tensor layout is
  negotiated at spawn.  A worker's significant update is written into
  a parity slot (``step % 2`` — safe under the BSP barrier, which
  guarantees step ``s`` updates are consumed before step ``s + 2``
  exists) and readers reconstruct **zero-copy NumPy views** over the
  block; only a tiny descriptor crosses the control queue.  Dense
  replica hand-offs (``departed/…`` keys) use per-worker dense slots
  the same way.  SSP's staleness window breaks the parity argument, so
  SSP jobs skip the arena and pickle updates through the control
  server instead.

Like the local backend this module is host-side by design: wall-clock
reads and real concurrency primitives are legal here, it is excluded
from sim-lint's ``simulated-layers``, and it is covered by the LOCK1xx
lock-hygiene rules instead.  Fault injection is rejected for the same
reason as in ``exec/local.py``; cost metering is empty (no billed
platform).  Relaunch/resume works unchanged: a role that returns the
relaunch marker is re-entered in place, and because checkpoints travel
through the parent-held KV server they survive even the *death* of a
role process — a replacement process resumes from the checkpoint.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from multiprocessing import shared_memory
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.history import RunResult
from ..core.runtime import JobRuntime
from ..core.ssp import ssp_supervisor_loop, ssp_worker_loop
from ..core.supervisor import supervisor_loop
from ..core.worker import worker_loop
from ..ml.parameters import ModelUpdate, ParameterSet
from ..ml.sparse import SparseDelta
from ..pricing import CostMeter
from ..sim import Monitor
from ..storage.errors import KeyNotFound, StorageError
from .deadline import Deadline
from .local import (
    DATA_BUCKET,
    LocalClock,
    LocalObjectStore,
    LocalSpawner,
    drive,
    _CONSUME_DEADLINE_S,
    _WORKER_DRAIN_GRACE_S,
)
from .protocols import ExecutionContext

__all__ = [
    "ShmArena",
    "ProcKVClient",
    "ProcMessageQueue",
    "ProcServices",
    "ProcExecutionContext",
    "run_procs_job",
]

#: descriptor tags for shared-memory-resident KV values
_SHM_UPDATE = "shm-update"
_SHM_DENSE = "shm-dense"

#: how long the parent waits for role results beyond the job deadline
_RESULT_POLL_S = 1.0


# -- shared-memory arena ----------------------------------------------------


class ShmArena:
    """Spawn-negotiated shared-memory layout for update/replica tensors.

    One block, three regions per worker: two *update parity slots*
    (sparse ``[indices int64[cap] | values float64[cap]]`` per tensor,
    ``cap`` = the tensor's dense size — the filter can at worst mark
    every entry significant) and one *dense replica slot* (``float64``
    per tensor).  All offsets are fixed at construction from the
    model's parameter shapes, so writers and readers in different
    processes agree on the layout with no further negotiation.

    Readers get NumPy views directly over the shared block
    (``SparseDelta._trusted`` / ``ParameterSet`` of views): zero copy,
    zero pickling.  The BSP barrier makes the parity reuse safe; see
    the module docstring.
    """

    def __init__(self, shapes: Dict[str, Tuple[int, ...]], n_workers: int):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.names: List[str] = sorted(shapes)
        self.shapes = {name: tuple(shapes[name]) for name in self.names}
        self.caps = {
            name: int(np.prod(self.shapes[name], dtype=np.int64))
            for name in self.names
        }
        self.n_workers = n_workers
        total_cap = sum(self.caps.values())
        #: bytes of one sparse parity slot / one dense replica slot
        self._update_stride = total_cap * 16  # int64 indices + float64 values
        self._dense_stride = total_cap * 8
        self._dense_base = n_workers * 2 * self._update_stride
        size = max(1, self._dense_base + n_workers * self._dense_stride)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._closed = False

    # -- layout ----------------------------------------------------------
    def _update_offsets(self, worker: int, parity: int, name: str) -> Tuple[int, int]:
        """(indices_offset, values_offset) of one tensor in one slot."""
        base = (worker * 2 + parity) * self._update_stride
        for n in self.names:
            if n == name:
                return base, base + self.caps[name] * 8
            base += self.caps[n] * 16
        raise KeyError(f"arena was not negotiated for tensor {name!r}")

    def _dense_offset(self, worker: int, name: str) -> int:
        base = self._dense_base + worker * self._dense_stride
        for n in self.names:
            if n == name:
                return base
            base += self.caps[n] * 8
        raise KeyError(f"arena was not negotiated for tensor {name!r}")

    # -- sparse update slots ---------------------------------------------
    def write_update(self, worker: int, parity: int, update: ModelUpdate) -> Any:
        """Copy an update's tensors into a parity slot; returns the descriptor."""
        entries = []
        buf = self._shm.buf
        for name, delta in update:
            if name not in self.caps:
                raise StorageError(f"arena was not negotiated for tensor {name!r}")
            nnz = delta.nnz
            if nnz > self.caps[name]:
                raise StorageError(
                    f"update for {name!r} has nnz={nnz} > negotiated "
                    f"capacity {self.caps[name]}"
                )
            idx_off, val_off = self._update_offsets(worker, parity, name)
            idx_view = np.frombuffer(buf, np.int64, count=nnz, offset=idx_off)
            val_view = np.frombuffer(buf, np.float64, count=nnz, offset=val_off)
            idx_view[:] = delta.indices
            val_view[:] = delta.values
            entries.append(
                (name, delta.shape, nnz, bool(delta.has_sorted_unique_indices))
            )
        return (_SHM_UPDATE, worker, parity, entries)

    def read_update(self, descriptor: Any) -> ModelUpdate:
        """Zero-copy :class:`ModelUpdate` over a parity slot's views."""
        _tag, worker, parity, entries = descriptor
        buf = self._shm.buf
        deltas = {}
        for name, shape, nnz, sorted_unique in entries:
            idx_off, val_off = self._update_offsets(worker, parity, name)
            deltas[name] = SparseDelta._trusted(
                np.frombuffer(buf, np.int64, count=nnz, offset=idx_off),
                np.frombuffer(buf, np.float64, count=nnz, offset=val_off),
                tuple(shape),
                sorted_unique=sorted_unique,
            )
        return ModelUpdate(deltas)

    # -- dense replica slots ---------------------------------------------
    def write_dense(self, worker: int, params: ParameterSet) -> Any:
        """Copy a full parameter set into the worker's dense slot."""
        entries = []
        buf = self._shm.buf
        for name, shape in params.shapes().items():
            if name not in self.caps:
                raise StorageError(f"arena was not negotiated for tensor {name!r}")
            offset = self._dense_offset(worker, name)
            count = int(np.prod(shape, dtype=np.int64))
            view = np.frombuffer(buf, np.float64, count=count, offset=offset)
            view[:] = params[name].ravel()
            entries.append((name, tuple(shape)))
        return (_SHM_DENSE, worker, entries)

    def read_dense(self, descriptor: Any) -> ParameterSet:
        """Zero-copy :class:`ParameterSet` of views over a dense slot."""
        _tag, worker, entries = descriptor
        buf = self._shm.buf
        tensors = {}
        for name, shape in entries:
            offset = self._dense_offset(worker, name)
            count = int(np.prod(shape, dtype=np.int64))
            view = np.frombuffer(buf, np.float64, count=count, offset=offset)
            tensors[name] = view.reshape(shape)
        return ParameterSet(tensors)

    def resolve(self, value: Any) -> Any:
        """Reconstruct a shm descriptor into its zero-copy object."""
        if isinstance(value, tuple) and value:
            if value[0] == _SHM_UPDATE:
                return self.read_update(value)
            if value[0] == _SHM_DENSE:
                return self.read_dense(value)
        return value

    def close(self, unlink: bool = False) -> None:
        """Drop this process's mapping; ``unlink=True`` frees the block.

        Only the parent unlinks, and only after every child has been
        joined — a child closing the segment would invalidate live
        views held by machines still running.
        """
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if unlink:
            self._shm.unlink()


# -- control server (parent-side thread) ------------------------------------


class _ControlServer(threading.Thread):
    """Parent thread owning the KV dict and the exchange binding list.

    Children talk to it over one shared request queue and per-client
    reply queues; values are (de)pickled by the queues themselves.
    Single-threaded by construction, so KV semantics are sequentially
    consistent without any locking — the whole reason it is a server
    rather than a shared structure.
    """

    def __init__(
        self,
        request_q: Any,
        reply_qs: List[Any],
        bindings: List[str],
    ):
        super().__init__(name="procs-control", daemon=True)
        self._request_q = request_q
        self._reply_qs = reply_qs
        self._data: Dict[str, Any] = {}
        self._bindings: List[str] = list(bindings)
        self._stop_event = threading.Event()

    def stop(self) -> None:
        self._stop_event.set()

    def run(self) -> None:
        while True:
            try:
                client, op, args = self._request_q.get(timeout=0.2)
            except Empty:
                if self._stop_event.is_set():
                    return
                continue
            reply = self._handle(op, args)
            if reply is not None:
                self._reply_qs[client].put(reply)

    def _handle(self, op: str, args: Tuple[Any, ...]) -> Optional[Tuple[str, Any]]:
        data = self._data
        if op == "set" or op == "set_shm":
            key, value = args
            data[key] = value
            return ("ok", None)
        if op == "get":
            (key,) = args
            if key not in data:
                return ("missing", key)
            return ("ok", data[key])
        if op == "get_or_none":
            (key,) = args
            return ("ok", data.get(key))
        if op == "exists":
            (key,) = args
            return ("ok", key in data)
        if op == "delete":
            (key,) = args
            data.pop(key, None)
            return None  # fire-and-forget (GC sweeps)
        if op == "unbind":
            (queue,) = args
            if queue in self._bindings:
                self._bindings.remove(queue)
            return ("ok", None)
        if op == "bind":
            (queue,) = args
            if queue not in self._bindings:
                self._bindings.append(queue)
            return ("ok", None)
        if op == "bindings":
            return ("ok", list(self._bindings))
        return ("error", f"unknown control op {op!r}")


class ProcKVClient:
    """One role's request/reply channel to the parent control server.

    Each process owns exactly one client (one reply queue), and each
    role runs its round trips from a single thread — detached spawns
    only issue fire-and-forget deletes — so replies can never
    interleave.
    """

    __slots__ = ("_client_id", "_request_q", "_reply_q", "arena")

    def __init__(
        self,
        client_id: int,
        request_q: Any,
        reply_q: Any,
        arena: Optional[ShmArena] = None,
    ):
        self._client_id = client_id
        self._request_q = request_q
        self._reply_q = reply_q
        self.arena = arena

    def _call(self, op: str, *args: Any) -> Any:
        """Synchronous round trip, deadline-bounded like every blocking call."""
        self._request_q.put((self._client_id, op, args))
        deadline = Deadline(_CONSUME_DEADLINE_S)
        try:
            status, payload = self._reply_q.get(timeout=deadline.remaining())
        except Empty:
            raise StorageError(
                f"control {op!r} exceeded the {deadline.budget_s:.0f}s "
                "procs-backend deadline (dead control server?)"
            ) from None
        if status == "missing":
            raise KeyNotFound(payload, where="procs-kv")
        if status == "error":
            raise StorageError(payload)
        return payload

    # -- KV verbs --------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        arena = self.arena
        if arena is not None:
            route = _shm_route(key, value)
            if route is not None:
                kind, step, worker = route
                if kind == _SHM_UPDATE:
                    descriptor = arena.write_update(worker, step & 1, value)
                else:
                    descriptor = arena.write_dense(worker, value)
                self._call("set_shm", key, descriptor)
                return
        self._call("set", key, value)

    def get(self, key: str) -> Any:
        value = self._call("get", key)
        return self.arena.resolve(value) if self.arena is not None else value

    def get_or_none(self, key: str) -> Optional[Any]:
        value = self._call("get_or_none", key)
        return self.arena.resolve(value) if self.arena is not None else value

    def delete(self, key: str) -> None:
        # Fire-and-forget: only detached GC sweeps delete, and a lost
        # delete merely leaks a descriptor, never corrupts state.
        self._request_q.put((self._client_id, "delete", (key,)))

    def exists(self, key: str) -> bool:
        return bool(self._call("exists", key))

    # -- exchange verbs --------------------------------------------------
    def bind(self, queue: str) -> None:
        self._call("bind", queue)

    def unbind(self, queue: str) -> None:
        self._call("unbind", queue)

    def bindings(self) -> List[str]:
        return list(self._call("bindings"))


def _shm_route(key: str, value: Any) -> Optional[Tuple[str, int, int]]:
    """Classify a KV write as arena-resident: (tag, step, worker) or None.

    Update keys (``upd/{step}/{worker}`` carrying a
    :class:`ModelUpdate`) go to parity slots; replica keys
    (``departed/{step}/{worker}`` carrying a :class:`ParameterSet`) go
    to dense slots.  Everything else — checkpoints above all — pickles
    through the control server.
    """
    parts = key.split("/")
    if len(parts) != 3:
        return None
    prefix, step_s, worker_s = parts
    try:
        step, worker = int(step_s), int(worker_s)
    except ValueError:
        return None
    if prefix == "upd" and isinstance(value, ModelUpdate):
        return (_SHM_UPDATE, step, worker)
    if prefix == "departed" and isinstance(value, ParameterSet):
        return (_SHM_DENSE, step, worker)
    return None


# -- message queues ----------------------------------------------------------


class ProcMessageQueue:
    """Named FIFO queues over ``multiprocessing.Queue``.

    All queues are declared in the parent **before** the fork, so every
    child inherits the same handles; a declare after spawn could not
    reach already-running children and is rejected.
    """

    def __init__(self, ctx: Any):
        self._ctx = ctx
        self._queues: Dict[str, Any] = {}
        self._sealed = False

    def declare(self, name: str) -> None:
        if name in self._queues:
            return
        if self._sealed:
            raise StorageError(
                f"queue {name!r} declared after spawn — procs queues must "
                "all exist before the fork"
            )
        self._queues[name] = self._ctx.Queue()

    def seal(self) -> None:
        """Called by the parent just before forking the role processes."""
        self._sealed = True

    def _queue(self, name: str) -> Any:
        queue = self._queues.get(name)
        if queue is None:
            raise StorageError(f"queue {name!r} was never declared")
        return queue

    def publish(self, name: str, message: Dict[str, Any]) -> None:
        self._queue(name).put(message)

    def consume(self, name: str) -> Dict[str, Any]:
        """Blocking consume, bounded so deadlocks fail instead of hanging."""
        deadline = Deadline(_CONSUME_DEADLINE_S)
        try:
            return self._queue(name).get(timeout=deadline.remaining())
        except Empty:
            raise StorageError(
                f"consume on {name!r} exceeded the {deadline.budget_s:.0f}s "
                "procs-backend deadline (deadlocked run?)"
            ) from None

    def consume_with_timeout(
        self, name: str, timeout_s: float
    ) -> Optional[Dict[str, Any]]:
        try:
            return self._queue(name).get(timeout=max(timeout_s, 0.0))
        except Empty:
            return None

    def drain(self, name: str) -> List[Dict[str, Any]]:
        queue = self._queue(name)
        out: List[Dict[str, Any]] = []
        while True:
            try:
                out.append(queue.get_nowait())
            except Empty:
                return out


# -- the Services implementation ---------------------------------------------


class ProcServices:
    """:class:`~repro.exec.protocols.Services` across process boundaries.

    Same token protocol as :class:`~repro.exec.local.LocalServices`:
    every data-plane method returns a zero-argument blocking closure,
    resolved by :func:`~repro.exec.local.drive` on the role's process.
    """

    __slots__ = ("cos", "kv", "mq")

    def __init__(
        self,
        cos: LocalObjectStore,
        kv: ProcKVClient,
        mq: ProcMessageQueue,
    ):
        self.cos = cos
        self.kv = kv
        # The exchange has no object of its own: bindings live in the
        # control server (shared, mutable) and fan-out publishes go
        # straight to the member queues from the caller's process.
        self.mq = mq

    # -- object store ----------------------------------------------------
    def cos_get(self, bucket: str, key: str) -> Callable[[], Any]:
        return lambda: self.cos.get(bucket, key)

    # -- KV store --------------------------------------------------------
    def kv_set(self, key: str, value: Any) -> Callable[[], None]:
        return lambda: self.kv.set(key, value)

    def kv_get(self, key: str) -> Callable[[], Any]:
        return lambda: self.kv.get(key)

    def kv_get_or_none(self, key: str) -> Callable[[], Optional[Any]]:
        return lambda: self.kv.get_or_none(key)

    def kv_delete(self, key: str) -> Callable[[], None]:
        return lambda: self.kv.delete(key)

    def kv_exists(self, key: str) -> Callable[[], bool]:
        return lambda: self.kv.exists(key)

    # -- message queue ---------------------------------------------------
    def mq_publish(self, queue: str, message: Dict[str, Any]) -> Callable[[], None]:
        return lambda: self.mq.publish(queue, message)

    def mq_consume(self, queue: str) -> Callable[[], Dict[str, Any]]:
        return lambda: self.mq.consume(queue)

    def mq_consume_with_timeout(
        self, queue: str, timeout_s: float
    ) -> Callable[[], Optional[Dict[str, Any]]]:
        return lambda: self.mq.consume_with_timeout(queue, timeout_s)

    def mq_drain(self, queue: str) -> Callable[[], List[Dict[str, Any]]]:
        return lambda: self.mq.drain(queue)

    # -- broadcast exchange ----------------------------------------------
    def broadcast(
        self, message: Dict[str, Any], exclude: str = ""
    ) -> Callable[[], None]:
        def _publish() -> None:
            for queue in self.kv.bindings():
                if queue != exclude:
                    self.mq.publish(queue, message)

        return _publish

    def unbind(self, queue: str) -> None:
        self.kv.unbind(queue)

    # -- execution accounting --------------------------------------------
    def compute(self, cpu_seconds: float) -> Callable[[], None]:
        """As in the local backend: the numpy arithmetic itself takes the
        real CPU time; the calibrated estimate is discarded."""
        return lambda: None

    def sleep(self, seconds: float) -> Callable[[], None]:
        return lambda: time.sleep(seconds)


class ProcExecutionContext(ExecutionContext):
    """One per role process; the services inside carry that role's client."""


# -- role processes ----------------------------------------------------------


def _role_main(
    loop_fn: Callable[[ExecutionContext, Dict[str, Any]], Any],
    ectx: ExecutionContext,
    payload: Dict[str, Any],
    role: str,
    results_q: Any,
) -> None:
    """Process target: drive a role, re-entering on relaunch markers.

    Mirrors the local backend's ``_run_role``; the supervisor ships its
    monitor back with the result (it mutated a copy-on-write copy the
    parent never sees).
    """
    try:
        while True:
            result = drive(loop_fn(ectx, payload))
            if isinstance(result, dict) and result.get("outcome") == "relaunch":
                payload = {**payload, "resume": True}
                continue
            break
        monitor = payload["runtime"].monitor if role == "supervisor" else None
        results_q.put((role, result, monitor))
    except BaseException as error:  # surfaced to the parent after join
        results_q.put((role, {"outcome": "error", "error": repr(error)}, None))


def _negotiated_shapes(config: Any) -> Dict[str, Tuple[int, ...]]:
    """Per-tensor shapes for the arena layout, from the worker's own init.

    Reuses ``core.worker._fresh_checkpoint`` (the seeded-init path every
    worker runs) so the negotiated layout is by construction the layout
    the workers will produce.
    """
    from types import SimpleNamespace

    from ..core.worker import _fresh_checkpoint

    probe = _fresh_checkpoint(SimpleNamespace(config=config), 0)
    return probe.params.shapes()


def run_procs_job(config: Any, max_duration_s: float = 600.0) -> RunResult:
    """Train one MLLess job for real, one OS process per role.

    Parent-side choreography: stage the dataset and create every shared
    structure *before* the fork (queues, reply channels, the shm
    arena), fork one daemon process per role, then start the control
    server thread — started strictly after the fork so no thread can
    hold a queue lock at fork time.  Results and the supervisor's
    monitor come back over a results queue; joins share deadlines so a
    field of stuck workers costs one grace budget, not one each.
    """
    if config.faults is not None and not config.faults.is_noop():
        raise ValueError(
            "the procs backend cannot inject faults — fault profiles "
            "sample simulated RNG streams and steer simulated time; "
            "run fault experiments on the sim backend"
        )
    try:
        ctx = mp.get_context("fork")
    except ValueError:
        raise StorageError(
            "the procs backend requires the fork start method "
            "(copy-on-write dataset staging); this platform has none"
        ) from None

    cos = LocalObjectStore()
    clock = LocalClock(max_duration_s=max_duration_s)
    batch_keys = config.dataset.stage(cos, DATA_BUCKET)

    n_workers = config.n_workers
    n_roles = 1 + n_workers  # supervisor + workers
    request_q = ctx.Queue()
    results_q = ctx.Queue()
    #: one reply queue per role, plus one for the parent itself
    reply_qs = [ctx.Queue() for _ in range(n_roles + 1)]

    # SSP's staleness window breaks the parity-slot reuse argument, so
    # only barrier-synchronized jobs negotiate the shm arena.
    arena = (
        ShmArena(_negotiated_shapes(config), n_workers)
        if config.sync != "ssp"
        else None
    )

    mq = ProcMessageQueue(ctx)
    parent_kv = ProcKVClient(n_roles, request_q, reply_qs[n_roles], arena)
    runtime = JobRuntime(
        config=config,
        cos=cos,
        kv=parent_kv,
        mq=mq,
        exchange=parent_kv,  # bindings live in the control server
        bucket=DATA_BUCKET,
        batch_keys=batch_keys,
        partitions=config.dataset.partition(n_workers),
        monitor=Monitor(),
    )

    mq.declare(runtime.supervisor_queue)
    bindings = []
    for w in range(n_workers):
        queue = runtime.worker_queue(w)
        mq.declare(queue)
        bindings.append(queue)
    mq.seal()

    if config.pipeline_stages > 1:
        raise ValueError(
            "the procs backend does not support pipeline-parallel jobs; "
            "use the sim or local backend"
        )
    if config.sync == "ssp":
        worker_fn, supervisor_fn = ssp_worker_loop, ssp_supervisor_loop
    else:
        worker_fn, supervisor_fn = worker_loop, supervisor_loop

    def role_process(role_idx: int, role: str, loop_fn, payload) -> Any:
        kv = ProcKVClient(role_idx, request_q, reply_qs[role_idx], arena)
        ectx = ProcExecutionContext(
            services=ProcServices(cos, kv, mq),
            clock=clock,
            spawner=LocalSpawner(),
        )
        return ctx.Process(
            target=_role_main,
            args=(loop_fn, ectx, payload, role, results_q),
            name=f"role-{role}",
            daemon=True,
        )

    supervisor = role_process(
        0, "supervisor", supervisor_fn, {"runtime": runtime}
    )
    workers = [
        role_process(
            1 + w, f"worker-{w}", worker_fn,
            {"runtime": runtime, "worker_id": w},
        )
        for w in range(n_workers)
    ]

    started_at = clock.now()
    supervisor.start()
    for proc in workers:
        proc.start()
    # Strictly after the fork: a running server thread could hold a
    # queue's internal lock at fork time and deadlock every child.
    server = _ControlServer(request_q, reply_qs, bindings)
    server.start()

    results: Dict[str, Any] = {}
    monitor: Optional[Monitor] = None
    job_deadline = Deadline(max_duration_s)
    try:
        while len(results) < n_roles and not job_deadline.expired():
            try:
                role, result, shipped = results_q.get(
                    timeout=min(_RESULT_POLL_S, max(job_deadline.remaining(), 0.05))
                )
            except Empty:
                continue
            results[role] = result
            if shipped is not None:
                monitor = shipped

        supervisor.join(timeout=job_deadline.remaining())
        if supervisor.is_alive() or "supervisor" not in results:
            raise StorageError(
                f"procs supervisor did not finish within {max_duration_s:.0f}s"
            )
        # One drain budget shared by *all* worker joins (Deadline
        # discipline — 30 s total, not 30 s per worker).
        drain = Deadline(_WORKER_DRAIN_GRACE_S)
        for proc in workers:
            proc.join(timeout=drain.remaining())
        finished_at = clock.now()
        drained = sum(1 for proc in workers if not proc.is_alive())
    finally:
        for proc in (supervisor, *workers):
            if proc.is_alive():
                proc.terminate()
        reap = Deadline(_WORKER_DRAIN_GRACE_S)
        for proc in (supervisor, *workers):
            proc.join(timeout=reap.remaining())
        server.stop()
        server.join(timeout=5.0)
        if arena is not None:
            arena.close(unlink=True)

    failures = [
        (role, result)
        for role, result in results.items()
        if isinstance(result, dict) and result.get("outcome") == "error"
    ]
    if failures:
        role, result = failures[0]
        raise StorageError(f"procs role {role} failed: {result.get('error')}")

    report = results.get("supervisor") or {}
    extras = {
        "stop_reason_is_target": float(report.get("converged", False)),
        "workers_drained": float(drained),
    }
    return RunResult(
        system="mlless-procs",
        monitor=monitor if monitor is not None else runtime.monitor,
        meter=CostMeter(),
        started_at=started_at,
        finished_at=finished_at,
        converged=bool(report.get("converged")),
        final_loss=report.get("final_loss"),
        total_steps=int(report.get("steps", 0)),
        extras=extras,
    )
