"""Local execution backend: real threads, real queues, wall-clock time.

The repo's first non-simulated execution path.  The *same* training
machines that run on the DES (:mod:`repro.core.worker`,
:mod:`repro.core.supervisor`, :mod:`repro.core.ssp`) run here on one OS
thread per role, exchanging messages through real ``queue.Queue`` FIFOs
and sharing lock-protected in-memory stores.  Gradients are the same real
numpy arithmetic as everywhere else — here it simply takes however long
it takes, and the :class:`~repro.core.history.RunResult` reports genuine
elapsed seconds.

Token protocol: a :class:`LocalServices` method returns a **blocking
closure**; :func:`drive` calls it and feeds the result (or throws the
exception) back into the machine.  Blocking a closure blocks only its
role's thread — exactly the semantics of a worker blocking on a barrier.

Wall-clock reads (``time.monotonic``, ``time.sleep``) are *legal in this
module only* — it is deliberately left out of sim-lint's
``simulated-layers`` (see ``pyproject.toml``), while everything under
``repro/exec/sim.py`` and the core machines remain lint-enforced pure.

What this backend does **not** do:

* fault injection — the injector samples from the simulation's RNG
  streams and steers simulated time; :func:`run_local_job` rejects
  configs with a non-noop fault profile;
* cost metering — there is no billed platform; the result carries an
  empty :class:`~repro.pricing.CostMeter` (total cost 0.0);
* bit-reproducible *schedules* — message arrival order depends on OS
  scheduling, so supervisor-side mean-loss floats may differ at ulp
  level between runs.  Each worker's parameter evolution is still
  deterministic (peer updates are applied in sorted sender order), so
  the final loss matches the simulator to tight tolerance — enforced by
  ``tests/exec/test_cross_backend.py``.
"""

from __future__ import annotations

import threading
import time
from queue import Empty, Queue
from typing import Any, Callable, Dict, List, Optional

from ..core.history import RunResult
from ..core.pipeline import pipeline_stage_loop
from ..core.runtime import JobRuntime
from ..core.ssp import ssp_supervisor_loop, ssp_worker_loop
from ..core.supervisor import supervisor_loop
from ..core.worker import worker_loop
from ..pricing import CostMeter
from ..sim import Monitor
from ..storage.errors import BucketNotFound, KeyNotFound, StorageError
from .deadline import Deadline
from .protocols import ExecutionContext, Machine

__all__ = [
    "LocalClock",
    "LocalObjectStore",
    "LocalKVStore",
    "LocalMessageQueue",
    "LocalExchange",
    "LocalServices",
    "LocalSpawner",
    "LocalExecutionContext",
    "drive",
    "run_local_job",
    "DATA_BUCKET",
]

DATA_BUCKET = "training-data"

#: upper bound on any single blocking consume — a deadlocked run fails
#: loudly with a StorageError instead of hanging the process forever
_CONSUME_DEADLINE_S = 120.0

#: after the supervisor finishes, how long to wait for worker threads
_WORKER_DRAIN_GRACE_S = 30.0


def drive(machine: Machine) -> Any:
    """Run a machine to completion, resolving each token as a real call.

    The local counterpart of :func:`repro.exec.sim.drive`: same feedback
    loop, but tokens are blocking closures executed on this thread.
    """
    value: Any = None
    pending: Any = None
    while True:
        try:
            if pending is not None:
                error, pending = pending, None
                call = machine.throw(error)
            else:
                call = machine.send(value)
        except StopIteration as stop:
            return stop.value
        try:
            value = call()
        except Exception as error:  # delivered into the machine
            value = None
            pending = error


class LocalClock:
    """Wall-clock seconds since backend start; real activation cap."""

    def __init__(self, max_duration_s: float = 600.0):
        self.max_duration_s = max_duration_s
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def remaining_time(self, started_at: float) -> float:
        return self.max_duration_s - (self.now() - started_at)


class LocalObjectStore:
    """Bucketed in-memory object store (the COS stand-in)."""

    def __init__(self):
        self._buckets: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()

    def preload(self, bucket: str, key: str, obj: Any) -> None:
        """Install an object synchronously (dataset staging)."""
        with self._lock:
            self._buckets.setdefault(bucket, {})[key] = obj

    def get(self, bucket: str, key: str) -> Any:
        with self._lock:
            if bucket not in self._buckets:
                raise BucketNotFound(bucket)
            objects = self._buckets[bucket]
            if key not in objects:
                raise KeyNotFound(key, where=f"local-cos/{bucket}")
            return objects[key]


class LocalKVStore:
    """Lock-protected dict with the simulated KV store's semantics."""

    def __init__(self):
        self._data: Dict[str, Any] = {}
        self._lock = threading.RLock()

    def set(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value

    def get(self, key: str) -> Any:
        with self._lock:
            if key not in self._data:
                raise KeyNotFound(key, where="local-kv")
            return self._data[key]

    def get_or_none(self, key: str) -> Optional[Any]:
        with self._lock:
            return self._data.get(key)

    def delete(self, key: str) -> None:
        with self._lock:
            self._data.pop(key, None)

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._data


class LocalMessageQueue:
    """Named FIFO queues over ``queue.Queue`` (the RabbitMQ stand-in)."""

    def __init__(self):
        self._queues: Dict[str, Queue] = {}
        self._lock = threading.RLock()

    def declare(self, name: str) -> None:
        with self._lock:
            self._queues.setdefault(name, Queue())

    def _queue(self, name: str) -> Queue:
        with self._lock:
            if name not in self._queues:
                raise StorageError(f"queue {name!r} was never declared")
            return self._queues[name]

    def publish(self, name: str, message: Dict[str, Any]) -> None:
        self._queue(name).put(message)

    def consume(self, name: str) -> Dict[str, Any]:
        """Blocking consume, bounded so deadlocks fail instead of hanging."""
        deadline = Deadline(_CONSUME_DEADLINE_S)
        try:
            return self._queue(name).get(timeout=deadline.remaining())
        except Empty:
            raise StorageError(
                f"consume on {name!r} exceeded the {deadline.budget_s:.0f}s "
                "local-backend deadline (deadlocked run?)"
            ) from None

    def consume_with_timeout(
        self, name: str, timeout_s: float
    ) -> Optional[Dict[str, Any]]:
        try:
            return self._queue(name).get(timeout=timeout_s)
        except Empty:
            return None

    def drain(self, name: str) -> List[Dict[str, Any]]:
        q = self._queue(name)
        out: List[Dict[str, Any]] = []
        while True:
            try:
                out.append(q.get_nowait())
            except Empty:
                return out


class LocalExchange:
    """Fan-out exchange over the local message queues."""

    def __init__(self, mq: LocalMessageQueue, name: str = "local-broadcast"):
        self.mq = mq
        self.name = name
        self._bindings: List[str] = []
        self._lock = threading.RLock()

    def bind(self, queue: str) -> None:
        with self._lock:
            if queue not in self._bindings:
                self._bindings.append(queue)

    def unbind(self, queue: str) -> None:
        with self._lock:
            if queue in self._bindings:
                self._bindings.remove(queue)

    def bindings(self) -> List[str]:
        with self._lock:
            return list(self._bindings)

    def publish(self, message: Dict[str, Any], exclude: str = "") -> None:
        for queue in self.bindings():
            if queue != exclude:
                self.mq.publish(queue, message)


class LocalServices:
    """:class:`~repro.exec.protocols.Services` over the local stores.

    Every data-plane method returns a zero-argument closure; the result
    materializes when :func:`drive` calls it on the role's thread.
    """

    __slots__ = ("cos", "kv", "mq", "exchange")

    def __init__(
        self,
        cos: LocalObjectStore,
        kv: LocalKVStore,
        mq: LocalMessageQueue,
        exchange: LocalExchange,
    ):
        self.cos = cos
        self.kv = kv
        self.mq = mq
        self.exchange = exchange

    # -- object store ----------------------------------------------------
    def cos_get(self, bucket: str, key: str) -> Callable[[], Any]:
        return lambda: self.cos.get(bucket, key)

    # -- KV store --------------------------------------------------------
    def kv_set(self, key: str, value: Any) -> Callable[[], None]:
        return lambda: self.kv.set(key, value)

    def kv_get(self, key: str) -> Callable[[], Any]:
        return lambda: self.kv.get(key)

    def kv_get_or_none(self, key: str) -> Callable[[], Optional[Any]]:
        return lambda: self.kv.get_or_none(key)

    def kv_delete(self, key: str) -> Callable[[], None]:
        return lambda: self.kv.delete(key)

    def kv_exists(self, key: str) -> Callable[[], bool]:
        return lambda: self.kv.exists(key)

    # -- message queue ---------------------------------------------------
    def mq_publish(self, queue: str, message: Dict[str, Any]) -> Callable[[], None]:
        return lambda: self.mq.publish(queue, message)

    def mq_consume(self, queue: str) -> Callable[[], Dict[str, Any]]:
        return lambda: self.mq.consume(queue)

    def mq_consume_with_timeout(
        self, queue: str, timeout_s: float
    ) -> Callable[[], Optional[Dict[str, Any]]]:
        return lambda: self.mq.consume_with_timeout(queue, timeout_s)

    def mq_drain(self, queue: str) -> Callable[[], List[Dict[str, Any]]]:
        return lambda: self.mq.drain(queue)

    # -- broadcast exchange ----------------------------------------------
    def broadcast(
        self, message: Dict[str, Any], exclude: str = ""
    ) -> Callable[[], None]:
        return lambda: self.exchange.publish(message, exclude=exclude)

    def unbind(self, queue: str) -> None:
        self.exchange.unbind(queue)

    # -- execution accounting --------------------------------------------
    def compute(self, cpu_seconds: float) -> Callable[[], None]:
        """No artificial delay: the surrounding numpy arithmetic already
        takes real CPU time here, which is the whole point of this
        backend.  The calibrated estimate is simply discarded."""
        return lambda: None

    def sleep(self, seconds: float) -> Callable[[], None]:
        return lambda: time.sleep(seconds)


class LocalSpawner:
    """Detached machines become daemon threads (GC sweeps)."""

    def spawn(self, machine: Machine, name: str = "") -> None:
        threading.Thread(
            target=drive, args=(machine,), name=name or "detached", daemon=True
        ).start()


class LocalExecutionContext(ExecutionContext):
    """One shared context serves every role — the pieces are thread-safe."""


def _run_role(
    loop_fn: Callable[[ExecutionContext, Dict[str, Any]], Machine],
    ectx: ExecutionContext,
    payload: Dict[str, Any],
    results: Dict[str, Any],
    errors: List[BaseException],
    role: str,
) -> None:
    """Thread target: drive a role, re-entering on relaunch markers."""
    try:
        while True:
            result = drive(loop_fn(ectx, payload))
            if isinstance(result, dict) and result.get("outcome") == "relaunch":
                payload = {**payload, "resume": True}
                continue
            results[role] = result
            return
    except BaseException as error:  # surfaced to the caller after join
        errors.append(error)
        results[role] = {"outcome": "error", "error": repr(error)}


def run_local_job(
    config: Any, max_duration_s: float = 600.0
) -> RunResult:
    """Train one MLLess job for real on local threads.

    The local analogue of the simulator's
    :class:`~repro.core.driver.MLLessDriver` run: stage the dataset,
    declare the channels, run one thread per role, and assemble a
    :class:`~repro.core.history.RunResult` whose ``started_at`` /
    ``finished_at`` are genuine wall-clock seconds (cost is zero — there
    is no billed platform).
    """
    if config.faults is not None and not config.faults.is_noop():
        raise ValueError(
            "the local backend cannot inject faults — fault profiles "
            "sample simulated RNG streams and steer simulated time; "
            "run fault experiments on the sim backend"
        )

    cos = LocalObjectStore()
    kv = LocalKVStore()
    mq = LocalMessageQueue()
    exchange = LocalExchange(mq, "mlless-broadcast")
    clock = LocalClock(max_duration_s=max_duration_s)

    batch_keys = config.dataset.stage(cos, DATA_BUCKET)
    runtime = JobRuntime(
        config=config,
        cos=cos,
        kv=kv,
        mq=mq,
        exchange=exchange,
        bucket=DATA_BUCKET,
        batch_keys=batch_keys,
        partitions=config.dataset.partition(config.n_workers),
        monitor=Monitor(),
    )

    mq.declare(runtime.supervisor_queue)
    for w in range(config.n_workers):
        queue = runtime.worker_queue(w)
        mq.declare(queue)
        exchange.bind(queue)

    if config.pipeline_stages > 1:
        worker_fn, supervisor_fn = pipeline_stage_loop, supervisor_loop
    elif config.sync == "ssp":
        worker_fn, supervisor_fn = ssp_worker_loop, ssp_supervisor_loop
    else:
        worker_fn, supervisor_fn = worker_loop, supervisor_loop
    ectx = LocalExecutionContext(
        services=LocalServices(cos, kv, mq, exchange),
        clock=clock,
        spawner=LocalSpawner(),
    )

    results: Dict[str, Any] = {}
    errors: List[BaseException] = []
    supervisor = threading.Thread(
        target=_run_role,
        args=(supervisor_fn, ectx, {"runtime": runtime}, results, errors,
              "supervisor"),
        name="role-supervisor",
        daemon=True,
    )
    workers = [
        threading.Thread(
            target=_run_role,
            args=(worker_fn, ectx, {"runtime": runtime, "worker_id": w},
                  results, errors, f"worker-{w}"),
            name=f"role-worker-{w}",
            daemon=True,
        )
        for w in range(config.n_workers)
    ]

    started_at = clock.now()
    supervisor.start()
    for thread in workers:
        thread.start()

    job_deadline = Deadline(max_duration_s)
    supervisor.join(timeout=job_deadline.remaining())
    if supervisor.is_alive():
        raise StorageError(
            f"local supervisor did not finish within {max_duration_s:.0f}s"
        )
    # One drain budget shared by *all* worker joins: a field of stuck
    # workers costs 30 s total, not 30 s each.
    drain = Deadline(_WORKER_DRAIN_GRACE_S)
    for thread in workers:
        thread.join(timeout=drain.remaining())
    finished_at = clock.now()

    if errors:
        raise errors[0]

    report = results.get("supervisor") or {}
    stragglers = [t.name for t in workers if t.is_alive()]
    extras = {
        "stop_reason_is_target": float(report.get("converged", False)),
        "workers_drained": float(len(workers) - len(stragglers)),
    }
    return RunResult(
        system="mlless-local",
        monitor=runtime.monitor,
        meter=CostMeter(),
        started_at=started_at,
        finished_at=finished_at,
        converged=bool(report.get("converged")),
        final_loss=report.get("final_loss"),
        total_steps=int(report.get("steps", 0)),
        extras=extras,
    )
