"""Simulation backend: run backend-neutral machines on the DES kernel.

This adapter closes the loop between the plain-Python training machines
in :mod:`repro.core` and the simulated cloud substrate (``Environment``,
``FaaSPlatform``, the simulated COS/KV/MQ services).  It is **bit
identical by construction** to the pre-refactor handlers that yielded
DES events directly:

* every :class:`SimServices` method returns *exactly* the simulated
  service's process generator (``runtime.kv.get(key)`` and friends), and
* :func:`drive` resolves each yielded token with ``yield from`` — the
  same statement the old handlers contained inline,

so the kernel observes the same events, in the same order, drawn from
the same RNG streams, at the same simulated times.  The determinism
oracle (``python -m repro.analysis.determinism``) and the pinned-digest
regression tests in ``tests/exec/`` enforce this.

Exceptions keep their old semantics too: a failure raised by a service
generator (``KeyNotFound``, ``StorageError``, an ``Interrupt`` delivered
mid-wait) is thrown *into* the machine at its current yield, so the
machines' ``try/except StorageError`` recovery blocks and ``finally``
span cleanup behave exactly as when the service call was inlined.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator

from ..core.pipeline import pipeline_stage_loop
from ..core.ssp import ssp_supervisor_loop, ssp_worker_loop
from ..core.supervisor import supervisor_loop
from ..core.worker import worker_loop
from .protocols import ExecutionContext, Machine

__all__ = [
    "SimServices",
    "SimClock",
    "SimSpawner",
    "SimExecutionContext",
    "drive",
    "as_sim_handler",
    "worker_handler",
    "supervisor_handler",
    "ssp_worker_handler",
    "ssp_supervisor_handler",
    "pipeline_stage_handler",
]


def drive(machine: Machine) -> Generator:
    """Process generator: resolve a machine's service calls on the DES.

    Each token the machine yields is a simulation process generator; it
    is exhausted with ``yield from`` and its return value (or exception)
    is fed back into the machine.  The result is a generator with the
    exact event footprint of the pre-refactor monolithic handlers.
    """
    value: Any = None
    pending: Any = None
    while True:
        try:
            if pending is not None:
                error, pending = pending, None
                call = machine.throw(error)
            else:
                call = machine.send(value)
        except StopIteration as stop:
            return stop.value
        try:
            value = yield from call
        except GeneratorExit:
            # The kernel is closing this process: close the machine (its
            # finally blocks run) and let the close propagate.
            machine.close()
            raise
        except BaseException as error:  # delivered into the machine
            value = None
            pending = error


class SimServices:
    """:class:`~repro.exec.protocols.Services` over the simulated cloud.

    Data-plane methods return the simulated services' own process
    generators untouched; there is no wrapping layer that could add
    events, latency samples, or RNG draws.
    """

    __slots__ = ("_ctx", "_runtime")

    def __init__(self, ctx: Any, runtime: Any):
        self._ctx = ctx
        self._runtime = runtime

    # -- object store ----------------------------------------------------
    def cos_get(self, bucket: str, key: str):
        return self._runtime.cos.get(bucket, key)

    # -- KV store --------------------------------------------------------
    def kv_set(self, key: str, value: Any):
        return self._runtime.kv.set(key, value)

    def kv_get(self, key: str):
        return self._runtime.kv.get(key)

    def kv_get_or_none(self, key: str):
        return self._runtime.kv.get_or_none(key)

    def kv_delete(self, key: str):
        return self._runtime.kv.delete(key)

    def kv_exists(self, key: str):
        return self._runtime.kv.exists(key)

    # -- message queue ---------------------------------------------------
    def mq_publish(self, queue: str, message: Dict[str, Any]):
        return self._runtime.mq.publish(queue, message)

    def mq_consume(self, queue: str):
        return self._runtime.mq.consume(queue)

    def mq_consume_with_timeout(self, queue: str, timeout_s: float):
        return self._runtime.mq.consume_with_timeout(queue, timeout_s)

    def mq_drain(self, queue: str):
        return self._runtime.mq.drain(queue)

    # -- broadcast exchange ----------------------------------------------
    def broadcast(self, message: Dict[str, Any], exclude: str = ""):
        return self._runtime.exchange.publish(message, exclude=exclude)

    def unbind(self, queue: str) -> None:
        self._runtime.exchange.unbind(queue)

    # -- execution accounting --------------------------------------------
    def compute(self, cpu_seconds: float):
        """Charge simulated CPU time via the activation (vCPU share,
        straggler scale, compute span — see InvocationContext.compute)."""
        return self._ctx.compute(cpu_seconds)

    def sleep(self, seconds: float):
        return self._ctx.sleep(seconds)


class SimClock:
    """Simulated time + the platform's activation duration cap."""

    __slots__ = ("_ctx",)

    def __init__(self, ctx: Any):
        self._ctx = ctx

    def now(self) -> float:
        return self._ctx.env.now

    def remaining_time(self, started_at: float) -> float:
        return self._ctx.remaining_time(started_at)


class SimSpawner:
    """Detached machines become detached DES processes."""

    __slots__ = ("_env",)

    def __init__(self, env: Any):
        self._env = env

    def spawn(self, machine: Machine, name: str = "") -> None:
        self._env.process(drive(machine), name=name)


class SimExecutionContext(ExecutionContext):
    """Per-activation bundle handed to a machine running in the DES."""

    __slots__ = ("_ctx",)

    def __init__(self, ctx: Any, runtime: Any):
        super().__init__(
            services=SimServices(ctx, runtime),
            clock=SimClock(ctx),
            spawner=SimSpawner(ctx.env),
            tracer=ctx.tracer,
        )
        self._ctx = ctx

    def annotate(self, **attrs: Any) -> None:
        self._ctx.annotate(**attrs)


def as_sim_handler(loop_fn: Callable[[ExecutionContext, Dict[str, Any]], Machine], doc: str = ""):
    """Wrap a backend-neutral machine as a FaaS handler generator function.

    The returned callable satisfies the :class:`repro.faas.FunctionSpec`
    contract — ``handler(ctx, payload) -> Generator`` — by constructing
    the simulation execution context and driving the machine.
    """

    def handler(ctx: Any, payload: Dict[str, Any]) -> Generator:
        return drive(loop_fn(SimExecutionContext(ctx, payload["runtime"]), payload))

    handler.__name__ = getattr(loop_fn, "__name__", "machine") + "_sim_handler"
    handler.__qualname__ = handler.__name__
    handler.__doc__ = doc or f"FaaS handler driving {loop_fn.__name__} on the simulator."
    return handler


#: The paper's four roles as FaaS handlers (registered by the driver).
worker_handler = as_sim_handler(worker_loop, "FaaS handler: the BSP/ISP worker machine.")
supervisor_handler = as_sim_handler(supervisor_loop, "FaaS handler: the barrier supervisor machine.")
ssp_worker_handler = as_sim_handler(ssp_worker_loop, "FaaS handler: the SSP worker machine.")
ssp_supervisor_handler = as_sim_handler(
    ssp_supervisor_loop, "FaaS handler: the SSP supervisor machine."
)
pipeline_stage_handler = as_sim_handler(
    pipeline_stage_loop, "FaaS handler: one pipeline-parallel stage machine."
)
