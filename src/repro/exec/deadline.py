"""Shared wall-clock deadline for host-concurrency backends.

The thread and process backends bound every blocking call so a stuck
peer surfaces as a timeout instead of a hung process (the LOCK103
discipline).  Before this helper each call site recomputed its own
budget, which quietly turned "wait up to 30 s for the workers" into
"wait up to 30 s *per worker*".  A :class:`Deadline` is constructed
once per logical wait and handed to every call site in that wait:
``remaining()`` shrinks monotonically toward zero, so the *total* time
blocked across any number of calls never exceeds the budget.

Wall-clock reads are legal here for the same reason they are legal in
``exec/local.py``: this module is part of the host-concurrency layer
and is deliberately left out of sim-lint's ``simulated-layers``.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Deadline"]


class Deadline:
    """One absolute expiry shared across blocking call sites.

    >>> drain = Deadline(30.0)
    >>> for thread in workers:                      # doctest: +SKIP
    ...     thread.join(timeout=drain.remaining())  # 30 s total, not each

    ``remaining()`` never goes negative — once expired it returns 0.0,
    which every stdlib ``timeout=`` accepts as "poll and give up", so a
    loop over call sites terminates promptly instead of raising.
    """

    __slots__ = ("budget_s", "_clock", "_expires_at")

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_s < 0:
            raise ValueError(f"budget must be >= 0, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self._expires_at = clock() + budget_s

    def remaining(self) -> float:
        """Seconds until expiry, clamped at 0.0 (safe as a ``timeout=``)."""
        left = self._expires_at - self._clock()
        return left if left > 0.0 else 0.0

    def expired(self) -> bool:
        """True once the budget is exhausted."""
        return self._clock() >= self._expires_at
