"""Pluggable execution backends for the backend-neutral training core.

The machines in :mod:`repro.core` yield opaque service-call tokens; a
backend mints the tokens and resolves them:

* :mod:`repro.exec.sim` — the discrete-event simulator (bit-identical to
  driving the DES directly; the default everywhere).
* :mod:`repro.exec.local` — real threads, real queues, in-memory stores,
  wall-clock time.  The repo's first non-simulated execution path.

Only the contract (:mod:`repro.exec.protocols`) is re-exported here; the
backends are imported explicitly (``repro.exec.sim`` / ``repro.exec.local``)
so that importing the contract from :mod:`repro.core` never drags in a
backend and its dependencies.
"""

from .protocols import (
    Clock,
    ExecutionContext,
    FaultSink,
    Machine,
    RecoveryStats,
    ServiceCall,
    Services,
    Spawner,
    TracerLike,
)

__all__ = [
    "ServiceCall",
    "Machine",
    "Services",
    "Clock",
    "Spawner",
    "ExecutionContext",
    "RecoveryStats",
    "FaultSink",
    "TracerLike",
]
