"""The backend contract: what the training core may ask of its substrate.

The worker/supervisor state machines in :mod:`repro.core` are plain
Python generators.  They never touch the DES kernel, real sockets, or
the host clock directly — every interaction with the outside world goes
through the narrow interfaces defined here:

``Services``
    The data plane (object store, KV store, message queue, broadcast
    exchange) plus CPU-time accounting and sleeping.  Each data-plane
    method returns an opaque :class:`ServiceCall` token; the machine
    **yields** the token and receives the operation's result at the same
    ``yield`` expression.  Only the backend that minted a token knows how
    to resolve it (the simulator ``yield from``\\ s a DES generator; the
    local backend invokes a blocking closure), so machines stay
    backend-neutral by construction.

``Clock``
    Synchronous reads of the backend's notion of time: simulated seconds
    under :mod:`repro.exec.sim`, wall-clock seconds under
    :mod:`repro.exec.local`.  Reading a clock never blocks and never
    schedules anything.

``Spawner``
    Fire-and-forget execution of another machine (the supervisor's
    detached garbage-collection sweeps).  A DES process in the
    simulator; a daemon thread in the local backend.

``ExecutionContext``
    The bundle a machine receives: services + clock + spawner + tracer,
    plus the per-activation ``annotate`` hook.

The module also defines the observability protocols the runtime carries
(:class:`TracerLike`, :class:`FaultSink`) so backends type-check against
them instead of duck-typing ``Any``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Protocol, runtime_checkable

__all__ = [
    "ServiceCall",
    "Machine",
    "Services",
    "Clock",
    "Spawner",
    "ExecutionContext",
    "RecoveryStats",
    "FaultSink",
    "TracerLike",
]

#: What a backend-neutral machine yields: an opaque token minted by the
#: backend's :class:`Services`.  The simulator resolves it as a DES
#: generator; the local backend calls it as a blocking closure.
ServiceCall = Any

#: A backend-neutral state machine: yields :data:`ServiceCall` tokens,
#: receives each operation's result at the yield, returns a result dict.
Machine = Generator


class Services(Protocol):
    """The data plane a training machine may use, one method per verb.

    Every method except :meth:`unbind` returns a :data:`ServiceCall` to
    be yielded; results (and service errors) are delivered at the yield
    expression.  ``unbind`` is control-plane metadata and synchronous in
    every backend, so it is a plain call.
    """

    # -- object store (mini-batches) ------------------------------------
    def cos_get(self, bucket: str, key: str) -> ServiceCall: ...

    # -- KV store (updates, checkpoints, replicas) ----------------------
    def kv_set(self, key: str, value: Any) -> ServiceCall: ...

    def kv_get(self, key: str) -> ServiceCall: ...

    def kv_get_or_none(self, key: str) -> ServiceCall: ...

    def kv_delete(self, key: str) -> ServiceCall: ...

    def kv_exists(self, key: str) -> ServiceCall: ...

    # -- message queue (control messages) -------------------------------
    def mq_publish(self, queue: str, message: Dict[str, Any]) -> ServiceCall: ...

    def mq_consume(self, queue: str) -> ServiceCall: ...

    def mq_consume_with_timeout(self, queue: str, timeout_s: float) -> ServiceCall: ...

    def mq_drain(self, queue: str) -> ServiceCall: ...

    # -- broadcast exchange ---------------------------------------------
    def broadcast(self, message: Dict[str, Any], exclude: str = "") -> ServiceCall: ...

    def unbind(self, queue: str) -> None: ...

    # -- execution accounting -------------------------------------------
    def compute(self, cpu_seconds: float) -> ServiceCall: ...

    def sleep(self, seconds: float) -> ServiceCall: ...


class Clock(Protocol):
    """Synchronous time reads; which clock depends on the backend."""

    def now(self) -> float: ...

    def remaining_time(self, started_at: float) -> float:
        """Seconds left before the activation duration cap."""
        ...


class Spawner(Protocol):
    """Detached execution of a machine (GC sweeps, side work)."""

    def spawn(self, machine: Machine, name: str = "") -> None: ...


class RecoveryStats(Protocol):
    """The slice of fault statistics the training core reports into."""

    def note_recovered(self, kind: str) -> None: ...


@runtime_checkable
class FaultSink(Protocol):
    """Where the runtime counts recovery actions (a FaultInjector)."""

    @property
    def stats(self) -> RecoveryStats: ...


class TracerLike(Protocol):
    """The span-tracer surface the core and the backends program against.

    Satisfied structurally by both :class:`repro.trace.Tracer` and the
    no-op :data:`repro.trace.NULL_TRACER`; instrumented paths guard with
    ``if tracer.enabled:`` so the null tracer costs one attribute read.
    """

    enabled: bool

    def bind(self, env: Any) -> "TracerLike": ...

    def begin(self, category: str, name: str, **attrs: Any) -> int: ...

    def end(self, span_id: int, **attrs: Any) -> None: ...

    def event(self, category: str, name: str, **attrs: Any) -> int: ...

    def annotate(self, span_id: int, **attrs: Any) -> None: ...

    def adopt(self, process: Any, span_id: int) -> None: ...

    def current_span_id(self) -> int: ...


class ExecutionContext:
    """What one activation of a training machine gets to work with.

    Concrete backends construct one per role activation and may override
    :meth:`annotate` to attach attributes to their invoke span.
    """

    __slots__ = ("services", "clock", "spawner", "tracer")

    def __init__(
        self,
        services: Services,
        clock: Clock,
        spawner: Spawner,
        tracer: Optional[TracerLike] = None,
    ):
        if tracer is None:
            from ..trace.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.services = services
        self.clock = clock
        self.spawner = spawner
        self.tracer = tracer

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the enclosing activation span (no-op here)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} services={type(self.services).__name__}>"
