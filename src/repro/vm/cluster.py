"""A rented VM cluster: boot, leases, and collectives.

Used by the serverful (PyTorch-like) baseline.  The cluster boots its
instances in parallel (still >1 minute wall time, which the paper's
comparison *excludes* — runs report both with- and without-boot numbers),
opens one :class:`~repro.pricing.VMLease` per instance, and offers an
all-reduce whose wall time comes from :mod:`repro.vm.allreduce`.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..pricing import CostMeter
from ..sim import Environment, RandomStreams
from .allreduce import ring_allreduce_time, tree_allreduce_time
from .instance import VMInstance

__all__ = ["VMCluster"]


class VMCluster:
    """A homogeneous cluster of VM instances with a shared cost meter."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        instance_type: str,
        count: int,
        meter: Optional[CostMeter] = None,
        name: str = "cluster",
        collective: str = "ring",
    ):
        if count < 1:
            raise ValueError(f"cluster needs >= 1 instance, got {count}")
        if collective not in ("ring", "tree"):
            raise ValueError(f"unknown collective {collective!r}")
        self.env = env
        self.name = name
        self.collective = collective
        self.meter = meter if meter is not None else CostMeter()
        self.instances: List[VMInstance] = [
            VMInstance(env, streams, instance_type, name=f"{name}-{i}")
            for i in range(count)
        ]
        self._leases = []
        self.boot_duration: Optional[float] = None

    @property
    def size(self) -> int:
        return len(self.instances)

    @property
    def total_vcpus(self) -> int:
        return sum(vm.vcpus for vm in self.instances)

    def boot(self) -> Generator:
        """Process generator: boot all instances in parallel, open leases."""
        start = self.env.now
        for vm in self.instances:
            self._leases.append(self.meter.lease(vm.itype.name, start))
        boots = [self.env.process(vm.boot()) for vm in self.instances]
        yield self.env.all_of(boots)
        self.boot_duration = self.env.now - start

    def shutdown(self) -> None:
        """Close every lease at the current time (no boot-down latency)."""
        for lease in self._leases:
            if lease.end is None:
                self.meter.release(lease, self.env.now)

    def allreduce(self, size_bytes: float) -> Generator:
        """Process generator: one all-reduce of ``size_bytes`` per node."""
        bandwidth = self.instances[0].itype.nic_bps
        if self.collective == "ring":
            wall = ring_allreduce_time(size_bytes, self.size, bandwidth)
        else:
            wall = tree_allreduce_time(size_bytes, self.size, bandwidth)
        yield self.env.timeout(wall)

    def __repr__(self) -> str:
        itype = self.instances[0].itype.name
        return f"<VMCluster {self.name!r} {self.size}x{itype}>"
