"""Simulated IaaS substrate: VM instances, clusters and collectives."""

from .allreduce import broadcast_time, ring_allreduce_time, tree_allreduce_time
from .cluster import VMCluster
from .instance import VMInstance

__all__ = [
    "VMInstance",
    "VMCluster",
    "ring_allreduce_time",
    "tree_allreduce_time",
    "broadcast_time",
]
