"""Simulated VM instances.

A :class:`VMInstance` couples an :class:`~repro.pricing.InstanceType`
(shape + price) with a NIC, a boot process, and a compute-charging helper
analogous to the FaaS :meth:`InvocationContext.compute`, except that a VM
can use all of its vCPUs (this is where the serverful baseline's
MKL/OpenMP multi-threading advantage lives).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..net import Nic
from ..pricing import InstanceType, PRICING
from ..sim import Environment, RandomStreams

__all__ = ["VMInstance"]

#: median boot time of one VM, seconds; the paper notes a 6-VM cluster
#: takes over a minute to come up.
DEFAULT_BOOT_MEDIAN_S = 75.0
DEFAULT_BOOT_SIGMA = 0.15


class VMInstance:
    """One rented VM: NIC, boot latency, multi-core compute."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        instance_type: str,
        name: str,
        boot_median_s: float = DEFAULT_BOOT_MEDIAN_S,
    ):
        if instance_type not in PRICING:
            raise KeyError(f"unknown instance type {instance_type!r}")
        self.env = env
        self.name = name
        self.itype: InstanceType = PRICING[instance_type]
        self.nic = Nic(env, self.itype.nic_bps, host=name)
        self._rng: np.random.Generator = streams.stream(f"vm.{name}")
        self._boot_median_s = boot_median_s
        self.booted_at: Optional[float] = None

    @property
    def vcpus(self) -> int:
        return self.itype.vcpus

    @property
    def is_up(self) -> bool:
        return self.booted_at is not None and self.env.now >= self.booted_at

    def boot(self) -> Generator:
        """Process generator: provision + OS boot."""
        delay = float(
            self._rng.lognormal(np.log(self._boot_median_s), DEFAULT_BOOT_SIGMA)
        )
        yield self.env.timeout(delay)
        self.booted_at = self.env.now

    def compute(self, cpu_seconds: float, threads: Optional[int] = None,
                parallel_efficiency: float = 0.85) -> Generator:
        """Charge ``cpu_seconds`` of single-core work across ``threads`` cores.

        ``parallel_efficiency`` discounts the ideal speedup (synchronization,
        memory bandwidth); with the default 0.85, 4 threads give ~3.4x.
        """
        if cpu_seconds < 0:
            raise ValueError(f"cpu_seconds must be >= 0, got {cpu_seconds}")
        threads = self.vcpus if threads is None else min(threads, self.vcpus)
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        speedup = 1.0 if threads == 1 else threads * parallel_efficiency
        yield self.env.timeout(cpu_seconds / speedup)

    def __repr__(self) -> str:
        state = "up" if self.is_up else "down"
        return f"<VMInstance {self.name!r} {self.itype.name} {state}>"
