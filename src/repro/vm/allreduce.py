"""Collective-communication timing models (Gloo stand-in).

The serverful baseline exchanges gradients with **ring all-reduce**: each
of P nodes sends/receives ``2 (P-1)/P`` of the buffer, in ``2 (P-1)``
latency-bound phases.  A tree all-reduce is included for completeness and
for the ablation comparing collective choices.

These functions return *wall time* for one collective; the actual numeric
reduction is done by the caller in numpy (the simulated cost and the real
arithmetic are deliberately decoupled — see DESIGN.md).
"""

from __future__ import annotations

import math

__all__ = ["ring_allreduce_time", "tree_allreduce_time", "broadcast_time"]


def _check(size_bytes: float, nodes: int, bandwidth_bps: float, latency_s: float):
    if size_bytes < 0:
        raise ValueError(f"size must be >= 0, got {size_bytes}")
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be > 0, got {bandwidth_bps}")
    if latency_s < 0:
        raise ValueError(f"latency must be >= 0, got {latency_s}")


def ring_allreduce_time(
    size_bytes: float,
    nodes: int,
    bandwidth_bps: float,
    latency_s: float = 50e-6,
) -> float:
    """Wall time of a bandwidth-optimal ring all-reduce.

    Classic cost model: ``2 (P-1) (alpha + S/(P B))`` — two rounds
    (reduce-scatter + all-gather) of P-1 steps each moving S/P bytes at
    per-link bandwidth B with per-step latency alpha.
    """
    _check(size_bytes, nodes, bandwidth_bps, latency_s)
    if nodes == 1:
        return 0.0
    steps = 2 * (nodes - 1)
    per_step_bytes = size_bytes / nodes
    per_step_time = latency_s + (per_step_bytes * 8.0) / bandwidth_bps
    return steps * per_step_time


def tree_allreduce_time(
    size_bytes: float,
    nodes: int,
    bandwidth_bps: float,
    latency_s: float = 50e-6,
) -> float:
    """Wall time of a binary-tree reduce + broadcast.

    Latency-optimal (``O(log P)`` steps) but each step moves the whole
    buffer: ``2 ceil(log2 P) (alpha + S/B)``.
    """
    _check(size_bytes, nodes, bandwidth_bps, latency_s)
    if nodes == 1:
        return 0.0
    steps = 2 * math.ceil(math.log2(nodes))
    per_step_time = latency_s + (size_bytes * 8.0) / bandwidth_bps
    return steps * per_step_time


def broadcast_time(
    size_bytes: float,
    nodes: int,
    bandwidth_bps: float,
    latency_s: float = 50e-6,
) -> float:
    """Wall time of a binomial-tree broadcast from one root."""
    _check(size_bytes, nodes, bandwidth_bps, latency_s)
    if nodes == 1:
        return 0.0
    steps = math.ceil(math.log2(nodes))
    per_step_time = latency_s + (size_bytes * 8.0) / bandwidth_bps
    return steps * per_step_time
