"""Scenario text <-> spec: parse TOML/JSON text, dump specs back out.

This module is pure — it maps *text* to :class:`ScenarioSpec` and back.
Reading files off disk is host I/O and lives in
:mod:`repro.scenarios.cli` (the same split as ``repro.trace`` /
``repro.trace_cli``).

TOML parsing follows the repo's no-new-dependencies rule: Python 3.11+
uses :mod:`tomllib`; 3.9/3.10 fall back to the same line-oriented subset
parser sim-lint's config uses (:func:`repro.analysis.config.parse_toml_subset`),
which this PR extends to numeric array items so scenario ranges like
``crash_window_s = [0.5, 15.0]`` parse identically on every supported
interpreter.

Every parse or validation error surfaces as a :class:`SpecError` whose
message is prefixed with the origin, e.g.::

    scenarios/fault_storm.toml: faults.crash_rate must be >= 0, got -0.2
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..analysis.config import parse_toml_subset
from .spec import ScenarioSpec, SpecError, spec_from_dict

__all__ = [
    "load_spec_text",
    "dump_spec_toml",
    "dump_spec_json",
    "detect_format",
]


def detect_format(origin: str) -> str:
    """``"json"`` for ``*.json`` origins, ``"toml"`` otherwise."""
    return "json" if origin.lower().endswith(".json") else "toml"


def _parse_toml(text: str) -> Dict[str, Any]:
    try:
        import tomllib  # Python >= 3.11
    except ImportError:
        return parse_toml_subset(text)
    return tomllib.loads(text)


def load_spec_text(text: str, origin: str = "<spec>", fmt: str = None) -> ScenarioSpec:
    """Parse spec text into a validated :class:`ScenarioSpec`.

    ``origin`` (a file name or label) prefixes every error message;
    ``fmt`` is ``"toml"``/``"json"``, defaulting to the origin's
    extension (TOML when in doubt).
    """
    fmt = fmt if fmt is not None else detect_format(origin)
    if fmt not in ("toml", "json"):
        raise SpecError(origin, f"unknown spec format {fmt!r} (toml or json)")
    try:
        if fmt == "json":
            data = json.loads(text)
        else:
            data = _parse_toml(text)
    except SpecError:
        raise
    except Exception as exc:  # tomllib.TOMLDecodeError / json.JSONDecodeError
        raise SpecError(origin, f"unparseable {fmt}: {exc}") from exc
    try:
        return spec_from_dict(data)
    except SpecError as exc:
        # Re-raise with the file origin prefixed, preserving the dotted
        # key path: "fault_storm.toml: faults.crash_rate must be >= 0".
        raise SpecError(origin, str(exc)) from None


# -- dumping ----------------------------------------------------------------


def dump_spec_json(spec: ScenarioSpec) -> str:
    """The spec as pretty-printed JSON (parses back via ``fmt="json"``)."""
    return json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"


def dump_spec_toml(spec: ScenarioSpec) -> str:
    """The spec as TOML text (parses back to an equal spec).

    Emits only the subset the loader understands: ``[section]`` headers
    with string/bool/number/array-of-number values — which is exactly
    what :meth:`ScenarioSpec.to_dict` produces.
    """
    lines: List[str] = []
    data = spec.to_dict()
    for section in data:  # to_dict() orders sections canonically
        table = data[section]
        if lines:
            lines.append("")
        lines.append(f"[{section}]")
        for key, value in table.items():
            lines.append(f"{key} = {_toml_value(value, f'{section}.{key}')}")
    return "\n".join(lines) + "\n"


def _toml_value(value: Any, path: str) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr round-trips and is valid TOML for finite floats; the spec
        # layer never produces inf/nan (all fields are range-checked).
        return repr(value)
    if isinstance(value, str):
        if '"' in value or "\n" in value or "\\" in value:
            raise SpecError(path, f"string not representable in TOML: {value!r}")
        return f'"{value}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v, path) for v in value) + "]"
    raise SpecError(path, f"unsupported value type {type(value).__name__}")
