"""``python -m repro.scenarios`` — list, validate and run scenarios.

This is the package's host-I/O module (the ``trace_cli`` split): it
reads template/spec files, writes KPI reports, and prints — everything
the pure spec/compiler layers are forbidden to do.

Subcommands::

    python -m repro.scenarios list
    python -m repro.scenarios validate fault-storm
    python -m repro.scenarios validate path/to/my_scenario.toml
    python -m repro.scenarios run fault-storm --report out.json
    python -m repro.scenarios run rightsize-sweep --seed 7
    python -m repro.scenarios run diurnal-multi-tenant --rerun-check

(also reachable as ``repro.cli scenario ...``, matching the
``repro.bench platform`` forwarding pattern).

Exit codes: 0 success; 2 spec/usage error; 3 budget violation;
4 digest instability under ``--rerun-check``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .compiler import run_scenario_spec
from .kpi import ReconciliationError, summary_lines
from .loader import load_spec_text
from .spec import ScenarioSpec, SpecError

__all__ = ["build_parser", "main", "template_dir", "list_templates",
           "load_template"]


def template_dir() -> Path:
    """The committed template library shipped inside the package."""
    return Path(__file__).resolve().parent / "templates"


def list_templates() -> List[Tuple[str, Path]]:
    """``(name, path)`` for every committed template, sorted by name."""
    out = []
    for path in sorted(template_dir().glob("*.toml")):
        out.append((path.stem.replace("_", "-"), path))
    return out


def _resolve(ref: str) -> Path:
    """Map a template name or a filesystem path to a spec file."""
    for name, path in list_templates():
        if ref == name:
            return path
    candidate = Path(ref)
    if candidate.is_file():
        return candidate
    known = ", ".join(name for name, _ in list_templates())
    raise SpecError(
        ref, f"no such template or spec file (templates: {known})"
    )


def load_template(ref: str) -> ScenarioSpec:
    """Load a scenario by template name or file path."""
    path = _resolve(ref)
    return load_spec_text(path.read_text(encoding="utf-8"), origin=path.name)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Declarative scenario engine: run replayable "
        "workload/backend/fault/traffic/pricing scenarios from TOML or "
        "JSON specs and emit digest-gated KPI reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the committed scenario templates")

    validate = sub.add_parser(
        "validate", help="parse and validate a spec without running it"
    )
    validate.add_argument("scenario", help="template name or spec file path")

    run = sub.add_parser("run", help="run a scenario end-to-end")
    run.add_argument("scenario", help="template name or spec file path")
    run.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the full KPI report JSON to PATH",
    )
    run.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's seed",
    )
    run.add_argument(
        "--rerun-check", action="store_true",
        help="run the scenario twice and fail (exit 4) unless the KPI "
        "digests match — the determinism gate CI applies to every "
        "committed template",
    )
    return parser


def _cmd_list() -> int:
    rows = []
    for name, path in list_templates():
        try:
            spec = load_spec_text(path.read_text(encoding="utf-8"),
                                  origin=path.name)
        except SpecError as exc:
            rows.append((name, "INVALID", str(exc)))
            continue
        rows.append((name, spec.kind, spec.description or "-"))
    if not rows:
        print("no committed templates found")
        return 0
    width = max(len(name) for name, _, _ in rows)
    kind_width = max(len(kind) for _, kind, _ in rows)
    for name, kind, description in rows:
        print(f"{name:<{width}}  {kind:<{kind_width}}  {description}")
    return 0


def _cmd_validate(ref: str) -> int:
    spec = load_template(ref)
    sections = [key for key, value in spec.to_dict().items() if value]
    print(
        f"OK: {spec.name} [{spec.kind}] seed={spec.seed} "
        f"sections: {', '.join(sections)}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_template(args.scenario)
    progress = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    payload = run_scenario_spec(spec, seed=args.seed, progress=progress)
    if args.rerun_check:
        if not payload["deterministic"]:
            print(
                f"error: --rerun-check needs a deterministic scenario; "
                f"{spec.name!r} runs on a wall-clock backend",
                file=sys.stderr,
            )
            return 2
        again = run_scenario_spec(spec, seed=args.seed, progress=progress)
        if again["digest"] != payload["digest"]:
            print(
                f"DIGEST INSTABILITY: {payload['digest']} != {again['digest']} "
                "— the scenario is not seed-deterministic",
                file=sys.stderr,
            )
            return 4
        print(f"digest stable across reruns: {payload['digest'][:16]}")
    for line in summary_lines(payload):
        print(line)
    if args.report is not None:
        report_path = Path(args.report)
        if report_path.parent and not report_path.parent.exists():
            report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"report written to {report_path}")
    return 0 if payload["budget"]["ok"] else 3


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "validate":
            return _cmd_validate(args.scenario)
        return _cmd_run(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReconciliationError as exc:
        print(f"reconciliation failure: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # `repro scenario list | head` closes our stdout early; that is
        # the reader's choice, not an error worth a traceback.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
