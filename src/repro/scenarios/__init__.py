"""Declarative scenario engine: spec -> compile -> run -> KPI report.

The front door that makes every subsystem in this repo — execution
backends, fault injection, tracing, the multi-tenant platform, pricing —
demonstrable and regression-testable from one command.  A scenario
(workload + backend + fault profile + traffic pattern + pricing table +
run budget) is a declarative, replayable artifact: a TOML/JSON file
validated into frozen dataclasses (:mod:`repro.scenarios.spec`), lowered
onto the existing seams (:mod:`repro.scenarios.compiler` →
``repro.exec`` backends for single jobs, ``repro.platform`` for
multi-tenant runs), and reported as one KPI JSON document with a
deterministic digest (:mod:`repro.scenarios.kpi`) so committed templates
are regression-gated like benchmarks.

Quickstart::

    python -m repro.scenarios list
    python -m repro.scenarios run fault-storm --report out.json
    python -m repro.cli scenario run diurnal-multi-tenant

Everything except :mod:`repro.scenarios.cli` is pure (no host I/O, no
wall clock) and registered as a sim-lint simulated layer.
"""

from .compiler import KPI_SCHEMA, run_scenario_spec
from .kpi import (
    ReconciliationError,
    evaluate_budget,
    finalize_report,
    kpi_digest,
    reconcile_platform,
    reconcile_single_job,
    summary_lines,
)
from .loader import dump_spec_json, dump_spec_toml, load_spec_text
from .spec import (
    BudgetSpec,
    FaultSpec,
    JobMixSpec,
    PoolSpec,
    PricingSpec,
    ReportSpec,
    ScenarioSpec,
    SpecError,
    SweepSpec,
    TrafficSpec,
    WorkloadSpec,
    spec_from_dict,
)

__all__ = [
    "KPI_SCHEMA",
    "run_scenario_spec",
    "ReconciliationError",
    "evaluate_budget",
    "finalize_report",
    "kpi_digest",
    "reconcile_platform",
    "reconcile_single_job",
    "summary_lines",
    "dump_spec_json",
    "dump_spec_toml",
    "load_spec_text",
    "BudgetSpec",
    "FaultSpec",
    "JobMixSpec",
    "PoolSpec",
    "PricingSpec",
    "ReportSpec",
    "ScenarioSpec",
    "SpecError",
    "SweepSpec",
    "TrafficSpec",
    "WorkloadSpec",
    "spec_from_dict",
]
