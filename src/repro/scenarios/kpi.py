"""KPI reports: one JSON document per scenario run, digest-gated.

Every scenario run — single-job or platform — produces one JSON-ready
payload with the headline numbers the paper cares about (cost, execution
time, time-to-loss, recovery counts, queue-wait percentiles, critical
path) plus a **reconciliation block that is checked, not just printed**:

* platform runs call :meth:`TenantInvoices <repro.platform.billing.InvoiceReport>`
  ``.reconcile()`` and fail with :class:`ReconciliationError` unless the
  per-tenant invoices plus the visible unattributed residue reproduce
  ``FaaSBilling.total_cost()`` exactly (and, in strict mode, unless the
  residue is zero — 100% of billed cost lands on an invoice);
* single-job runs recompute the meter's component breakdown and compare
  the functions line against ``FaaSBilling.total_cost()`` and the sum of
  components against the meter total; traced runs additionally check the
  span-derived :class:`~repro.trace.CostLedger` against the same bill.

The payload's ``digest`` is a sha256 over its canonical JSON encoding
(sorted keys, no whitespace, ``digest`` itself excluded), so two runs of
a deterministic scenario at the same seed must produce byte-identical
digests — the property CI gates for every committed template.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

__all__ = [
    "ReconciliationError",
    "COST_ABS_TOL",
    "reconcile_single_job",
    "reconcile_platform",
    "kpi_digest",
    "finalize_report",
    "evaluate_budget",
    "summary_lines",
]

#: dollars; bills in this repo are exact sums of per-record products, so
#: any drift beyond float addition noise is an accounting bug
COST_ABS_TOL = 1e-9


class ReconciliationError(RuntimeError):
    """The KPI report's cost lines do not reproduce the actual bill."""


def _close(a: float, b: float, tol: float = COST_ABS_TOL) -> bool:
    return abs(a - b) <= tol + tol * max(abs(a), abs(b))


def reconcile_single_job(result, tracer=None) -> Dict[str, float]:
    """Cross-check a :class:`~repro.core.RunResult`'s cost accounting.

    Raises :class:`ReconciliationError` when the component breakdown does
    not sum to the meter total, when the functions component disagrees
    with ``FaaSBilling.total_cost()``, or (traced runs) when the span
    ledger fails to attribute the bill.  Returns the reconciliation
    block for the report.
    """
    meter = result.meter
    total = meter.total_cost()
    breakdown = meter.breakdown()
    component_sum = 0.0
    for name in sorted(breakdown):
        component_sum += breakdown[name]
    if not _close(component_sum, total):
        raise ReconciliationError(
            f"cost breakdown sums to ${component_sum:.9f} but the meter "
            f"total is ${total:.9f} (drift ${abs(component_sum - total):.3g}) "
            "— a component is billed twice or not at all"
        )
    out: Dict[str, float] = {
        "meter_total_usd": total,
        "component_sum_usd": component_sum,
        "abs_error_usd": abs(component_sum - total),
    }
    if meter.faas is not None:
        faas_total = meter.faas.total_cost()
        functions = breakdown.get("functions", 0.0)
        if not _close(functions, faas_total):
            raise ReconciliationError(
                f"report shows ${functions:.9f} of function cost but "
                f"FaaSBilling.total_cost() is ${faas_total:.9f} — the KPI "
                "report would under/over-state the serverless bill"
            )
        out["faas_total_usd"] = faas_total
    if tracer is not None and meter.faas is not None:
        from ..trace import CostLedger

        ledger = CostLedger.from_trace(tracer, meter.faas)
        check = ledger.reconcile()
        if not _close(check["ledger_row_cost"], check["billing_total_cost"]):
            raise ReconciliationError(
                "span-ledger rows sum to "
                f"${check['ledger_row_cost']:.9f} but the bill is "
                f"${check['billing_total_cost']:.9f}"
            )
        out["ledger_attributed_fraction"] = check["attributed_fraction"]
    return out


def reconcile_platform(report, strict: bool = True) -> Dict[str, float]:
    """Run ``InvoiceReport.reconcile()`` and *enforce* its identities.

    ``strict`` additionally requires a zero unattributed residue — every
    billed activation claimed by exactly one tenant invoice (the
    acceptance bar for committed templates).
    """
    check = report.reconcile()
    if not _close(
        check["invoiced_active_cost"] + check["unattributed_cost"],
        check["billing_total_cost"],
    ):
        raise ReconciliationError(
            f"tenant invoices (${check['invoiced_active_cost']:.9f}) plus "
            f"unattributed residue (${check['unattributed_cost']:.9f}) do not "
            f"reproduce the cloud bill (${check['billing_total_cost']:.9f})"
        )
    if strict and check["unattributed_cost"] > COST_ABS_TOL:
        raise ReconciliationError(
            f"${check['unattributed_cost']:.9f} of billed cost is "
            "unattributed — the owner map failed to claim every activation "
            f"(attributed fraction {check['attributed_fraction']:.6f})"
        )
    return check


# -- digests & payload ------------------------------------------------------


def kpi_digest(payload: Dict[str, Any]) -> str:
    """sha256 of the canonical JSON encoding, ``digest`` key excluded."""
    body = {key: payload[key] for key in payload if key != "digest"}
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":"),
                         allow_nan=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def finalize_report(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp the payload with its digest (idempotent)."""
    payload["digest"] = kpi_digest(payload)
    return payload


# -- budgets ----------------------------------------------------------------


def evaluate_budget(budget, kpis: Dict[str, Any]) -> Dict[str, Any]:
    """Check headline KPIs against the spec's ``[budget]`` ceilings.

    Returns ``{"ok": bool, "violations": [...]}``; the CLI turns a
    non-empty violation list into exit code 3.
    """
    violations: List[str] = []

    def over(limit: Optional[float], key: str, label: str) -> None:
        value = kpis.get(key)
        if limit is not None and value is not None and value > limit:
            violations.append(f"{label} {value:.6g} exceeds budget {limit:.6g}")

    over(budget.max_cost_usd, "total_cost_usd", "total cost ($)")
    over(budget.max_exec_time_s, "exec_time_s", "execution time (s)")
    over(budget.max_exec_time_s, "makespan_s", "makespan (s)")
    over(budget.max_queue_wait_p95_s, "queue_wait_p95_s", "p95 queue wait (s)")
    if budget.require_converged and not kpis.get("converged", False):
        violations.append("run did not converge but the budget requires it")
    return {"ok": not violations, "violations": violations}


# -- human-readable summary -------------------------------------------------


def summary_lines(payload: Dict[str, Any]) -> List[str]:
    """Terse per-run summary for the CLI (pure string building)."""
    kpis = payload.get("kpis", {})
    lines = [
        f"scenario {payload.get('name')} [{payload.get('kind')}] "
        f"seed={payload.get('seed')}"
    ]
    if payload.get("kind") == "platform":
        lines.append(
            f"  jobs={kpis.get('jobs', 0):.0f} "
            f"jobs/hour={kpis.get('jobs_per_hour', 0):.1f} "
            f"p95 wait={kpis.get('queue_wait_p95_s', 0):.2f}s"
        )
        lines.append(
            f"  total cost=${kpis.get('total_cost_usd', 0):.6f} "
            f"cost/job=${kpis.get('cost_per_job_usd', 0):.6f} "
            f"cold fraction={kpis.get('cold_fraction', 0):.3f}"
        )
        if "isolated_savings_pct" in kpis:
            lines.append(
                f"  vs per-job isolation: {kpis['isolated_savings_pct']:.1f}% cheaper"
            )
    else:
        lines.append(
            f"  runs={len(payload.get('runs', []))} "
            f"exec time={kpis.get('exec_time_s', 0):.2f}s "
            f"cost=${kpis.get('total_cost_usd', 0):.6f} "
            f"converged={kpis.get('converged')}"
        )
        if kpis.get("faults_injected"):
            lines.append(
                f"  faults injected={kpis['faults_injected']:.0f} "
                f"recovered={kpis.get('faults_recovered', 0):.0f}"
            )
        rec = payload.get("recommendation")
        if rec:
            lines.append(
                f"  recommended config: workers={rec['workers']} "
                f"isp_threshold={rec['isp_threshold']} "
                f"(${rec['total_cost_usd']:.6f}, {rec['exec_time_s']:.2f}s)"
            )
    budget = payload.get("budget", {})
    for violation in budget.get("violations", []):
        lines.append(f"  BUDGET VIOLATION: {violation}")
    lines.append(f"  digest={payload.get('digest', '')[:16]} "
                 f"deterministic={payload.get('deterministic')}")
    return lines
