"""Validated scenario specifications: the declarative front door.

A :class:`ScenarioSpec` captures everything that defines one experiment
— workload, execution backend, fault profile, traffic pattern, pricing
table and run budget — as frozen dataclasses built from a plain nested
dict (itself parsed from TOML or JSON by :mod:`repro.scenarios.loader`).
Validation is strict and path-precise: unknown keys, wrong types and
out-of-range values all raise :class:`SpecError` whose message names the
exact dotted key (``faults.crash_rate must be >= 0``), so a template
author is never left grepping a traceback.

Two scenario kinds exist:

* ``single-job`` — one MLLess training job (optionally swept over
  worker counts and ISP thresholds) on any execution backend, lowered
  onto :func:`repro.experiments.common.run_mlless`;
* ``platform`` — a multi-tenant run (arrivals, fair-share scheduler,
  shared pool, per-tenant invoices) lowered onto
  :func:`repro.platform.scenario.run_scenario`.

Specs are pure data with a lossless ``to_dict``/``from_dict`` round
trip; nothing here touches the filesystem or the clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..experiments.settings import WORKLOADS
from ..faults import FAULT_PROFILES, FaultProfile

__all__ = [
    "SpecError",
    "WorkloadSpec",
    "SweepSpec",
    "FaultSpec",
    "TrafficSpec",
    "JobMixSpec",
    "PoolSpec",
    "PricingSpec",
    "BudgetSpec",
    "ReportSpec",
    "ScenarioSpec",
    "spec_from_dict",
    "KINDS",
    "BACKENDS",
    "WORKLOAD_KINDS",
    "SYNC_MODES",
]

KINDS = ("single-job", "platform")
BACKENDS = ("sim", "local", "procs")
WORKLOAD_KINDS = ("data-parallel", "mlp-pipeline")
SYNC_MODES = ("bsp", "ssp", "adaptive")

#: hard cap on sweep grids so a typo cannot schedule a thousand runs
MAX_SWEEP_COMBOS = 64


class SpecError(ValueError):
    """A scenario spec failed validation.

    ``path`` is the dotted key that failed (``faults.crash_rate``);
    loaders prefix the message with the file origin so the final text
    reads ``scenarios/fault_storm.toml: faults.crash_rate must be >= 0``.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


# -- typed section reader ---------------------------------------------------


class _Reader:
    """Pulls typed keys out of one section dict, tracking leftovers."""

    def __init__(self, data: Dict[str, Any], path: str):
        if not isinstance(data, dict):
            raise SpecError(path, f"must be a table/object, got {type(data).__name__}")
        self._data = dict(data)
        self._path = path
        self._known: List[str] = []

    def _key_path(self, key: str) -> str:
        return f"{self._path}.{key}" if self._path else key

    def _take(self, key: str, default):
        self._known.append(key)
        if key not in self._data:
            if default is _REQUIRED:
                raise SpecError(self._key_path(key), "is required")
            return default
        return self._data.pop(key)

    def take_str(self, key: str, default=None, choices: Optional[Tuple[str, ...]] = None):
        value = self._take(key, default)
        if value is None:
            return None
        if not isinstance(value, str):
            raise SpecError(
                self._key_path(key),
                f"must be a string, got {value!r}",
            )
        if choices is not None and value not in choices:
            raise SpecError(
                self._key_path(key),
                f"must be one of {sorted(choices)}, got {value!r}",
            )
        return value

    def take_bool(self, key: str, default=False):
        value = self._take(key, default)
        if not isinstance(value, bool):
            raise SpecError(
                self._key_path(key), f"must be true or false, got {value!r}"
            )
        return value

    def take_int(self, key: str, default=None, minimum: Optional[int] = None):
        value = self._take(key, default)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(
                self._key_path(key), f"must be an integer, got {value!r}"
            )
        if minimum is not None and value < minimum:
            raise SpecError(
                self._key_path(key), f"must be >= {minimum}, got {value}"
            )
        return value

    def take_float(
        self,
        key: str,
        default=None,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ):
        value = self._take(key, default)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(
                self._key_path(key), f"must be a number, got {value!r}"
            )
        value = float(value)
        if minimum is not None and value < minimum:
            raise SpecError(
                self._key_path(key), f"must be >= {minimum}, got {value}"
            )
        if maximum is not None and value > maximum:
            raise SpecError(
                self._key_path(key), f"must be <= {maximum}, got {value}"
            )
        return value

    def take_pair(self, key: str, default=None, minimum: float = 0.0):
        """A 2-element ``[lo, hi]`` numeric range with ``lo <= hi``."""
        value = self._take(key, default)
        if value is None or isinstance(value, tuple):
            return value
        if not isinstance(value, list) or len(value) != 2 or any(
            isinstance(x, bool) or not isinstance(x, (int, float)) for x in value
        ):
            raise SpecError(
                self._key_path(key),
                f"must be a 2-element [lo, hi] number list, got {value!r}",
            )
        lo, hi = float(value[0]), float(value[1])
        if lo > hi:
            raise SpecError(
                self._key_path(key), f"must satisfy lo <= hi, got {value!r}"
            )
        if lo < minimum:
            raise SpecError(
                self._key_path(key), f"must be >= {minimum}, got {value!r}"
            )
        return (lo, hi)

    def take_int_list(self, key: str, default=None, minimum: Optional[int] = None):
        value = self._take(key, default)
        if value is None or isinstance(value, tuple):
            return value
        if not isinstance(value, list) or not value:
            raise SpecError(
                self._key_path(key),
                f"must be a non-empty list of integers, got {value!r}",
            )
        out = []
        for item in value:
            if isinstance(item, bool) or not isinstance(item, int):
                raise SpecError(
                    self._key_path(key),
                    f"must contain only integers, got {item!r}",
                )
            if minimum is not None and item < minimum:
                raise SpecError(
                    self._key_path(key),
                    f"items must be >= {minimum}, got {item}",
                )
            out.append(item)
        return tuple(out)

    def take_float_list(self, key: str, default=None, minimum: Optional[float] = None):
        value = self._take(key, default)
        if value is None or isinstance(value, tuple):
            return value
        if not isinstance(value, list) or not value:
            raise SpecError(
                self._key_path(key),
                f"must be a non-empty list of numbers, got {value!r}",
            )
        out = []
        for item in value:
            if isinstance(item, bool) or not isinstance(item, (int, float)):
                raise SpecError(
                    self._key_path(key),
                    f"must contain only numbers, got {item!r}",
                )
            if minimum is not None and item < minimum:
                raise SpecError(
                    self._key_path(key),
                    f"items must be >= {minimum}, got {item}",
                )
            out.append(float(item))
        return tuple(out)

    def finish(self) -> None:
        """Reject unknown keys, naming what would have been accepted."""
        if self._data:
            unknown = sorted(self._data)[0]
            raise SpecError(
                self._key_path(unknown),
                f"unknown key (expected one of {sorted(self._known)})",
            )


_REQUIRED = object()


# -- section dataclasses ----------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One MLLess training job (the ``[workload]`` section)."""

    name: str
    workers: int = 4
    backend: str = "sim"
    #: "data-parallel" (the default) or "mlp-pipeline" (model-parallel
    #: stage functions; requires a stageable workload)
    kind: str = "data-parallel"
    #: synchronization policy: "bsp", "ssp" or "adaptive" (SMLT-style
    #: mid-job switching)
    sync: str = "bsp"
    #: ISP significance threshold v (0 = plain BSP)
    isp_threshold: float = 0.0
    autotune: bool = False
    max_steps: int = 100
    #: None = the workload's published target
    target_loss: Optional[float] = None
    #: mlp-pipeline only: stage count (must equal ``workers``)
    stages: int = 1
    #: mlp-pipeline only: micro-batches kept in flight per step
    micro_batches: int = 1

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "workload") -> "WorkloadSpec":
        reader = _Reader(data, path)
        name = reader.take_str("name", _REQUIRED, choices=tuple(WORKLOADS))
        spec = cls(
            name=name,
            workers=reader.take_int("workers", 4, minimum=1),
            backend=reader.take_str("backend", "sim", choices=BACKENDS),
            kind=reader.take_str("kind", "data-parallel", choices=WORKLOAD_KINDS),
            sync=reader.take_str("sync", "bsp", choices=SYNC_MODES),
            isp_threshold=reader.take_float("isp_threshold", 0.0, minimum=0.0),
            autotune=reader.take_bool("autotune", False),
            max_steps=reader.take_int("max_steps", 100, minimum=1),
            target_loss=reader.take_float("target_loss", None, minimum=0.0),
            stages=reader.take_int("stages", 1, minimum=1),
            micro_batches=reader.take_int("micro_batches", 1, minimum=1),
        )
        reader.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "workers": self.workers,
            "backend": self.backend,
            "kind": self.kind,
            "sync": self.sync,
            "isp_threshold": self.isp_threshold,
            "autotune": self.autotune,
            "max_steps": self.max_steps,
        }
        if self.target_loss is not None:
            out["target_loss"] = self.target_loss
        if self.kind == "mlp-pipeline":
            out["stages"] = self.stages
            out["micro_batches"] = self.micro_batches
        return out


@dataclass(frozen=True)
class SweepSpec:
    """Config grid for single-job right-sizing sweeps (``[sweep]``)."""

    workers: Tuple[int, ...] = ()
    isp_threshold: Tuple[float, ...] = ()
    #: recommendation picks the cheapest combo within this factor of the
    #: fastest combo's exec time (the ROADMAP's "1.2x of fastest" rule)
    speed_tolerance: float = 1.2

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "sweep") -> "SweepSpec":
        reader = _Reader(data, path)
        spec = cls(
            workers=reader.take_int_list("workers", (), minimum=1) or (),
            isp_threshold=reader.take_float_list("isp_threshold", (), minimum=0.0)
            or (),
            speed_tolerance=reader.take_float("speed_tolerance", 1.2, minimum=1.0),
        )
        reader.finish()
        if not spec.workers and not spec.isp_threshold:
            raise SpecError(
                path, "must set at least one of 'workers' / 'isp_threshold'"
            )
        return spec

    def combos(self, base_workers: int, base_v: float) -> List[Tuple[int, float]]:
        """The (workers, isp_threshold) grid, base values filling gaps."""
        workers = self.workers or (base_workers,)
        thresholds = self.isp_threshold or (base_v,)
        return [(w, v) for w in workers for v in thresholds]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"speed_tolerance": self.speed_tolerance}
        if self.workers:
            out["workers"] = list(self.workers)
        if self.isp_threshold:
            out["isp_threshold"] = list(self.isp_threshold)
        return out


#: inline-rate keys of the ``[faults]`` section, mirroring FaultProfile
_FAULT_RATE_KEYS = (
    "crash_rate",
    "coldstart_spike_rate",
    "straggler_rate",
    "message_loss_rate",
    "message_duplication_rate",
    "kv_error_rate",
    "cos_error_rate",
)


@dataclass(frozen=True)
class FaultSpec:
    """Fault injection (``[faults]``): a named preset or inline rates."""

    profile: Optional[str] = None
    crash_rate: float = 0.0
    crash_window_s: Tuple[float, float] = (0.5, 30.0)
    coldstart_spike_rate: float = 0.0
    coldstart_spike_factor: Tuple[float, float] = (2.0, 8.0)
    straggler_rate: float = 0.0
    straggler_factor: Tuple[float, float] = (1.5, 4.0)
    message_loss_rate: float = 0.0
    message_duplication_rate: float = 0.0
    kv_error_rate: float = 0.0
    cos_error_rate: float = 0.0
    max_storage_retries: int = 4

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "faults") -> "FaultSpec":
        reader = _Reader(data, path)
        profile = reader.take_str(
            "profile", None, choices=tuple(sorted(FAULT_PROFILES))
        )
        kwargs = dict(
            crash_rate=reader.take_float("crash_rate", 0.0, 0.0, 1.0),
            crash_window_s=reader.take_pair("crash_window_s", (0.5, 30.0), 0.0),
            coldstart_spike_rate=reader.take_float(
                "coldstart_spike_rate", 0.0, 0.0, 1.0
            ),
            coldstart_spike_factor=reader.take_pair(
                "coldstart_spike_factor", (2.0, 8.0), 1.0
            ),
            straggler_rate=reader.take_float("straggler_rate", 0.0, 0.0, 1.0),
            straggler_factor=reader.take_pair("straggler_factor", (1.5, 4.0), 1.0),
            message_loss_rate=reader.take_float("message_loss_rate", 0.0, 0.0, 1.0),
            message_duplication_rate=reader.take_float(
                "message_duplication_rate", 0.0, 0.0, 1.0
            ),
            kv_error_rate=reader.take_float("kv_error_rate", 0.0, 0.0, 1.0),
            cos_error_rate=reader.take_float("cos_error_rate", 0.0, 0.0, 1.0),
            max_storage_retries=reader.take_int("max_storage_retries", 4, minimum=0),
        )
        reader.finish()
        spec = cls(profile=profile, **kwargs)
        if profile is not None and any(
            getattr(spec, key) > 0.0 for key in _FAULT_RATE_KEYS
        ):
            raise SpecError(
                path, "sets both a named 'profile' and inline rates; pick one"
            )
        if (
            spec.message_loss_rate + spec.message_duplication_rate > 1.0
        ):
            raise SpecError(
                f"{path}.message_loss_rate",
                "message loss + duplication rates must sum to <= 1",
            )
        return spec

    def to_profile(self, scenario_name: str) -> FaultProfile:
        """Lower to the injector's :class:`FaultProfile`."""
        if self.profile is not None:
            return FAULT_PROFILES[self.profile]
        return FaultProfile(
            name=f"scenario:{scenario_name}",
            crash_rate=self.crash_rate,
            crash_window_s=self.crash_window_s,
            coldstart_spike_rate=self.coldstart_spike_rate,
            coldstart_spike_factor=self.coldstart_spike_factor,
            straggler_rate=self.straggler_rate,
            straggler_factor=self.straggler_factor,
            message_loss_rate=self.message_loss_rate,
            message_duplication_rate=self.message_duplication_rate,
            kv_error_rate=self.kv_error_rate,
            cos_error_rate=self.cos_error_rate,
            max_storage_retries=self.max_storage_retries,
        )

    def to_dict(self) -> Dict[str, Any]:
        if self.profile is not None:
            return {"profile": self.profile}
        return {
            "crash_rate": self.crash_rate,
            "crash_window_s": list(self.crash_window_s),
            "coldstart_spike_rate": self.coldstart_spike_rate,
            "coldstart_spike_factor": list(self.coldstart_spike_factor),
            "straggler_rate": self.straggler_rate,
            "straggler_factor": list(self.straggler_factor),
            "message_loss_rate": self.message_loss_rate,
            "message_duplication_rate": self.message_duplication_rate,
            "kv_error_rate": self.kv_error_rate,
            "cos_error_rate": self.cos_error_rate,
            "max_storage_retries": self.max_storage_retries,
        }


@dataclass(frozen=True)
class TrafficSpec:
    """Multi-tenant arrival traffic (``[traffic]``)."""

    tenants: int = 24
    horizon_s: float = 7200.0
    mean_rate_per_h: float = 9.0
    diurnal_amplitude: float = 0.6
    peak_time_s: float = 2700.0
    period_s: float = 7200.0
    bursts_per_h: float = 0.5
    burst_len_s: float = 300.0
    burst_multiplier: float = 5.0

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "traffic") -> "TrafficSpec":
        reader = _Reader(data, path)
        spec = cls(
            tenants=reader.take_int("tenants", 24, minimum=1),
            horizon_s=reader.take_float("horizon_s", 7200.0, minimum=1.0),
            mean_rate_per_h=reader.take_float("mean_rate_per_h", 9.0, minimum=0.0),
            diurnal_amplitude=reader.take_float(
                "diurnal_amplitude", 0.6, 0.0, 0.999
            ),
            peak_time_s=reader.take_float("peak_time_s", 2700.0, minimum=0.0),
            period_s=reader.take_float("period_s", 7200.0, minimum=1.0),
            bursts_per_h=reader.take_float("bursts_per_h", 0.5, minimum=0.0),
            burst_len_s=reader.take_float("burst_len_s", 300.0, minimum=0.0),
            burst_multiplier=reader.take_float("burst_multiplier", 5.0, minimum=1.0),
        )
        reader.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenants": self.tenants,
            "horizon_s": self.horizon_s,
            "mean_rate_per_h": self.mean_rate_per_h,
            "diurnal_amplitude": self.diurnal_amplitude,
            "peak_time_s": self.peak_time_s,
            "period_s": self.period_s,
            "bursts_per_h": self.bursts_per_h,
            "burst_len_s": self.burst_len_s,
            "burst_multiplier": self.burst_multiplier,
        }


@dataclass(frozen=True)
class JobMixSpec:
    """Per-tenant job size sampling ranges (``[jobs]``)."""

    min_workers: int = 1
    max_workers: int = 4
    min_steps: int = 20
    max_steps: int = 60
    step_cpu_median_s: float = 0.35
    step_cpu_sigma: float = 0.45
    sync_every: int = 5

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "jobs") -> "JobMixSpec":
        reader = _Reader(data, path)
        spec = cls(
            min_workers=reader.take_int("min_workers", 1, minimum=1),
            max_workers=reader.take_int("max_workers", 4, minimum=1),
            min_steps=reader.take_int("min_steps", 20, minimum=1),
            max_steps=reader.take_int("max_steps", 60, minimum=1),
            step_cpu_median_s=reader.take_float(
                "step_cpu_median_s", 0.35, minimum=1e-6
            ),
            step_cpu_sigma=reader.take_float("step_cpu_sigma", 0.45, minimum=0.0),
            sync_every=reader.take_int("sync_every", 5, minimum=0),
        )
        reader.finish()
        if spec.min_workers > spec.max_workers:
            raise SpecError(
                f"{path}.min_workers",
                f"must be <= jobs.max_workers ({spec.max_workers}), "
                f"got {spec.min_workers}",
            )
        if spec.min_steps > spec.max_steps:
            raise SpecError(
                f"{path}.min_steps",
                f"must be <= jobs.max_steps ({spec.max_steps}), got {spec.min_steps}",
            )
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "min_steps": self.min_steps,
            "max_steps": self.max_steps,
            "step_cpu_median_s": self.step_cpu_median_s,
            "step_cpu_sigma": self.step_cpu_sigma,
            "sync_every": self.sync_every,
        }


@dataclass(frozen=True)
class PoolSpec:
    """Shared-pool shape (``[pool]``)."""

    concurrency: int = 12
    memory_grades_mb: Tuple[int, ...] = (1024, 2048)
    keep_alive_s: float = 180.0
    scale_to_zero_after_s: float = 60.0
    max_skips: int = 8

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "pool") -> "PoolSpec":
        reader = _Reader(data, path)
        spec = cls(
            concurrency=reader.take_int("concurrency", 12, minimum=1),
            memory_grades_mb=reader.take_int_list(
                "memory_grades_mb", (1024, 2048), minimum=128
            ),
            keep_alive_s=reader.take_float("keep_alive_s", 180.0, minimum=0.0),
            scale_to_zero_after_s=reader.take_float(
                "scale_to_zero_after_s", 60.0, minimum=0.0
            ),
            max_skips=reader.take_int("max_skips", 8, minimum=0),
        )
        reader.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "concurrency": self.concurrency,
            "memory_grades_mb": list(self.memory_grades_mb),
            "keep_alive_s": self.keep_alive_s,
            "scale_to_zero_after_s": self.scale_to_zero_after_s,
            "max_skips": self.max_skips,
        }


@dataclass(frozen=True)
class PricingSpec:
    """Billing rates (``[pricing]``)."""

    #: $ per GB-second of billed function time (the paper's Table 2 rate)
    rate_per_gb_s: float = 1.7e-5
    #: platform idle keep-alive re-billed at this fraction of active rate
    idle_rate_fraction: float = 0.25

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "pricing") -> "PricingSpec":
        reader = _Reader(data, path)
        spec = cls(
            rate_per_gb_s=reader.take_float("rate_per_gb_s", 1.7e-5, minimum=0.0),
            idle_rate_fraction=reader.take_float(
                "idle_rate_fraction", 0.25, 0.0, 1.0
            ),
        )
        reader.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate_per_gb_s": self.rate_per_gb_s,
            "idle_rate_fraction": self.idle_rate_fraction,
        }


@dataclass(frozen=True)
class BudgetSpec:
    """Run budget (``[budget]``): KPI ceilings the run must stay under."""

    max_cost_usd: Optional[float] = None
    max_exec_time_s: Optional[float] = None
    #: platform runs only: p95 queue wait ceiling
    max_queue_wait_p95_s: Optional[float] = None
    require_converged: bool = False

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "budget") -> "BudgetSpec":
        reader = _Reader(data, path)
        spec = cls(
            max_cost_usd=reader.take_float("max_cost_usd", None, minimum=0.0),
            max_exec_time_s=reader.take_float("max_exec_time_s", None, minimum=0.0),
            max_queue_wait_p95_s=reader.take_float(
                "max_queue_wait_p95_s", None, minimum=0.0
            ),
            require_converged=reader.take_bool("require_converged", False),
        )
        reader.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.max_cost_usd is not None:
            out["max_cost_usd"] = self.max_cost_usd
        if self.max_exec_time_s is not None:
            out["max_exec_time_s"] = self.max_exec_time_s
        if self.max_queue_wait_p95_s is not None:
            out["max_queue_wait_p95_s"] = self.max_queue_wait_p95_s
        if self.require_converged:
            out["require_converged"] = True
        return out


@dataclass(frozen=True)
class ReportSpec:
    """What the KPI report includes beyond the headline numbers."""

    #: record a span trace and include the critical-path summary
    #: (single-job sim runs only)
    critical_path: bool = False
    #: price the per-job-isolation counterfactual (platform runs only)
    isolated_baseline: bool = False

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "report") -> "ReportSpec":
        reader = _Reader(data, path)
        spec = cls(
            critical_path=reader.take_bool("critical_path", False),
            isolated_baseline=reader.take_bool("isolated_baseline", False),
        )
        reader.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.critical_path:
            out["critical_path"] = True
        if self.isolated_baseline:
            out["isolated_baseline"] = True
        return out


# -- the top-level spec -----------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described, replayable scenario."""

    name: str
    kind: str
    seed: int = 0
    description: str = ""
    workload: Optional[WorkloadSpec] = None
    sweep: Optional[SweepSpec] = None
    faults: Optional[FaultSpec] = None
    traffic: Optional[TrafficSpec] = None
    jobs: Optional[JobMixSpec] = None
    pool: Optional[PoolSpec] = None
    pricing: PricingSpec = field(default_factory=PricingSpec)
    budget: BudgetSpec = field(default_factory=BudgetSpec)
    report: ReportSpec = field(default_factory=ReportSpec)

    @property
    def deterministic(self) -> bool:
        """True when two runs at the same seed are bit-identical.

        The sim backend (and every platform run) is deterministic by
        construction; the ``local``/``procs`` backends run on real
        threads/processes and genuine wall-clock time.
        """
        if self.kind == "platform":
            return True
        return self.workload is not None and self.workload.backend == "sim"

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready nested dict; lossless input to :func:`spec_from_dict`."""
        out: Dict[str, Any] = {
            "scenario": {
                "name": self.name,
                "kind": self.kind,
                "seed": self.seed,
            }
        }
        if self.description:
            out["scenario"]["description"] = self.description
        for key, section in (
            ("workload", self.workload),
            ("sweep", self.sweep),
            ("faults", self.faults),
            ("traffic", self.traffic),
            ("jobs", self.jobs),
            ("pool", self.pool),
        ):
            if section is not None:
                out[key] = section.to_dict()
        out["pricing"] = self.pricing.to_dict()
        budget = self.budget.to_dict()
        if budget:
            out["budget"] = budget
        report = self.report.to_dict()
        if report:
            out["report"] = report
        return out


_SECTION_KEYS = (
    "scenario",
    "workload",
    "sweep",
    "faults",
    "traffic",
    "jobs",
    "pool",
    "pricing",
    "budget",
    "report",
)

#: template names must be CLI- and filename-safe
_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-")


def spec_from_dict(data: Dict[str, Any]) -> ScenarioSpec:
    """Build and cross-validate a :class:`ScenarioSpec` from a parsed dict."""
    if not isinstance(data, dict):
        raise SpecError("", f"spec must be a table/object, got {type(data).__name__}")
    unknown = sorted(set(data) - set(_SECTION_KEYS))
    if unknown:
        raise SpecError(
            unknown[0], f"unknown section (expected one of {list(_SECTION_KEYS)})"
        )
    if "scenario" not in data:
        raise SpecError("scenario", "is required")

    head = _Reader(data["scenario"], "scenario")
    name = head.take_str("name", _REQUIRED)
    if not name or not set(name) <= _NAME_CHARS or name[0] == "-":
        raise SpecError(
            "scenario.name",
            f"must be lowercase letters/digits/dashes, got {name!r}",
        )
    kind = head.take_str("kind", _REQUIRED, choices=KINDS)
    seed = head.take_int("seed", 0, minimum=0)
    description = head.take_str("description", "")
    head.finish()

    def section(key: str, cls):
        return cls.from_dict(data[key], key) if key in data else None

    spec = ScenarioSpec(
        name=name,
        kind=kind,
        seed=seed,
        description=description or "",
        workload=section("workload", WorkloadSpec),
        sweep=section("sweep", SweepSpec),
        faults=section("faults", FaultSpec),
        traffic=section("traffic", TrafficSpec),
        jobs=section("jobs", JobMixSpec),
        pool=section("pool", PoolSpec),
        pricing=section("pricing", PricingSpec) or PricingSpec(),
        budget=section("budget", BudgetSpec) or BudgetSpec(),
        report=section("report", ReportSpec) or ReportSpec(),
    )
    _cross_validate(spec)
    return spec


def _cross_validate(spec: ScenarioSpec) -> None:
    """Kind-conditional and cross-section constraints."""
    if spec.kind == "single-job":
        if spec.workload is None:
            raise SpecError("workload", "is required for kind = 'single-job'")
        for key in ("traffic", "jobs", "pool"):
            if getattr(spec, key) is not None:
                raise SpecError(
                    key, "is a platform section; not allowed for 'single-job'"
                )
        wl = spec.workload
        if wl.kind == "mlp-pipeline":
            if not hasattr(WORKLOADS[wl.name]().make_model(), "stage_layers"):
                raise SpecError(
                    "workload.kind",
                    f"workload {wl.name!r} is not stageable; "
                    "'mlp-pipeline' needs a layered model (mlp-synth)",
                )
            if wl.stages < 2:
                raise SpecError(
                    "workload.stages",
                    f"must be >= 2 for kind = 'mlp-pipeline', got {wl.stages}",
                )
            if wl.workers != wl.stages:
                raise SpecError(
                    "workload.workers",
                    "pipeline mode runs one stage per worker function: "
                    f"set workers = stages ({wl.stages}), got {wl.workers}",
                )
            if wl.sync != "bsp":
                raise SpecError(
                    "workload.sync",
                    "pipeline stages synchronize through the barrier; "
                    f"sync must be 'bsp', got {wl.sync!r}",
                )
            if wl.isp_threshold != 0.0:
                raise SpecError(
                    "workload.isp_threshold",
                    "the significance filter is data-parallel-only; "
                    "must be 0 for kind = 'mlp-pipeline'",
                )
            if wl.autotune:
                raise SpecError(
                    "workload.autotune",
                    "a pipeline cannot scale in; must be false",
                )
            if spec.faults is not None:
                raise SpecError(
                    "faults", "not supported with kind = 'mlp-pipeline'"
                )
            if spec.sweep is not None:
                raise SpecError(
                    "sweep", "not supported with kind = 'mlp-pipeline'"
                )
            if wl.backend == "procs":
                raise SpecError(
                    "workload.backend",
                    "the procs backend does not run pipeline stages; "
                    "use 'sim' or 'local'",
                )
        elif wl.stages != 1 or wl.micro_batches != 1:
            raise SpecError(
                "workload.stages",
                "stages/micro_batches only apply to kind = 'mlp-pipeline'",
            )
        if wl.sync != "bsp":
            if wl.autotune:
                raise SpecError(
                    "workload.autotune",
                    f"the scale-in auto-tuner requires sync = 'bsp', "
                    f"got {wl.sync!r}",
                )
            if wl.isp_threshold != 0.0:
                raise SpecError(
                    "workload.isp_threshold",
                    f"must be 0 for sync = {wl.sync!r} (ISP rides the "
                    "BSP barrier)",
                )
            if spec.faults is not None and spec.faults.to_profile(
                spec.name
            ).crash_rate > 0.0:
                raise SpecError(
                    "faults",
                    f"crash recovery requires sync = 'bsp', got {wl.sync!r}",
                )
        backend = spec.workload.backend
        if backend != "sim":
            if spec.faults is not None:
                raise SpecError(
                    "faults",
                    f"fault injection needs workload.backend = 'sim', "
                    f"got {backend!r}",
                )
            if spec.report.critical_path:
                raise SpecError(
                    "report.critical_path",
                    f"span tracing needs workload.backend = 'sim', got {backend!r}",
                )
            if spec.pricing != PricingSpec():
                raise SpecError(
                    "pricing",
                    f"cost metering needs workload.backend = 'sim', got {backend!r}",
                )
        if spec.report.isolated_baseline:
            raise SpecError(
                "report.isolated_baseline", "only applies to kind = 'platform'"
            )
        if spec.budget.max_queue_wait_p95_s is not None:
            raise SpecError(
                "budget.max_queue_wait_p95_s", "only applies to kind = 'platform'"
            )
        if spec.sweep is not None:
            n = len(spec.sweep.combos(spec.workload.workers,
                                      spec.workload.isp_threshold))
            if n > MAX_SWEEP_COMBOS:
                raise SpecError(
                    "sweep", f"grid has {n} combos; the cap is {MAX_SWEEP_COMBOS}"
                )
    else:  # platform
        for key in ("workload", "sweep", "faults"):
            if getattr(spec, key) is not None:
                raise SpecError(
                    key, "is a single-job section; not allowed for 'platform'"
                )
        if spec.report.critical_path:
            raise SpecError(
                "report.critical_path", "only applies to kind = 'single-job'"
            )
        if spec.budget.require_converged:
            raise SpecError(
                "budget.require_converged", "only applies to kind = 'single-job'"
            )
        jobs = spec.jobs or JobMixSpec()
        pool = spec.pool or PoolSpec()
        if jobs.max_workers > pool.concurrency:
            raise SpecError(
                "jobs.max_workers",
                f"must be <= pool.concurrency ({pool.concurrency}), "
                f"got {jobs.max_workers} — such a job could never be admitted",
            )
