"""Lower a :class:`ScenarioSpec` onto the repo's execution seams and run it.

The compiler owns *how* a declarative scenario becomes actual work:

* ``kind = "single-job"`` → :func:`repro.experiments.common.run_mlless`
  on the requested backend (``sim`` / ``local`` / ``procs``), with fault
  profiles, span tracing and pricing threaded into the simulated world,
  and an optional right-sizing sweep over (workers, ISP threshold);
* ``kind = "platform"`` → :func:`repro.platform.scenario.run_scenario`
  (and optionally :func:`run_isolated_baseline`), with the spec's
  traffic/job-mix/pool/pricing sections mapped onto the platform's
  config dataclasses.

The output is one KPI payload (see :mod:`repro.scenarios.kpi`) whose
reconciliation block has already been *enforced* — a run whose invoices
or cost breakdown fail to reproduce the bill raises
:class:`~repro.scenarios.kpi.ReconciliationError` instead of reporting
partial cost.  Deterministic scenarios yield digest-identical payloads
at the same seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional

from ..experiments.common import build_world, mlless_config, run_mlless
from ..experiments.settings import make_workload
from .kpi import (
    evaluate_budget,
    finalize_report,
    reconcile_platform,
    reconcile_single_job,
)
from .spec import ScenarioSpec

__all__ = ["run_scenario_spec", "KPI_SCHEMA"]

KPI_SCHEMA = "repro.scenarios/kpi/v1"

Progress = Optional[Callable[[str], None]]


def run_scenario_spec(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    progress: Progress = None,
) -> Dict[str, Any]:
    """Run ``spec`` end-to-end and return its finalized KPI payload.

    ``seed`` overrides the spec's seed (the CLI's ``--seed``);
    ``progress`` receives one human-readable line per sub-run.
    """
    if seed is not None:
        spec = replace(spec, seed=seed)
    payload: Dict[str, Any] = {
        "schema": KPI_SCHEMA,
        "name": spec.name,
        "kind": spec.kind,
        "seed": spec.seed,
        "deterministic": spec.deterministic,
        "spec": spec.to_dict(),
    }
    if spec.kind == "platform":
        _run_platform(spec, payload, progress)
    else:
        _run_single_job(spec, payload, progress)
    payload["budget"] = evaluate_budget(spec.budget, payload["kpis"])
    return finalize_report(_jsonify(payload))


# -- single-job lowering ----------------------------------------------------


def _run_single_job(spec: ScenarioSpec, payload: Dict[str, Any],
                    progress: Progress) -> None:
    wl = spec.workload
    combos = (
        spec.sweep.combos(wl.workers, wl.isp_threshold)
        if spec.sweep is not None
        else [(wl.workers, wl.isp_threshold)]
    )
    profile = (
        spec.faults.to_profile(spec.name) if spec.faults is not None else None
    )
    workload = make_workload(wl.name)
    runs: List[Dict[str, Any]] = []
    for workers, v in combos:
        if progress is not None:
            progress(
                f"[{spec.name}] {wl.name} on {wl.backend}: "
                f"workers={workers} isp_threshold={v} sync={wl.sync}"
                + (
                    f" stages={wl.stages} micro_batches={wl.micro_batches}"
                    if wl.kind == "mlp-pipeline"
                    else ""
                )
            )
        config = mlless_config(
            workload,
            n_workers=workers,
            v=v,
            autotune=wl.autotune,
            target_loss=wl.target_loss,
            max_steps=wl.max_steps,
            seed=spec.seed,
            faults=profile,
            # Adaptive owns its own straggler response; the spec layer
            # already rejects crash rates for non-BSP syncs.
            fault_tolerance=(
                False if wl.sync != "bsp" and profile is not None else None
            ),
            sync=wl.sync,
            pipeline_stages=wl.stages if wl.kind == "mlp-pipeline" else 1,
            micro_batches=(
                wl.micro_batches if wl.kind == "mlp-pipeline" else 1
            ),
        )
        tracer = None
        if wl.backend == "sim":
            if spec.report.critical_path:
                from ..trace import Tracer

                tracer = Tracer()
            world = build_world(seed=config.seed, faults=config.faults,
                                tracer=tracer)
            # The scenario's pricing table is the billing rate for this
            # world; the default spec reproduces the paper's Table 2.
            world.platform.billing.rate_per_gb_s = spec.pricing.rate_per_gb_s
            result = run_mlless(config, world=world)
        else:
            result = run_mlless(config, backend=wl.backend)
        runs.append(_single_run_row(spec, result, tracer, workers, v))
    payload["runs"] = runs
    if len(runs) > 1:
        payload["recommendation"] = _recommend(runs, spec.sweep.speed_tolerance)
    payload["kpis"] = _single_kpis(runs)
    payload["reconciliation"] = _single_reconciliation_summary(runs)


def _single_run_row(spec: ScenarioSpec, result, tracer,
                    workers: int, v: float) -> Dict[str, Any]:
    wl = spec.workload
    row: Dict[str, Any] = {
        "workers": workers,
        "isp_threshold": v,
        "backend": wl.backend,
        "sync": wl.sync,
        "exec_time_s": result.exec_time,
        "converged": result.converged,
        "final_loss": result.final_loss,
        "steps": result.total_steps,
    }
    if wl.kind == "mlp-pipeline":
        row["stages"] = wl.stages
        row["micro_batches"] = wl.micro_batches
    if wl.backend == "sim":
        row["wall_time_s"] = result.wall_time
        row["total_cost_usd"] = result.total_cost
        row["cost_breakdown_usd"] = {
            name: cost for name, cost in sorted(result.meter.breakdown().items())
        }
        target = result.monitor.series("loss").time_to_reach
        threshold = (
            wl.target_loss
            if wl.target_loss is not None
            else make_workload(wl.name).target_loss
        )
        reached = target(threshold)
        row["time_to_loss_s"] = (
            None if reached is None else reached - result.started_at
        )
        row["faults_injected"] = int(result.extras.get("faults_injected", 0))
        row["faults_recovered"] = int(result.extras.get("faults_recovered", 0))
        row["reconciliation"] = reconcile_single_job(result, tracer)
        if tracer is not None:
            row["critical_path"] = _critical_path_summary(tracer)
    else:
        row["reconciliation"] = {
            "skipped": f"no cost metering on backend {wl.backend!r}"
        }
    return row


def _critical_path_summary(tracer) -> Dict[str, Any]:
    """Aggregate the per-step critical path into a compact block."""
    from ..trace import critical_path

    rows = critical_path(tracer)
    categories: Dict[str, int] = {}
    skew = 0.0
    barrier = 0.0
    for row in rows:
        categories[row["bound_category"]] = (
            categories.get(row["bound_category"], 0) + 1
        )
        skew += row["skew_s"]
        barrier += row["barrier_s"]
    n = len(rows)
    return {
        "steps": n,
        "bound_category_steps": {c: categories[c] for c in sorted(categories)},
        "total_skew_s": round(skew, 6),
        "mean_barrier_s": round(barrier / n, 6) if n else 0.0,
    }


def _recommend(runs: List[Dict[str, Any]], speed_tolerance: float) -> Dict[str, Any]:
    """Cheapest config within ``speed_tolerance`` x of the fastest run."""
    priced = [r for r in runs if "total_cost_usd" in r]
    pool = priced if priced else runs
    fastest = min(r["exec_time_s"] for r in pool)
    eligible = [r for r in pool if r["exec_time_s"] <= speed_tolerance * fastest]
    best = min(
        eligible,
        key=lambda r: (
            r.get("total_cost_usd", 0.0),
            r["exec_time_s"],
            r["workers"],
            r["isp_threshold"],
        ),
    )
    out = {
        "rule": f"cheapest config within {speed_tolerance}x of fastest",
        "workers": best["workers"],
        "isp_threshold": best["isp_threshold"],
        "exec_time_s": best["exec_time_s"],
        "fastest_exec_time_s": fastest,
    }
    if "total_cost_usd" in best:
        out["total_cost_usd"] = best["total_cost_usd"]
    return out


def _single_kpis(runs: List[Dict[str, Any]]) -> Dict[str, Any]:
    kpis: Dict[str, Any] = {
        "runs": len(runs),
        "exec_time_s": max(r["exec_time_s"] for r in runs),
        "converged": all(r["converged"] for r in runs),
        "steps_total": sum(r["steps"] for r in runs),
    }
    if any("total_cost_usd" in r for r in runs):
        kpis["total_cost_usd"] = sum(r.get("total_cost_usd", 0.0) for r in runs)
    if any(r.get("faults_injected") for r in runs):
        kpis["faults_injected"] = sum(r.get("faults_injected", 0) for r in runs)
        kpis["faults_recovered"] = sum(r.get("faults_recovered", 0) for r in runs)
    times = [r["time_to_loss_s"] for r in runs if r.get("time_to_loss_s") is not None]
    if times:
        kpis["best_time_to_loss_s"] = min(times)
    return kpis


def _single_reconciliation_summary(runs: List[Dict[str, Any]]) -> Dict[str, Any]:
    errors = [
        r["reconciliation"].get("abs_error_usd")
        for r in runs
        if "abs_error_usd" in r.get("reconciliation", {})
    ]
    if not errors:
        return {"checked_runs": 0}
    return {"checked_runs": len(errors), "max_abs_error_usd": max(errors)}


# -- platform lowering ------------------------------------------------------


def _run_platform(spec: ScenarioSpec, payload: Dict[str, Any],
                  progress: Progress) -> None:
    from ..platform.arrivals import JobSizeProfile, TrafficProfile
    from ..platform.billing import PoolEconomics
    from ..platform.scenario import (
        ScenarioConfig,
        run_isolated_baseline,
        run_scenario,
    )
    from .spec import JobMixSpec, PoolSpec, TrafficSpec

    traffic = spec.traffic or TrafficSpec()
    jobs = spec.jobs or JobMixSpec()
    pool = spec.pool or PoolSpec()
    config = ScenarioConfig(
        seed=spec.seed,
        n_tenants=traffic.tenants,
        horizon_s=traffic.horizon_s,
        pool_concurrency=pool.concurrency,
        memory_grades_mb=tuple(pool.memory_grades_mb),
        keep_alive_s=pool.keep_alive_s,
        scale_to_zero_after_s=pool.scale_to_zero_after_s,
        max_skips=pool.max_skips,
        traffic=TrafficProfile(
            mean_rate_per_h=traffic.mean_rate_per_h,
            diurnal_amplitude=traffic.diurnal_amplitude,
            peak_time_s=traffic.peak_time_s,
            period_s=traffic.period_s,
            bursts_per_h=traffic.bursts_per_h,
            burst_len_s=traffic.burst_len_s,
            burst_multiplier=traffic.burst_multiplier,
        ),
        sizes=JobSizeProfile(
            min_workers=jobs.min_workers,
            max_workers=jobs.max_workers,
            min_steps=jobs.min_steps,
            max_steps=jobs.max_steps,
            step_cpu_median_s=jobs.step_cpu_median_s,
            step_cpu_sigma=jobs.step_cpu_sigma,
            memory_grades_mb=tuple(pool.memory_grades_mb),
            sync_every=jobs.sync_every,
        ),
        economics=PoolEconomics(
            rate_per_gb_s=spec.pricing.rate_per_gb_s,
            idle_rate_fraction=spec.pricing.idle_rate_fraction,
        ),
    )
    if progress is not None:
        progress(
            f"[{spec.name}] platform: {traffic.tenants} tenants over "
            f"{traffic.horizon_s:.0f}s, pool concurrency {pool.concurrency}"
        )
    result = run_scenario(config)
    reconciliation = reconcile_platform(result.report)
    metrics = result.metrics
    kpis: Dict[str, Any] = {
        "jobs": metrics["jobs"],
        "tenants": metrics["tenants"],
        "jobs_per_hour": metrics["jobs_per_hour"],
        "queue_wait_p50_s": metrics["queue_wait_p50_s"],
        "queue_wait_p95_s": metrics["queue_wait_p95_s"],
        "queue_wait_mean_s": metrics["queue_wait_mean_s"],
        "makespan_s": metrics["makespan_s"],
        "cloud_cost_usd": metrics["shared_cloud_cost_usd"],
        "idle_cost_usd": metrics["shared_idle_cost_usd"],
        "total_cost_usd": metrics["shared_total_cost_usd"],
        "cost_per_job_usd": metrics["cost_per_job_shared_usd"],
        "cold_activations": metrics["cold_activations"],
        "warm_activations": metrics["warm_activations"],
        "cold_fraction": metrics["cold_fraction"],
        "attributed_fraction": metrics["attributed_fraction"],
    }
    invoices = {}
    for tenant_id in sorted(result.report.invoices):
        invoice = result.report.invoices[tenant_id]
        invoices[tenant_id] = {
            "jobs": invoice.jobs,
            "activations": invoice.activations,
            "active_cost_usd": invoice.active_cost,
            "idle_cost_usd": invoice.idle_cost,
            "total_cost_usd": invoice.total_cost,
        }
    platform_block: Dict[str, Any] = {
        "trace_digest": result.digest,
        "metrics": {k: metrics[k] for k in sorted(metrics)},
        "invoices": invoices,
    }
    if spec.report.isolated_baseline:
        if progress is not None:
            progress(f"[{spec.name}] pricing the per-job-isolation baseline...")
        baseline = run_isolated_baseline(config)
        platform_block["isolated_baseline"] = {
            k: baseline[k] for k in sorted(baseline)
        }
        shared = kpis["total_cost_usd"]
        isolated = baseline["isolated_total_cost_usd"]
        if isolated > 0:
            kpis["isolated_savings_pct"] = 100.0 * (1.0 - shared / isolated)
    payload["platform"] = platform_block
    payload["kpis"] = kpis
    payload["reconciliation"] = reconciliation


# -- JSON hygiene -----------------------------------------------------------


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars (and tuples) so the payload is pure JSON."""
    if isinstance(value, dict):
        return {key: _jsonify(value[key]) for key in value}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    # numpy scalar types expose item(); anything else is a bug we want loud
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"KPI payload contains non-JSON value {value!r}")
