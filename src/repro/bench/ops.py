"""The registered microbenchmark ops.

Groups (see :data:`repro.bench.runner.GATED_GROUPS` for which are held
to the compare gate's minimum speedup):

``kernel``
    The per-step sparse kernels: ``matvec``, ``rmatvec_on_support``,
    ``row_slice``.  These dominate a worker's compute (the reason the
    paper rewrote them in Cython).
``merge``
    N-way update merging: ``SparseDelta.merge_many`` (worker step-6 peer
    sum) and ``ModelUpdate.merge_many`` (supervisor aggregation).
``scatter``
    Sparse-into-dense scatter-add variants.  Informational: on current
    NumPy the ``np.add.at`` fast path *beats* a fancy-index ``+=``, and
    this group is where a future NumPy flipping that again would show.
``core``
    Training-state operations: fused peer application, checkpoint
    snapshot.
``sim``
    DES event churn (host-side cost of every simulated second).
``simkernel``
    DES kernel event throughput at platform scale, shaped like the
    training machines' event mix: worker step loops (one jittered
    compute timer + a burst of delay-0 service hops — the MQ poll /
    filter check / barrier handshake pattern), ``Store`` FIFO handoffs
    under a populated pending set, and a mixed short/far-horizon load.
    Delay lists are precomputed in ``make_state`` so the timed region
    is kernel work, and every op appends small-int markers to a shared
    log whose hash is the checksum — any delivery-order drift between
    kernels changes it.  Gated: the timer-wheel kernel must beat the
    committed ``BENCH_kernel_baseline.json`` (captured on the
    pre-wheel heapq kernel) by the compare gate's minimum speedup.
``backend``
    Execution-backend step throughput (local threads vs procs).  Not
    gated by ``--compare`` — the procs-vs-local ratio gate is cpu-aware
    and lives in ``python -m repro.bench backend --check-ratio``.
``pipeline``
    Pipeline-parallel stage primitives: a middle stage's forward and
    backward slices plus the micro-batch split at the injection
    boundary.  Informational (dense GEMMs, so timings track BLAS);
    the checksums pin the stage math bit-for-bit.
``e2e``
    One small end-to-end MLLess job (the determinism oracle's default
    run); its checksum is the monitor trace digest, so a hot-path
    regression that changes convergence is caught right here.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..ml.data import DenseBatch
from ..ml.parameters import ModelUpdate, ParameterSet
from ..ml.sparse import SparseDelta
from . import workloads
from .runner import BenchOp, checksum_bytes

__all__ = ["ALL_OPS"]


# -- checksum helpers -----------------------------------------------------
def _array(arr: np.ndarray) -> str:
    return checksum_bytes(np.ascontiguousarray(arr).tobytes())


def _delta(delta: SparseDelta) -> str:
    return checksum_bytes(
        np.ascontiguousarray(delta.indices).tobytes(),
        np.ascontiguousarray(delta.values).tobytes(),
        repr(delta.shape).encode(),
    )


def _csr(matrix) -> str:
    return checksum_bytes(
        np.ascontiguousarray(matrix.indptr).tobytes(),
        np.ascontiguousarray(matrix.indices).tobytes(),
        np.ascontiguousarray(matrix.data).tobytes(),
        repr(matrix.shape).encode(),
    )


def _update(update: ModelUpdate) -> str:
    chunks: List[bytes] = []
    for name, delta in update:
        chunks.append(name.encode())
        chunks.append(np.ascontiguousarray(delta.indices).tobytes())
        chunks.append(np.ascontiguousarray(delta.values).tobytes())
    return checksum_bytes(*chunks)


def _params(params: ParameterSet) -> str:
    chunks: List[bytes] = []
    for name, tensor in params:
        chunks.append(name.encode())
        chunks.append(np.ascontiguousarray(tensor).tobytes())
    return checksum_bytes(*chunks)


def _checkpoint(ckpt) -> str:
    chunks: List[bytes] = [
        repr((ckpt.worker_id, ckpt.step, ckpt.active_workers)).encode()
    ]
    for name, tensor in ckpt.params:
        chunks.append(name.encode())
        chunks.append(np.ascontiguousarray(tensor).tobytes())
    for slot in sorted(getattr(ckpt.optimizer, "_state", {})):
        for name in sorted(ckpt.optimizer._state[slot]):
            chunks.append(f"{slot}/{name}".encode())
            chunks.append(
                np.ascontiguousarray(ckpt.optimizer._state[slot][name]).tobytes()
            )
    for name in sorted(ckpt.sig_filter._acc):
        chunks.append(name.encode())
        chunks.append(np.ascontiguousarray(ckpt.sig_filter._acc[name]).tobytes())
    return checksum_bytes(*chunks)


# -- op run functions -----------------------------------------------------
def _run_churn(_state, _payload):
    from ..sim import Environment

    def ticker(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    env = Environment()
    for _ in range(50):
        env.process(ticker(env, 400))
    env.run()
    return (env.now, 50 * 400)


def _simlog(out) -> str:
    """Order-sensitive checksum over an op's (now, marker-log) output."""
    now, log = out
    arr = np.asarray(log, dtype=np.int64)
    return checksum_bytes(arr.tobytes(), repr((now, arr.size)).encode())


def _step_loop_delays() -> List[List[float]]:
    return [
        [0.01 + ((i * 31 + j * 17) % 191) / 1000.0 for j in range(10)]
        for i in range(5_000)
    ]


def _prepare_step_loop(state):
    """Build the env and spawn all workers *outside* the timed region."""
    from ..sim import Environment

    log: List[int] = []
    append = log.append

    def worker(env, i, ds):
        timeout = env.timeout
        for d in ds:
            yield timeout(d)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            append(i)

    env = Environment()
    for i, ds in enumerate(state):
        env.process(worker(env, i, ds))
    return env, log


def _run_step_loop(_state, payload):
    """5k workers x 10 steps: one jittered compute timer + 8 service hops.

    The training-machine event mix: each step sleeps a 10-200 ms
    compute timer, then burns eight delay-0 schedules (MQ poll, filter
    check, barrier handshake...).  On the old kernel every delay-0
    schedule is a new heap minimum, so push *and* pop sift through the
    full ~5k-deep heap; the new kernel files them in the O(1)
    now-queue and the timers in wheel buckets.
    """
    env, log = payload
    env.run()
    return (env.now, log)


def _prepare_fifo_handoff(_state):
    from ..sim import Environment, Store

    log: List[int] = []
    append = log.append

    def producer(env, store, n):
        put = store.put
        for k in range(n):
            yield put(k)

    def relay(env, src, dst, n):
        get = src.get
        put = dst.put
        for _ in range(n):
            item = yield get()
            yield put(item)

    def consumer(env, store, base, n):
        get = store.get
        for _ in range(n):
            item = yield get()
            append(base + item)

    def anchor(env, i):
        yield env.timeout(3_600.0 + i)

    env = Environment()
    for i in range(2_000):
        env.process(anchor(env, i))
    for p in range(200):
        upstream = Store(env)
        downstream = Store(env)
        env.process(producer(env, upstream, 300))
        env.process(relay(env, upstream, downstream, 300))
        env.process(consumer(env, downstream, p * 1_000, 300))
    return env, log


def _run_fifo_handoff(_state, payload):
    """200 three-stage pipelines relaying 300 items each through Stores.

    Each item crosses two Store handoffs (producer -> relay ->
    consumer), the message-queue shape of a parameter-server hop.  2k
    long "anchor" timers sit in the pending set the whole time, so
    every delay-0 wakeup on the old kernel is a schedule-through-a-
    populated-heap round trip; the new kernel turns these into O(1)
    now-queue handoffs.  The consumer logs every received item, so the
    checksum pins the full cross-pipeline interleaving.
    """
    env, log = payload
    env.run()
    return (env.now, log)


def _mixed_horizon_delays():
    pollers = [
        [0.01 + ((i * 7 + j * 13) % 23) / 1000.0 for j in range(10)]
        for i in range(4_000)
    ]
    stragglers = [
        [0.02 + ((i * 11 + j * 5) % 37) / 1000.0 for j in range(10)]
        for i in range(1_000)
    ]
    return pollers, stragglers


def _prepare_mixed_horizon(state):
    from ..sim import Environment

    poller_delays, straggler_delays = state
    log: List[int] = []
    append = log.append

    def poller(env, i, ds):
        timeout = env.timeout
        for d in ds:
            yield timeout(d)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            yield timeout(0.0)
            append(i)

    def straggler(env, i, ds):
        timeout = env.timeout
        yield timeout(900.0 + i * 0.5)
        for d in ds:
            yield timeout(d)
        append(-1 - i)

    env = Environment()
    for i, ds in enumerate(poller_delays):
        env.process(poller(env, i, ds))
    for i, ds in enumerate(straggler_delays):
        env.process(straggler(env, i, ds))
    return env, log


def _run_mixed_horizon(_state, payload):
    """Short pollers + far-future batches: wheel, far heap, re-anchors.

    4k pollers cycle short timers with delay-0 hop bursts; 1k
    stragglers first sleep past any short-timer horizon (far-heap
    territory), then churn short timers.  The load alternates between
    a busy short horizon and an empty one followed by a far batch,
    exercising the far-timer fallback and wheel re-anchoring paths
    without disturbing determinism.
    """
    env, log = payload
    env.run()
    return (env.now, log)


def _run_e2e(_state, _payload):
    from ..analysis.determinism import default_run

    return default_run(0)


def _build_ops() -> List[BenchOp]:
    ops = [
        BenchOp(
            name="kernel.matvec",
            group="kernel",
            make_state=workloads.lr_batch,
            run=lambda s, _p: s[0].matvec(s[1]),
            checksum=_array,
        ),
        BenchOp(
            name="kernel.rmatvec_on_support",
            group="kernel",
            make_state=workloads.lr_batch,
            run=lambda s, _p: s[0].rmatvec_on_support(s[2]),
            checksum=_delta,
        ),
        BenchOp(
            name="kernel.row_slice",
            group="kernel",
            make_state=workloads.lr_batch,
            run=lambda s, _p: s[0].row_slice(1_000, 3_000),
            checksum=_csr,
        ),
        BenchOp(
            name="merge.delta_merge_many_16",
            group="merge",
            make_state=workloads.sparse_deltas,
            run=lambda s, _p: SparseDelta.merge_many(s),
            checksum=_delta,
        ),
        BenchOp(
            name="merge.update_merge_many_8",
            group="merge",
            make_state=workloads.model_updates,
            run=lambda s, _p: ModelUpdate.merge_many(s),
            checksum=_update,
        ),
        BenchOp(
            name="scatter.apply_to",
            group="scatter",
            make_state=workloads.scatter_state,
            prepare=lambda s: s[1].copy(),
            run=lambda s, dense: (s[0].apply_to(dense), dense)[1],
            checksum=_array,
            note="np.add.at path (the production scatter)",
        ),
        BenchOp(
            name="core.peer_apply_8",
            group="core",
            make_state=workloads.peer_state,
            prepare=lambda s: s[0].copy(),
            run=lambda s, params: (params.apply_many(s[1]), params)[1],
            checksum=_params,
        ),
        BenchOp(
            name="core.checkpoint_snapshot",
            group="core",
            make_state=workloads.warmed_checkpoint,
            run=lambda s, _p: s.snapshot(),
            checksum=_checkpoint,
        ),
        BenchOp(
            name="pipeline.stage_forward",
            group="pipeline",
            make_state=workloads.mlp_stage_state,
            run=lambda s, _p: s[0].stage_forward(s[1], s[2], s[3])[0],
            checksum=_array,
            portable=False,
            note="middle-stage forward slice on one 2k-row micro-batch "
            "(checksum is BLAS-dependent)",
        ),
        BenchOp(
            name="pipeline.stage_backward",
            group="pipeline",
            make_state=workloads.mlp_stage_state,
            prepare=lambda s: s[0].stage_forward(s[1], s[2], s[3]),
            run=lambda s, fwd: s[0].stage_backward(
                s[1], fwd[1], np.full_like(fwd[0], 1e-3), s[3]
            )[0],
            checksum=_array,
            portable=False,
            note="middle-stage backward slice (input-gradient path; "
            "checksum is BLAS-dependent)",
        ),
        BenchOp(
            name="pipeline.micro_split_8",
            group="pipeline",
            make_state=workloads.mlp_stage_state,
            run=lambda s, _p: np.concatenate(
                [
                    mb.x.sum(axis=0)
                    for mb in DenseBatch(
                        s[2], np.zeros((s[2].shape[0], 1))
                    ).micro_split(8)
                ]
            ),
            checksum=_array,
            note="the injection boundary: one batch into 8 micro-batches",
        ),
        BenchOp(
            name="sim.timeout_churn_20k",
            group="sim",
            make_state=lambda: None,
            run=_run_churn,
            checksum=lambda out: checksum_bytes(repr(out).encode()),
        ),
        BenchOp(
            name="simkernel.step_loop_450k",
            group="simkernel",
            make_state=_step_loop_delays,
            prepare=_prepare_step_loop,
            run=_run_step_loop,
            checksum=_simlog,
            note="5k workers x (jittered compute timer + 8 delay-0 service hops)",
        ),
        BenchOp(
            name="simkernel.fifo_pipeline_240k",
            group="simkernel",
            make_state=lambda: None,
            prepare=_prepare_fifo_handoff,
            run=_run_fifo_handoff,
            checksum=_simlog,
            note="three-stage Store relay pipelines with 2k far timers pending",
        ),
        BenchOp(
            name="simkernel.mixed_horizon_371k",
            group="simkernel",
            make_state=_mixed_horizon_delays,
            prepare=_prepare_mixed_horizon,
            run=_run_mixed_horizon,
            checksum=_simlog,
            note="4k short-horizon pollers + 1k far stragglers (re-anchor path)",
        ),
        BenchOp(
            name="e2e.quickstart_pmf",
            group="e2e",
            make_state=lambda: None,
            run=_run_e2e,
            checksum=lambda monitor: monitor.trace_digest(),
            portable=False,
            note="checksum is the monitor trace digest (SIMD-dependent)",
        ),
    ]
    if hasattr(SparseDelta, "_apply_fancy"):
        ops.insert(
            6,
            BenchOp(
                name="scatter.apply_fancy",
                group="scatter",
                make_state=workloads.scatter_state,
                prepare=lambda s: s[1].copy(),
                run=lambda s, dense: (s[0]._apply_fancy(dense), dense)[1],
                checksum=_array,
                note="fancy-index += variant (valid for sorted-unique deltas)",
            ),
        )
    return ops


ALL_OPS: List[BenchOp] = _build_ops()
