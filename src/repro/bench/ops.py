"""The registered microbenchmark ops.

Groups (see :data:`repro.bench.runner.GATED_GROUPS` for which are held
to the compare gate's minimum speedup):

``kernel``
    The per-step sparse kernels: ``matvec``, ``rmatvec_on_support``,
    ``row_slice``.  These dominate a worker's compute (the reason the
    paper rewrote them in Cython).
``merge``
    N-way update merging: ``SparseDelta.merge_many`` (worker step-6 peer
    sum) and ``ModelUpdate.merge_many`` (supervisor aggregation).
``scatter``
    Sparse-into-dense scatter-add variants.  Informational: on current
    NumPy the ``np.add.at`` fast path *beats* a fancy-index ``+=``, and
    this group is where a future NumPy flipping that again would show.
``core``
    Training-state operations: fused peer application, checkpoint
    snapshot.
``sim``
    DES event churn (host-side cost of every simulated second).
``e2e``
    One small end-to-end MLLess job (the determinism oracle's default
    run); its checksum is the monitor trace digest, so a hot-path
    regression that changes convergence is caught right here.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..ml.parameters import ModelUpdate, ParameterSet
from ..ml.sparse import SparseDelta
from . import workloads
from .runner import BenchOp, checksum_bytes

__all__ = ["ALL_OPS"]


# -- checksum helpers -----------------------------------------------------
def _array(arr: np.ndarray) -> str:
    return checksum_bytes(np.ascontiguousarray(arr).tobytes())


def _delta(delta: SparseDelta) -> str:
    return checksum_bytes(
        np.ascontiguousarray(delta.indices).tobytes(),
        np.ascontiguousarray(delta.values).tobytes(),
        repr(delta.shape).encode(),
    )


def _csr(matrix) -> str:
    return checksum_bytes(
        np.ascontiguousarray(matrix.indptr).tobytes(),
        np.ascontiguousarray(matrix.indices).tobytes(),
        np.ascontiguousarray(matrix.data).tobytes(),
        repr(matrix.shape).encode(),
    )


def _update(update: ModelUpdate) -> str:
    chunks: List[bytes] = []
    for name, delta in update:
        chunks.append(name.encode())
        chunks.append(np.ascontiguousarray(delta.indices).tobytes())
        chunks.append(np.ascontiguousarray(delta.values).tobytes())
    return checksum_bytes(*chunks)


def _params(params: ParameterSet) -> str:
    chunks: List[bytes] = []
    for name, tensor in params:
        chunks.append(name.encode())
        chunks.append(np.ascontiguousarray(tensor).tobytes())
    return checksum_bytes(*chunks)


def _checkpoint(ckpt) -> str:
    chunks: List[bytes] = [
        repr((ckpt.worker_id, ckpt.step, ckpt.active_workers)).encode()
    ]
    for name, tensor in ckpt.params:
        chunks.append(name.encode())
        chunks.append(np.ascontiguousarray(tensor).tobytes())
    for slot in sorted(getattr(ckpt.optimizer, "_state", {})):
        for name in sorted(ckpt.optimizer._state[slot]):
            chunks.append(f"{slot}/{name}".encode())
            chunks.append(
                np.ascontiguousarray(ckpt.optimizer._state[slot][name]).tobytes()
            )
    for name in sorted(ckpt.sig_filter._acc):
        chunks.append(name.encode())
        chunks.append(np.ascontiguousarray(ckpt.sig_filter._acc[name]).tobytes())
    return checksum_bytes(*chunks)


# -- op run functions -----------------------------------------------------
def _run_churn(_state, _payload):
    from ..sim import Environment

    def ticker(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    env = Environment()
    for _ in range(50):
        env.process(ticker(env, 400))
    env.run()
    return (env.now, 50 * 400)


def _run_e2e(_state, _payload):
    from ..analysis.determinism import default_run

    return default_run(0)


def _build_ops() -> List[BenchOp]:
    ops = [
        BenchOp(
            name="kernel.matvec",
            group="kernel",
            make_state=workloads.lr_batch,
            run=lambda s, _p: s[0].matvec(s[1]),
            checksum=_array,
        ),
        BenchOp(
            name="kernel.rmatvec_on_support",
            group="kernel",
            make_state=workloads.lr_batch,
            run=lambda s, _p: s[0].rmatvec_on_support(s[2]),
            checksum=_delta,
        ),
        BenchOp(
            name="kernel.row_slice",
            group="kernel",
            make_state=workloads.lr_batch,
            run=lambda s, _p: s[0].row_slice(1_000, 3_000),
            checksum=_csr,
        ),
        BenchOp(
            name="merge.delta_merge_many_16",
            group="merge",
            make_state=workloads.sparse_deltas,
            run=lambda s, _p: SparseDelta.merge_many(s),
            checksum=_delta,
        ),
        BenchOp(
            name="merge.update_merge_many_8",
            group="merge",
            make_state=workloads.model_updates,
            run=lambda s, _p: ModelUpdate.merge_many(s),
            checksum=_update,
        ),
        BenchOp(
            name="scatter.apply_to",
            group="scatter",
            make_state=workloads.scatter_state,
            prepare=lambda s: s[1].copy(),
            run=lambda s, dense: (s[0].apply_to(dense), dense)[1],
            checksum=_array,
            note="np.add.at path (the production scatter)",
        ),
        BenchOp(
            name="core.peer_apply_8",
            group="core",
            make_state=workloads.peer_state,
            prepare=lambda s: s[0].copy(),
            run=lambda s, params: (params.apply_many(s[1]), params)[1],
            checksum=_params,
        ),
        BenchOp(
            name="core.checkpoint_snapshot",
            group="core",
            make_state=workloads.warmed_checkpoint,
            run=lambda s, _p: s.snapshot(),
            checksum=_checkpoint,
        ),
        BenchOp(
            name="sim.timeout_churn_20k",
            group="sim",
            make_state=lambda: None,
            run=_run_churn,
            checksum=lambda out: checksum_bytes(repr(out).encode()),
        ),
        BenchOp(
            name="e2e.quickstart_pmf",
            group="e2e",
            make_state=lambda: None,
            run=_run_e2e,
            checksum=lambda monitor: monitor.trace_digest(),
            portable=False,
            note="checksum is the monitor trace digest (SIMD-dependent)",
        ),
    ]
    if hasattr(SparseDelta, "_apply_fancy"):
        ops.insert(
            6,
            BenchOp(
                name="scatter.apply_fancy",
                group="scatter",
                make_state=workloads.scatter_state,
                prepare=lambda s: s[1].copy(),
                run=lambda s, dense: (s[0]._apply_fancy(dense), dense)[1],
                checksum=_array,
                note="fancy-index += variant (valid for sorted-unique deltas)",
            ),
        )
    return ops


ALL_OPS: List[BenchOp] = _build_ops()
