"""Host-side benchmark subcommands: DES kernel and execution backends.

Two entry points behind ``python -m repro.bench``:

``kernel``
    Runs the ``simkernel`` event-throughput group (the committed
    before/after pair ``BENCH_kernel_baseline.json`` /
    ``BENCH_kernel_optimized.json`` gates these ops at >=2x in CI).
    With ``--profile`` it additionally replays the heaviest op's
    workload under the kernel's instrumented run loop
    (:meth:`~repro.sim.core.Environment.enable_profile`) and reports a
    per-event-type count/time breakdown plus the timeout-delay
    histogram — the measurements that sized the timer wheel.

``backend``
    Times the *same* training job on the thread backend and the
    process backend and reports step throughput for both.  The
    speedup ratio is only meaningful on multi-core hosts, so the
    ``--check-ratio`` gate is CPU-aware: it enforces the >=1.5x
    procs-over-local requirement only when the host has at least
    ``_RATIO_MIN_CPUS`` cores, and records the host core count in the
    JSON either way so a single-core CI runner produces honest,
    ungated numbers.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict

from .ops import ALL_OPS
from .runner import run_suite, write_results

__all__ = ["run_kernel_bench", "run_backend_bench"]

#: the procs-over-local ratio gate only applies on hosts with >= this
#: many cores — below it the GIL-bound and parallel paths are the same
_RATIO_MIN_CPUS = 4

#: required procs-over-local step-throughput ratio on multi-core hosts
_REQUIRED_RATIO = 1.5


def _print(msg: str) -> None:
    print(msg, file=sys.stderr)


# -- kernel -----------------------------------------------------------------


def _profile_step_loop() -> Dict[str, Any]:
    """Replay the step-loop workload under the instrumented kernel loop."""
    from .ops import _prepare_step_loop, _step_loop_delays

    env, _log = _prepare_step_loop(_step_loop_delays())
    env.enable_profile(time.perf_counter_ns)
    env.run()
    return env.profile_report()


def format_profile(report: Dict[str, Any]) -> str:
    """Render a profile report as an aligned text table."""
    lines = ["per-event-type breakdown:"]
    total_ns = sum(e["total_ns"] for e in report["event_types"].values()) or 1
    for name, entry in report["event_types"].items():
        count, ns = entry["count"], entry["total_ns"]
        lines.append(
            f"  {name:<12} {count:>10} events  {ns / 1e6:>10.3f} ms callback "
            f"({100.0 * ns / total_ns:5.1f}%, {ns / max(count, 1):,.0f} ns/event)"
        )
    lines.append("timeout-delay histogram:")
    for bucket in report["timeout_delays"]:
        upper = "inf" if bucket["lt_s"] is None else f"{bucket['lt_s']:g}"
        lines.append(
            f"  [{bucket['ge_s']:g}s, {upper}s)  {bucket['count']:>10}"
        )
    return "\n".join(lines)


def run_kernel_bench(
    name: str = "kernel",
    out_dir: str = ".",
    quick: bool = False,
    profile: bool = False,
) -> int:
    """Run the simkernel group; optionally attach the profile breakdown."""
    only = [op.name for op in ALL_OPS if op.group == "simkernel"]
    doc = run_suite(ALL_OPS, name=name, quick=quick, only=only, progress=_print)
    if profile:
        report = _profile_step_loop()
        doc["profile"] = report
        print(format_profile(report))
    path = write_results(doc, out_dir)
    for entry in doc["ops"]:
        print(
            f"  {entry['p50_ns'] / 1e6:10.3f} ms p50  "
            f"{entry['p95_ns'] / 1e6:10.3f} ms p95  "
            f"{entry['p99_ns'] / 1e6:10.3f} ms p99  {entry['op']}"
        )
    print(f"wrote {path}")
    return 0


# -- backend ----------------------------------------------------------------


def _time_backend(backend: str, config: Any) -> Dict[str, Any]:
    """Run one job on a backend; returns throughput facts."""
    from ..experiments.common import run_mlless

    result = run_mlless(config, backend=backend)
    exec_time = max(result.exec_time, 1e-9)
    return {
        "backend": backend,
        "steps": result.total_steps,
        "exec_time_s": exec_time,
        "steps_per_s": result.total_steps / exec_time,
        "final_loss": result.final_loss,
    }


def run_backend_bench(
    name: str = "backend",
    out_dir: str = ".",
    workers: int = 4,
    max_steps: int = 25,
    workload: str = "pmf-ml10m",
    check_ratio: bool = False,
) -> int:
    """Local-vs-procs step throughput on one training job.

    Writes ``BENCH_<name>.json`` with a ``backend`` section (both
    runs, the ratio, and the host core count).  ``check_ratio``
    enforces the >=1.5x procs-over-local gate — but only on hosts with
    at least :data:`_RATIO_MIN_CPUS` cores, where parallelism can
    exist; elsewhere the numbers are recorded and the gate reports
    itself skipped.
    """
    from ..experiments.common import mlless_config
    from ..experiments.settings import make_workload

    config_kwargs = dict(
        n_workers=workers, target_loss=None, max_steps=max_steps
    )
    cpus = os.cpu_count() or 1
    _print(f"backend bench: {workload}, {workers} workers, "
           f"{max_steps} steps, host has {cpus} cpu(s)")

    runs = []
    for backend in ("local", "procs"):
        _print(f"  running {backend} ...")
        wl = make_workload(workload)
        runs.append(_time_backend(backend, mlless_config(wl, **config_kwargs)))

    local, procs = runs
    ratio = procs["steps_per_s"] / max(local["steps_per_s"], 1e-12)
    doc = {
        "schema_version": 1,
        "name": name,
        "host_cpus": cpus,
        "workload": workload,
        "workers": workers,
        "backend": {
            "runs": runs,
            "procs_over_local": ratio,
            "ratio_gate_cpus": _RATIO_MIN_CPUS,
            "required_ratio": _REQUIRED_RATIO,
            "ratio_gated": cpus >= _RATIO_MIN_CPUS,
        },
    }
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for run in runs:
        print(
            f"  {run['backend']:<6} {run['steps_per_s']:8.2f} steps/s "
            f"({run['steps']} steps in {run['exec_time_s']:.2f}s)"
        )
    print(f"  procs/local ratio: {ratio:.2f}x")
    print(f"wrote {path}")

    if check_ratio:
        if cpus < _RATIO_MIN_CPUS:
            print(
                f"ratio gate SKIPPED: host has {cpus} cpu(s) < "
                f"{_RATIO_MIN_CPUS} — parallel speedup is not measurable here"
            )
            return 0
        if ratio < _REQUIRED_RATIO:
            print(
                f"FAIL: procs/local ratio {ratio:.2f}x below required "
                f"{_REQUIRED_RATIO}x on a {cpus}-cpu host"
            )
            return 1
        print(f"PASS: procs/local ratio {ratio:.2f}x >= {_REQUIRED_RATIO}x")
    return 0
