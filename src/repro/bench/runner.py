"""Microbenchmark runner: time registered ops, checksum their outputs.

Methodology
-----------

Each :class:`BenchOp` builds its workload once (``make_state``), runs a
few untimed warmup repetitions, then times ``reps`` calls of ``run``
with ``time.perf_counter_ns``.  Ops that mutate their input get a fresh
per-rep payload from ``prepare`` *outside* the timed region, so the
numbers measure the kernel, not the copy.  The report records p50/p95
wall-nanoseconds **and a sha256 checksum of the final output**, so an
"optimization" that changes results cannot silently pass — the compare
mode refuses speedups whose checksums drifted.

``portable`` marks ops whose checksum is expected to be bit-stable
across machines (integer manipulation, sequential float accumulation).
Ops built on SIMD-reassociated reductions (the end-to-end run's einsum)
are non-portable: their checksum is only comparable on one machine, and
``compare(..., portable_only=True)`` skips them (what CI does when
checking a runner's output against the committed baseline).

Results are written as ``BENCH_<name>.json``; ``compare`` diffs two such
documents and enforces the checksum and minimum-speedup gates.
"""

from __future__ import annotations

import gc
import hashlib
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BenchOp",
    "CompareResult",
    "checksum_bytes",
    "compare",
    "run_suite",
    "write_results",
]

#: bump when the JSON layout changes incompatibly
SCHEMA_VERSION = 1

#: (reps, warmup) per group for full runs; --quick cuts reps, never sizes
_FULL_REPS = {
    "kernel": (30, 3),
    "merge": (30, 3),
    "scatter": (30, 3),
    "core": (20, 2),
    "sim": (10, 1),
    "simkernel": (10, 2),
    "backend": (3, 1),
    "pipeline": (20, 2),
    "e2e": (2, 1),
    "platform": (3, 1),
}
_QUICK_REPS = {
    "kernel": (5, 1),
    "merge": (5, 1),
    "scatter": (5, 1),
    "core": (5, 1),
    "sim": (3, 1),
    "simkernel": (3, 1),
    "backend": (1, 0),
    "pipeline": (5, 1),
    "e2e": (1, 0),
    "platform": (2, 0),
}

#: groups the compare gate holds to the minimum speedup (the tentpole's
#: measurable promise); the rest are tracked informationally.
#: ``simkernel`` is the DES-kernel event-throughput group: its gate runs
#: against the committed BENCH_kernel_baseline.json (captured on the
#: pre-timer-wheel kernel), not against BENCH_baseline.json.
GATED_GROUPS = ("kernel", "merge", "simkernel")


@dataclass(frozen=True)
class BenchOp:
    """One registered microbenchmark.

    ``run(state, payload)`` is the timed region; ``prepare(state)`` (when
    set) produces a fresh ``payload`` before every rep, untimed — use it
    for ops that mutate their input.  ``checksum(output)`` hashes the
    final rep's return value.
    """

    name: str
    group: str
    make_state: Callable[[], Any]
    run: Callable[[Any, Any], Any]
    checksum: Callable[[Any], str]
    prepare: Optional[Callable[[Any], Any]] = None
    portable: bool = True
    note: str = ""


def checksum_bytes(*chunks: bytes) -> str:
    """sha256 over a sequence of byte chunks (length-prefixed)."""
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(len(chunk).to_bytes(8, "little"))
        digest.update(chunk)
    return digest.hexdigest()


def _percentile_ns(samples: Sequence[int], q: float) -> int:
    return int(np.percentile(np.asarray(samples, dtype=np.int64), q))


def _time_op(op: BenchOp, reps: int, warmup: int) -> Dict[str, Any]:
    state = op.make_state()
    for _ in range(warmup):
        payload = op.prepare(state) if op.prepare else None
        op.run(state, payload)
    samples: List[int] = []
    output: Any = None
    # Collector pauses would otherwise land inside arbitrary reps and
    # skew percentiles; collect between reps (untimed) instead.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            payload = op.prepare(state) if op.prepare else None
            gc.collect()
            start = time.perf_counter_ns()
            output = op.run(state, payload)
            samples.append(time.perf_counter_ns() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    entry = {
        "op": op.name,
        "group": op.group,
        "reps": reps,
        "p50_ns": _percentile_ns(samples, 50),
        "p95_ns": _percentile_ns(samples, 95),
        "p99_ns": _percentile_ns(samples, 99),
        "checksum": op.checksum(output),
        "portable_checksum": op.portable,
    }
    if op.note:
        entry["note"] = op.note
    return entry


def run_suite(
    ops: Sequence[BenchOp],
    name: str,
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run ``ops`` (optionally filtered to ``only``) into a result doc."""
    selected = [op for op in ops if only is None or op.name in only]
    if only is not None:
        known = {op.name for op in ops}
        missing = [n for n in only if n not in known]
        if missing:
            raise ValueError(f"unknown ops: {', '.join(missing)}")
    reps_table = _QUICK_REPS if quick else _FULL_REPS
    results = []
    for op in selected:
        if progress:
            progress(f"  {op.name} ...")
        reps, warmup = reps_table.get(op.group, (10, 1))
        results.append(_time_op(op, reps, warmup))
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "ops": results,
    }


def write_results(doc: Dict[str, Any], out_dir: str) -> str:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path."""
    import os

    path = os.path.join(out_dir, f"BENCH_{doc['name']}.json")
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@dataclass
class CompareResult:
    """Outcome of diffing two benchmark documents."""

    ok: bool
    lines: List[str] = field(default_factory=list)
    #: op -> (baseline_p50_ns, new_p50_ns, speedup)
    speedups: Dict[str, Tuple[int, int, float]] = field(default_factory=dict)


def compare(
    baseline: Dict[str, Any],
    new: Dict[str, Any],
    min_speedup: float = 0.0,
    gated_groups: Sequence[str] = GATED_GROUPS,
    portable_only: bool = False,
) -> CompareResult:
    """Diff two result documents: checksums must match, gates must hold.

    Checksum equality is enforced for every op present in both documents
    (restricted to portable ops when ``portable_only`` — the
    cross-machine CI mode).  When ``min_speedup`` > 0, every op in a
    gated group must be at least that much faster (p50) in ``new``.
    """
    result = CompareResult(ok=True)
    base_ops = {entry["op"]: entry for entry in baseline["ops"]}
    new_ops = {entry["op"]: entry for entry in new["ops"]}
    for op_name, base in base_ops.items():
        entry = new_ops.get(op_name)
        if entry is None:
            result.lines.append(f"warn: {op_name}: missing from new results")
            continue
        both_portable = base["portable_checksum"] and entry["portable_checksum"]
        if portable_only and not both_portable:
            result.lines.append(f"skip: {op_name}: non-portable checksum")
        elif base["checksum"] != entry["checksum"]:
            result.ok = False
            result.lines.append(
                f"FAIL: {op_name}: checksum drift "
                f"({base['checksum'][:12]}… -> {entry['checksum'][:12]}…) — "
                "the optimization changed numeric results"
            )
        speedup = base["p50_ns"] / max(entry["p50_ns"], 1)
        result.speedups[op_name] = (base["p50_ns"], entry["p50_ns"], speedup)
        gated = entry["group"] in gated_groups and min_speedup > 0
        verdict = f"{speedup:6.2f}x  {op_name} ({entry['group']})"
        if gated and speedup < min_speedup:
            result.ok = False
            result.lines.append(f"FAIL: {verdict} — below required {min_speedup}x")
        else:
            result.lines.append(f"ok:   {verdict}")
    for op_name in new_ops:
        if op_name not in base_ops:
            result.lines.append(f"note: {op_name}: new op (no baseline)")
    return result
