"""Command-line interface for the microbenchmark suite.

Run the suite and write ``BENCH_<name>.json``::

    python -m repro.bench --name baseline
    python -m repro.bench --quick --name ci --out artifacts/

Diff two result files (checksum equality + minimum-speedup gate on the
kernel/merge groups)::

    python -m repro.bench --compare BENCH_baseline.json BENCH_optimized.json
    python -m repro.bench --compare BENCH_baseline.json BENCH_ci.json \
        --min-speedup 0 --portable-only     # cross-machine CI mode

The platform-scale benchmark is a separate suite with its own CLI
(``python -m repro.platform``); ``python -m repro.bench platform ...``
forwards to it, so both suites hang off one entry point.

Host-side subcommands (see :mod:`repro.bench.hostbench`)::

    python -m repro.bench kernel --profile      # DES kernel group +
                                                # per-event-type breakdown
    python -m repro.bench backend --workers 4   # local-vs-procs step
                                                # throughput (CPU-aware gate)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .ops import ALL_OPS
from .runner import GATED_GROUPS, compare, run_suite, write_results

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Hot-path microbenchmarks with checksummed outputs.",
    )
    parser.add_argument(
        "--name", default="local", help="result name: writes BENCH_<name>.json"
    )
    parser.add_argument("--out", default=".", help="output directory (default: .)")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer repetitions, identical workload sizes (checksums comparable)",
    )
    parser.add_argument(
        "--ops", default=None, help="comma-separated op names to run (default: all)"
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_ops", help="list ops and exit"
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "NEW"),
        help="diff two BENCH_*.json files instead of running the suite",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="gate: required p50 speedup for kernel/merge ops (0 disables; default 2.0)",
    )
    parser.add_argument(
        "--portable-only",
        action="store_true",
        help="compare: only enforce checksums marked portable (cross-machine runs)",
    )
    return parser


def _run_compare(args: argparse.Namespace) -> int:
    baseline_path, new_path = args.compare
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(new_path) as handle:
        new = json.load(handle)
    result = compare(
        baseline,
        new,
        min_speedup=args.min_speedup,
        gated_groups=GATED_GROUPS,
        portable_only=args.portable_only,
    )
    print(f"compare: {baseline['name']} -> {new['name']}")
    for line in result.lines:
        print(f"  {line}")
    if result.ok:
        gated = [
            s for op, (_, _, s) in result.speedups.items()
            if any(op.startswith(f"{g}.") for g in GATED_GROUPS)
        ]
        if gated and args.min_speedup > 0:
            print(
                f"PASS: all gated ops >= {args.min_speedup}x "
                f"(min observed {min(gated):.2f}x), checksums intact"
            )
        else:
            print("PASS: checksums intact")
        return 0
    print("FAIL: see lines above")
    return 1


def _kernel_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench kernel",
        description="DES kernel event-throughput group (simkernel ops).",
    )
    parser.add_argument("--name", default="kernel",
                        help="result name: writes BENCH_<name>.json")
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions, identical workload sizes")
    parser.add_argument(
        "--profile", action="store_true",
        help="also replay the step-loop workload under the instrumented "
        "kernel loop and report per-event-type count/time + the "
        "timeout-delay histogram (embedded in the JSON)",
    )
    return parser


def _backend_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench backend",
        description="Step throughput of the local (threads) vs procs "
        "(processes + shared memory) execution backends on one job.",
    )
    parser.add_argument("--name", default="backend",
                        help="result name: writes BENCH_<name>.json")
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker pool size for both backends")
    parser.add_argument("--max-steps", type=int, default=25,
                        help="training steps per run")
    parser.add_argument("--workload", default="pmf-ml10m",
                        help="workload name (see repro.cli --list)")
    parser.add_argument(
        "--check-ratio", action="store_true",
        help="fail if procs/local < 1.5x — enforced only on hosts with "
        ">=4 cpus; single-core runners record numbers and skip the gate",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "platform":
        from ..platform.cli import main as platform_main

        return platform_main(argv[1:])
    if argv and argv[0] == "kernel":
        from .hostbench import run_kernel_bench

        opts = _kernel_parser().parse_args(argv[1:])
        return run_kernel_bench(
            name=opts.name, out_dir=opts.out,
            quick=opts.quick, profile=opts.profile,
        )
    if argv and argv[0] == "backend":
        from .hostbench import run_backend_bench

        opts = _backend_parser().parse_args(argv[1:])
        return run_backend_bench(
            name=opts.name, out_dir=opts.out, workers=opts.workers,
            max_steps=opts.max_steps, workload=opts.workload,
            check_ratio=opts.check_ratio,
        )
    args = build_parser().parse_args(argv)
    if args.list_ops:
        for op in ALL_OPS:
            suffix = f" — {op.note}" if op.note else ""
            print(f"{op.name}  [{op.group}]{suffix}")
        return 0
    if args.compare:
        return _run_compare(args)
    only = args.ops.split(",") if args.ops else None
    try:
        doc = run_suite(
            ALL_OPS,
            name=args.name,
            quick=args.quick,
            only=only,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = write_results(doc, args.out)
    for entry in doc["ops"]:
        print(
            f"  {entry['p50_ns'] / 1e6:10.3f} ms p50  "
            f"{entry['p95_ns'] / 1e6:10.3f} ms p95  {entry['op']}"
        )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
