"""Seeded workload builders for the microbenchmark suite.

Every builder takes an explicit seed and constructs its inputs through a
local ``np.random.default_rng`` (allowlisted for SIM002 in pyproject:
benchmarks are host-side tooling, not simulated components, but they
still must be reproducible so the committed ``BENCH_*.json`` checksums
mean something).  Sizes are fixed constants — ``--quick`` reduces
repetitions, never shapes — so checksums from quick and full runs are
directly comparable.

The shapes are picked to look like the paper's workloads: the CSR batch
matches a sparse-LR Criteo-style slice (thousands of rows, a huge
feature space, a few dozen features per row); the deltas and model
updates match ISP-filtered PMF/LR broadcasts (a few thousand touched
entries over a large tensor).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.runtime import WorkerCheckpoint
from ..core.significance import SignificanceFilter
from ..ml.optim import InverseSqrtLR, MomentumSGD
from ..ml.parameters import ModelUpdate, ParameterSet
from ..ml.sparse import CSRMatrix, SparseDelta

__all__ = [
    "lr_batch",
    "sparse_deltas",
    "model_updates",
    "peer_state",
    "scatter_state",
    "warmed_checkpoint",
    "mlp_stage_state",
]

#: sparse-LR batch: rows x cols with nnz_per_row stored entries each
_BATCH_ROWS = 4_000
_BATCH_COLS = 200_000
_BATCH_NNZ_PER_ROW = 60

#: ISP-style deltas: draws per delta over a flat tensor of _DELTA_SIZE
_DELTA_COUNT = 16
_DELTA_DRAWS = 9_000
_DELTA_SIZE = 400_000

#: two-tensor model updates (PMF-style U/M factors, flattened)
_UPDATE_COUNT = 8
_UPDATE_DRAWS = 5_000
_TENSOR_SIZES = {"U": 50_000, "M": 40_000}


def lr_batch(seed: int = 101) -> Tuple[CSRMatrix, np.ndarray, np.ndarray]:
    """A sparse-LR minibatch: ``(X, w, r)`` for matvec / rmatvec kernels."""
    rng = np.random.default_rng(seed)
    nnz = _BATCH_ROWS * _BATCH_NNZ_PER_ROW
    indptr = np.arange(_BATCH_ROWS + 1, dtype=np.int64) * _BATCH_NNZ_PER_ROW
    indices = rng.integers(0, _BATCH_COLS, size=nnz).astype(np.int32)
    data = rng.standard_normal(nnz)
    matrix = CSRMatrix(indptr, indices, data, (_BATCH_ROWS, _BATCH_COLS))
    w = rng.standard_normal(_BATCH_COLS)
    r = rng.standard_normal(_BATCH_ROWS)
    return matrix, w, r


def _random_delta(rng: np.random.Generator, size: int, draws: int) -> SparseDelta:
    """A delta with sorted-unique indices, like every kernel output."""
    idx = np.unique(rng.integers(0, size, size=draws))
    return SparseDelta(idx, rng.standard_normal(len(idx)), (size,))


def sparse_deltas(seed: int = 202) -> List[SparseDelta]:
    """K ISP-filtered peer deltas over the same flat tensor."""
    rng = np.random.default_rng(seed)
    return [
        _random_delta(rng, _DELTA_SIZE, _DELTA_DRAWS) for _ in range(_DELTA_COUNT)
    ]


def model_updates(seed: int = 303) -> List[ModelUpdate]:
    """K two-tensor model updates (what the supervisor aggregates)."""
    rng = np.random.default_rng(seed)
    return [
        ModelUpdate(
            {
                name: _random_delta(rng, size, _UPDATE_DRAWS)
                for name, size in _TENSOR_SIZES.items()
            }
        )
        for _ in range(_UPDATE_COUNT)
    ]


def peer_state(seed: int = 404) -> Tuple[ParameterSet, List[ModelUpdate]]:
    """A dense model plus the peer updates a worker applies at step 6."""
    rng = np.random.default_rng(seed)
    params = ParameterSet(
        {name: rng.standard_normal(size) for name, size in _TENSOR_SIZES.items()}
    )
    return params, model_updates(seed + 1)


def scatter_state(seed: int = 606) -> Tuple[SparseDelta, np.ndarray]:
    """One delta plus the dense tensor it scatters into."""
    rng = np.random.default_rng(seed)
    delta = _random_delta(rng, _DELTA_SIZE, _DELTA_DRAWS)
    dense = rng.standard_normal(_DELTA_SIZE)
    return delta, dense


def warmed_checkpoint(seed: int = 505) -> WorkerCheckpoint:
    """A worker checkpoint with non-trivial optimizer and filter state.

    The optimizer takes a few real steps so its momentum buffers exist
    and the significance accumulators are non-zero — ``snapshot()`` must
    copy all of it, exactly like mid-training checkpointing does.
    """
    rng = np.random.default_rng(seed)
    shapes = {"U": (800, 8), "M": (600, 8)}
    params = ParameterSet(
        {name: 0.1 * rng.standard_normal(shape) for name, shape in shapes.items()}
    )
    optimizer = MomentumSGD(lr=InverseSqrtLR(0.5), momentum=0.9)
    sig_filter = SignificanceFilter(v=0.5, shapes={n: params[n].shape for n in shapes})
    for t in range(1, 4):
        deltas = {}
        for name in shapes:
            idx = np.unique(rng.integers(0, params[name].size, size=800))
            vals = 0.01 * rng.standard_normal(len(idx))
            deltas[name] = SparseDelta(idx, vals, params[name].shape)
        grad = ModelUpdate(deltas)
        update = optimizer.step(params, grad, t)
        params.apply(update)
        sig_filter.step(params, update, t)
    return WorkerCheckpoint(
        worker_id=0,
        step=3,
        params=params,
        optimizer=optimizer,
        sig_filter=sig_filter,
        active_workers=3,
        last_report={"type": "step_done", "step": 3, "worker": 0},
    )


#: pipeline stage bench: a mid-sized MLP slice and one micro-batch
_MLP_STAGE_SIZES = [64, 256, 256, 128, 1]
_MLP_STAGE_ROWS = 2_000


def mlp_stage_state(seed: int = 707):
    """A middle pipeline stage's inputs: ``(model, params, x, layers)``.

    The layered MLP's full seeded parameter set plus a dense activation
    block the size of one injected micro-batch; ``layers`` selects the
    middle weight layer, the slice a three-stage split hands to stage 1.
    """
    from ..ml.models import LayeredMLP

    rng = np.random.default_rng(seed)
    model = LayeredMLP(_MLP_STAGE_SIZES)
    params = model.init_params(np.random.default_rng(seed + 1))
    layers = model.stage_layers(3)[1]
    x = rng.standard_normal((_MLP_STAGE_ROWS, _MLP_STAGE_SIZES[layers[0]]))
    return model, params, x, layers
