"""Hot-path microbenchmark suite (``python -m repro.bench``).

Times the sparse kernels, n-way merges, checkpoint snapshots, DES event
churn and one end-to-end quickstart job; writes ``BENCH_<name>.json``
with p50/p95 wall-nanoseconds **and output checksums**, so recorded
speedups are tied to bit-identical results.  ``--compare`` diffs two
result files and gates the kernel/merge groups on a minimum speedup.

See DESIGN.md "Hot-path performance" for what is cached where and why
the caches cannot go stale.
"""

from .ops import ALL_OPS
from .runner import (
    GATED_GROUPS,
    BenchOp,
    CompareResult,
    checksum_bytes,
    compare,
    run_suite,
    write_results,
)

__all__ = [
    "ALL_OPS",
    "GATED_GROUPS",
    "BenchOp",
    "CompareResult",
    "checksum_bytes",
    "compare",
    "run_suite",
    "write_results",
]
