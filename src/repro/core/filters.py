"""Alternative update filters for the accumulation ablation.

The paper's ISP filter has two ingredients: a *relative-magnitude*
significance test and *accumulation* of the filtered-out remainder
(§4.1: the eventually-broadcast update "encodes the complete history of
its non-significant updates").  These variants isolate each ingredient:

``DropInsignificantFilter``
    Same relative test, **no accumulation**: insignificant entries are
    discarded outright.  Violates the conservation property that
    Theorem 1's bounded-divergence argument rests on — the ablation shows
    what that costs in convergence.

``TopKFilter``
    Accumulates like ISP but selects by **absolute** magnitude: the k
    largest accumulated entries are broadcast each step, a fixed
    compression ratio regardless of training phase.

All filters share the :class:`SignificanceFilter` interface (``step``,
``residual_update``, ``accumulated``), so workers use them
interchangeably via ``JobConfig.make_filter``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ml.parameters import ModelUpdate, ParameterSet
from ..ml.sparse import SparseDelta
from .significance import SignificanceFilter, threshold_at

__all__ = ["DropInsignificantFilter", "TopKFilter"]

_X_EPS = 1e-8


class DropInsignificantFilter(SignificanceFilter):
    """Relative-significance test without accumulation (lossy)."""

    def step(self, params: ParameterSet, update: ModelUpdate, t: int) -> ModelUpdate:
        """Broadcast significant entries of THIS update; drop the rest."""
        v_t = threshold_at(self.v, t)
        deltas: Dict[str, SparseDelta] = {}
        for name in self._acc:
            if name in update:
                delta = update[name]
            else:
                delta = SparseDelta.empty(self._acc[name].shape)
            if delta.nnz == 0 or v_t <= 0:
                deltas[name] = delta
                continue
            x = np.abs(np.ravel(params[name])[delta.indices]) + _X_EPS
            keep = np.abs(delta.values) / x > v_t
            deltas[name] = SparseDelta(
                delta.indices[keep], delta.values[keep], delta.shape
            )
        return ModelUpdate(deltas)


class TopKFilter(SignificanceFilter):
    """Accumulate, then broadcast the k-largest absolute entries."""

    def __init__(self, k_fraction: float, shapes: Dict[str, tuple]):
        if not 0 < k_fraction <= 1:
            raise ValueError(f"k_fraction must be in (0, 1], got {k_fraction}")
        # Reuse the accumulator machinery with a dummy threshold.
        super().__init__(0.0, shapes)
        self.k_fraction = k_fraction

    def extract_significant(self, params: ParameterSet, t: int) -> ModelUpdate:
        deltas: Dict[str, SparseDelta] = {}
        for name, acc in self._acc.items():
            flat = np.ravel(acc)
            candidate = np.flatnonzero(flat)
            if len(candidate) == 0:
                deltas[name] = SparseDelta.empty(acc.shape)
                continue
            k = max(1, int(np.ceil(self.k_fraction * len(candidate))))
            magnitudes = np.abs(flat[candidate])
            top = candidate[np.argsort(magnitudes)[-k:]]
            top.sort()
            deltas[name] = SparseDelta(top, flat[top].copy(), acc.shape)
            flat[top] = 0.0
        return ModelUpdate(deltas)
