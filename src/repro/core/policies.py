"""Synchronization policies as data.

The paper runs three synchronization modes — BSP (per-step barrier, the
default), ISP (BSP plus the significance filter, §3.2) and SSP (the
relaxation §3.1 notes is "easy enough to integrate") — and PR 5 left
them as two hand-written worker/supervisor loop pairs.  This module
makes the mode a *data-carrying policy object* consumed by one unified
step machine (:mod:`repro.core.step_machine`): the per-step skeleton is
written once, and a :class:`SyncPolicy` tells it

* which **family** of coordination to run — ``barrier`` (report to the
  supervisor, block on its ``step_complete`` release) or ``gossip``
  (announce updates directly to peers, block only on the staleness
  gate);
* whether per-step/barrier **spans** are traced (the barrier family
  opens them; gossip has no barrier wait to attribute);
* the gossip **staleness** bound; and
* how update contributions are **scaled** — by the *current* pool size
  (``active``: barrier runs shrink under scale-in, and an
  adaptively-switched job keeps its shrunken pool) or the *configured*
  one (``configured``: plain SSP runs without the auto-tuner).

The SMLT-style adaptive mode starts as a barrier policy and hops to
:func:`gossip_policy` mid-job when the supervisor's
:class:`~repro.core.adaptive.AdaptiveController` orders the switch.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BARRIER",
    "GOSSIP",
    "SyncPolicy",
    "resolve_policy",
    "gossip_policy",
]

#: coordination families
BARRIER = "barrier"
GOSSIP = "gossip"

#: update-scaling modes
SCALE_ACTIVE = "active"
SCALE_CONFIGURED = "configured"


@dataclass(frozen=True)
class SyncPolicy:
    """One synchronization mode, as data the step machine interprets."""

    #: display name: "bsp", "isp", "ssp" or "adaptive"
    name: str
    #: coordination family: BARRIER or GOSSIP
    family: str
    #: open per-step/barrier tracer spans (barrier family only — gossip
    #: has no collective wait whose self-time would mean anything)
    traced_steps: bool
    #: gossip: max steps a worker may lead the slowest peer
    staleness: int
    #: update scaling: SCALE_ACTIVE (1/current pool) or
    #: SCALE_CONFIGURED (1/configured pool)
    scale_mode: str


def resolve_policy(config) -> SyncPolicy:
    """The policy a job starts under, from its :class:`JobConfig`."""
    if config.sync == "ssp":
        return SyncPolicy(
            name="ssp",
            family=GOSSIP,
            traced_steps=False,
            staleness=config.ssp_staleness,
            scale_mode=SCALE_CONFIGURED,
        )
    if config.sync == "adaptive":
        return SyncPolicy(
            name="adaptive",
            family=BARRIER,
            traced_steps=True,
            staleness=config.ssp_staleness,
            scale_mode=SCALE_ACTIVE,
        )
    return SyncPolicy(
        name=config.sync_model,  # "bsp" or "isp" depending on v
        family=BARRIER,
        traced_steps=True,
        staleness=0,
        scale_mode=SCALE_ACTIVE,
    )


def gossip_policy(config) -> SyncPolicy:
    """The policy an adaptive job hops to when the controller orders it.

    Unlike plain SSP this keeps SCALE_ACTIVE: the barrier phase may have
    shrunk the pool, and update contributions must keep averaging over
    the workers that actually remain.
    """
    return SyncPolicy(
        name="adaptive",
        family=GOSSIP,
        traced_steps=False,
        staleness=config.ssp_staleness,
        scale_mode=SCALE_ACTIVE,
    )
