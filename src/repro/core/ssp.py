"""The gossip synchronization family: SSP workers and supervisor.

The paper's default synchronization is BSP, but §3.1 notes that "less
strict synchronization models such as SSP [13] are easy enough to
integrate".  This module integrates it:

* workers announce each (significance-filtered) update **directly to
  their peers** through the messaging exchange — no per-step barrier;
* a worker at step ``t`` only blocks when the slowest peer is more than
  ``ssp_staleness`` steps behind;
* the supervisor still aggregates per-step losses and broadcasts a
  ``control(stop)`` order when the convergence criterion is met.

The significance filter composes unchanged (ISP-over-SSP); the scale-in
auto-tuner is BSP-only (enforced by :class:`~repro.core.config.JobConfig`).

Like the barrier family, this is a *synchronization policy* of the shared
training core, not a parallel implementation: the per-step fetch →
compute → gradient → filter → publish sequence is
:func:`repro.core.worker.train_step`, driven by the same
:func:`repro.core.step_machine.worker_machine` skeleton.  This module
contributes the **gossip family** phases (:class:`GossipWorkerPhases`:
drain + staleness gate / peer broadcast) and the gossip supervisor epoch
— which the adaptive mode also enters mid-job after a ``sync_switch``
handoff, with the pool size it inherited from the barrier phase.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..exec.protocols import ExecutionContext, Machine
from . import messages
from .policies import SCALE_CONFIGURED, SyncPolicy
from .runtime import JobRuntime, WorkerCheckpoint
from .step_machine import StepSpans, supervisor_machine, worker_machine
from .worker import _fresh_checkpoint

__all__ = ["ssp_worker_loop", "ssp_supervisor_loop", "GossipWorkerPhases"]


class _SSPView:
    """A worker's view of peer progress and pending control orders."""

    def __init__(self, worker_id: int, n_workers: int):
        self.peer_progress: Dict[int, int] = {
            p: 0 for p in range(n_workers) if p != worker_id
        }
        self.stop = False

    def slowest_peer_step(self) -> int:
        if not self.peer_progress:
            return 10**12  # no peers: never blocks
        return min(self.peer_progress.values())

    @property
    def nbytes(self) -> int:
        """Wire size when checkpointed alongside the worker state."""
        return 16 + 16 * len(self.peer_progress)


def _handle_message(
    sv: Any,
    runtime: JobRuntime,
    state: WorkerCheckpoint,
    view: _SSPView,
    message: Dict[str, Any],
) -> Machine:
    mtype = messages.validate(message)
    if mtype == messages.UPDATE_AVAILABLE:
        peer, step = message["worker"], message["step"]
        view.peer_progress[peer] = max(view.peer_progress.get(peer, 0), step)
        if message["has_update"]:
            update = yield sv.kv_get(runtime.update_key(step, peer))
            state.params.apply(update)
    elif mtype == messages.CONTROL:
        if message["command"] == "stop":
            view.stop = True
    else:
        raise RuntimeError(f"SSP worker got unexpected {mtype!r}")


class GossipWorkerPhases:
    """The gossip (SSP, and post-switch adaptive) worker phases."""

    def __init__(
        self, ectx: ExecutionContext, runtime: JobRuntime, policy: SyncPolicy
    ):
        self.ectx = ectx
        self.runtime = runtime
        self.policy = policy
        self.view: _SSPView = None
        self.partition: List[int] = []
        self.my_queue = ""
        self.started = 0.0

    def restore(self, payload: Dict[str, Any]) -> Machine:
        """Fresh replica + view, checkpoint resume, or barrier handoff."""
        runtime = self.runtime
        config = runtime.config
        sv = self.ectx.services
        worker_id: int = payload["worker_id"]
        self.started = self.ectx.clock.now()

        if "handoff" in payload:
            # Mid-job switch from the barrier family: the replica is
            # live and every peer finished the same barrier, so the
            # staleness gate starts satisfied.
            handoff = payload["handoff"]
            state = handoff["state"]
            view = _SSPView(worker_id, config.n_workers)
            view.peer_progress = {p: handoff["step"] for p in handoff["peers"]}
        elif "stored" in payload:
            # Pre-fetched by the step machine's adaptive resume sniff.
            state, view = payload["stored"]
        elif payload.get("resume"):
            state, view = yield sv.kv_get(runtime.checkpoint_key(worker_id))
        else:
            state = _fresh_checkpoint(runtime, worker_id)
            view = _SSPView(worker_id, config.n_workers)

        self.view = view
        self.partition = runtime.partitions[worker_id]
        self.my_queue = runtime.worker_queue(worker_id)
        return state

    def begin(self, state: WorkerCheckpoint, t: int) -> Machine:
        """Drain delivered peer traffic, then hold the staleness gate."""
        sv = self.ectx.services
        runtime = self.runtime
        view = self.view
        worker_id = state.worker_id

        # Drain everything already delivered (peer updates, stop orders).
        pending = yield sv.mq_drain(self.my_queue)
        for message in pending:
            yield from _handle_message(sv, runtime, state, view, message)
        if view.stop:
            return {"worker": worker_id, "steps": state.step, "outcome": "stopped"}

        # The staleness gate: block until the slowest peer is close enough.
        while (t - 1) - view.slowest_peer_step() > self.policy.staleness:
            message = yield sv.mq_consume(self.my_queue)
            yield from _handle_message(sv, runtime, state, view, message)
            if view.stop:
                return {
                    "worker": worker_id,
                    "steps": state.step,
                    "outcome": "stopped",
                }
        return None

    def scale(self, state: WorkerCheckpoint) -> float:
        # Plain SSP averages over the *configured* pool (no auto-tuner);
        # a post-switch adaptive job keeps averaging over the workers
        # that actually remain after barrier-phase evictions.
        if self.policy.scale_mode == SCALE_CONFIGURED:
            return 1.0 / self.runtime.config.n_workers
        return 1.0 / state.active_workers

    def synchronize(
        self,
        state: WorkerCheckpoint,
        t: int,
        loss: float,
        outgoing,
        has_update: bool,
        spans: StepSpans,
    ) -> Machine:
        """Announce the update to the peers, report to the supervisor."""
        sv = self.ectx.services
        runtime = self.runtime
        worker_id = state.worker_id
        yield sv.broadcast(
            messages.update_available(worker_id, t, has_update),
            exclude=self.my_queue,
        )
        yield sv.mq_publish(
            runtime.supervisor_queue,
            messages.step_done(worker_id, t, loss, has_update, outgoing.nnz),
        )
        state.step = t
        return None

    def persist(self, state: WorkerCheckpoint, t: int) -> Machine:
        """Relaunch near the duration cap (state and view together)."""
        ectx = self.ectx
        config = self.runtime.config
        if ectx.clock.remaining_time(self.started) < config.relaunch_margin_s:
            yield ectx.services.kv_set(
                self.runtime.checkpoint_key(state.worker_id), (state, self.view)
            )
            return {"worker": state.worker_id, "steps": t, "outcome": "relaunch"}
        return None


def ssp_worker_loop(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """One SSP worker machine (the gossip family of the step machine)."""
    return worker_machine(ectx, payload)


def gossip_supervisor_epoch(
    ectx: ExecutionContext, payload: Dict[str, Any]
) -> Machine:
    """The gossip supervisor epoch (loss aggregation + stop order).

    Collects ``step_done`` reports; a step is *complete* once every
    expected worker has reported it.  Completion times give the
    loss/step-duration series; the stop condition matches the barrier
    supervisor's.  After an adaptive handoff the expected pool is
    whatever survived the barrier phase, and the loss/step series
    continue unbroken from the barrier epoch's counters.
    """
    runtime: JobRuntime = payload["runtime"]
    config = runtime.config
    sv = ectx.services
    clock = ectx.clock
    started = clock.now()

    if "handoff" in payload:
        handoff = payload["handoff"]
        state = {
            "reports": {},        # step -> {worker: loss}
            "completed": handoff["completed"],
            "last_time": handoff["last_time"],
            "job_started_at": handoff["job_started_at"],
            "n_expected": handoff["n_expected"],
        }
    elif "stored" in payload:
        # Pre-fetched by the step machine's adaptive resume sniff.
        state = payload["stored"]
    elif payload.get("resume"):
        state = yield sv.kv_get(runtime.supervisor_checkpoint_key)
    else:
        state = {
            "reports": {},        # step -> {worker: loss}
            "completed": 0,
            "last_time": None,
            "job_started_at": clock.now(),
        }
        runtime.monitor.record("workers", clock.now(), config.n_workers)

    # Plain SSP expects the configured pool; a post-switch epoch expects
    # the pool the barrier phase handed over.
    expected = state.get("n_expected", config.n_workers)

    while True:
        message = yield sv.mq_consume(runtime.supervisor_queue)
        if messages.validate(message) != messages.STEP_DONE:
            continue
        step, worker = message["step"], message["worker"]
        state["reports"].setdefault(step, {})[worker] = message["loss"]

        next_step = state["completed"] + 1
        while (
            next_step in state["reports"]
            and len(state["reports"][next_step]) == expected
        ):
            now = clock.now()
            mean_loss = float(np.mean(list(state["reports"][next_step].values())))
            runtime.monitor.record("loss", now, mean_loss)
            runtime.monitor.record("loss_by_step", next_step, mean_loss)
            if state["last_time"] is not None:
                runtime.monitor.record(
                    "step_duration", next_step, now - state["last_time"]
                )
            state["last_time"] = now
            del state["reports"][next_step]
            state["completed"] = next_step

            stop = False
            reason = ""
            if config.target_loss is not None and mean_loss <= config.target_loss:
                stop, reason = True, "target"
            elif next_step >= config.max_steps:
                stop, reason = True, "max_steps"
            elif now - state["job_started_at"] >= config.max_time_s:
                stop, reason = True, "max_time"
            if stop:
                yield sv.broadcast(messages.control("stop"))
                return {
                    "outcome": "finished",
                    "steps": state["completed"],
                    "final_loss": mean_loss,
                    "reason": reason,
                    "converged": reason == "target",
                }
            next_step = state["completed"] + 1

        if clock.remaining_time(started) < config.relaunch_margin_s:
            yield sv.kv_set(runtime.supervisor_checkpoint_key, state)
            return {"outcome": "relaunch"}


def ssp_supervisor_loop(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """The SSP supervisor machine (the gossip family dispatcher)."""
    return supervisor_machine(ectx, payload)
