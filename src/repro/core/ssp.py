"""Stale Synchronous Parallel workers and supervisor.

The paper's default synchronization is BSP, but §3.1 notes that "less
strict synchronization models such as SSP [13] are easy enough to
integrate".  This module integrates it:

* workers announce each (significance-filtered) update **directly to
  their peers** through the messaging exchange — no per-step barrier;
* a worker at step ``t`` only blocks when the slowest peer is more than
  ``ssp_staleness`` steps behind;
* the supervisor still aggregates per-step losses and broadcasts a
  ``control(stop)`` order when the convergence criterion is met.

The significance filter composes unchanged (ISP-over-SSP); the scale-in
auto-tuner is BSP-only (enforced by :class:`~repro.core.config.JobConfig`).

SSP is a *synchronization policy* of the shared training core, not a
parallel implementation: the per-step fetch → compute → gradient →
filter → publish sequence is :func:`repro.core.worker.train_step`, the
same machine the BSP worker runs.  Only what surrounds it differs — the
staleness gate and direct peer broadcasts here, the barrier there.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..exec.protocols import ExecutionContext, Machine
from . import messages
from .runtime import JobRuntime, WorkerCheckpoint
from .worker import _fresh_checkpoint, train_step

__all__ = ["ssp_worker_loop", "ssp_supervisor_loop"]


class _SSPView:
    """A worker's view of peer progress and pending control orders."""

    def __init__(self, worker_id: int, n_workers: int):
        self.peer_progress: Dict[int, int] = {
            p: 0 for p in range(n_workers) if p != worker_id
        }
        self.stop = False

    def slowest_peer_step(self) -> int:
        if not self.peer_progress:
            return 10**12  # no peers: never blocks
        return min(self.peer_progress.values())

    @property
    def nbytes(self) -> int:
        """Wire size when checkpointed alongside the worker state."""
        return 16 + 16 * len(self.peer_progress)


def _handle_message(
    sv: Any,
    runtime: JobRuntime,
    state: WorkerCheckpoint,
    view: _SSPView,
    message: Dict[str, Any],
) -> Machine:
    mtype = messages.validate(message)
    if mtype == messages.UPDATE_AVAILABLE:
        peer, step = message["worker"], message["step"]
        view.peer_progress[peer] = max(view.peer_progress.get(peer, 0), step)
        if message["has_update"]:
            update = yield sv.kv_get(runtime.update_key(step, peer))
            state.params.apply(update)
    elif mtype == messages.CONTROL:
        if message["command"] == "stop":
            view.stop = True
    else:
        raise RuntimeError(f"SSP worker got unexpected {mtype!r}")


def ssp_worker_loop(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """One SSP worker machine."""
    runtime: JobRuntime = payload["runtime"]
    worker_id: int = payload["worker_id"]
    config = runtime.config
    sv = ectx.services
    clock = ectx.clock
    started = clock.now()

    if payload.get("resume"):
        state, view = yield sv.kv_get(runtime.checkpoint_key(worker_id))
    else:
        state = _fresh_checkpoint(runtime, worker_id)
        view = _SSPView(worker_id, config.n_workers)

    partition = runtime.partitions[worker_id]
    my_queue = runtime.worker_queue(worker_id)

    while True:
        t = state.step + 1

        # Drain everything already delivered (peer updates, stop orders).
        pending = yield sv.mq_drain(my_queue)
        for message in pending:
            yield from _handle_message(sv, runtime, state, view, message)
        if view.stop:
            return {"worker": worker_id, "steps": state.step, "outcome": "stopped"}

        # The staleness gate: block until the slowest peer is close enough.
        while (t - 1) - view.slowest_peer_step() > config.ssp_staleness:
            message = yield sv.mq_consume(my_queue)
            yield from _handle_message(sv, runtime, state, view, message)
            if view.stop:
                return {
                    "worker": worker_id,
                    "steps": state.step,
                    "outcome": "stopped",
                }

        # One local step — the shared core, scaled by the *configured*
        # pool size (SSP runs without the scale-in auto-tuner) — then
        # announce the update to the peers and report to the supervisor.
        loss, outgoing, has_update = yield from train_step(
            ectx, runtime, state, partition, t, 1.0 / config.n_workers
        )
        yield sv.broadcast(
            messages.update_available(worker_id, t, has_update),
            exclude=my_queue,
        )
        yield sv.mq_publish(
            runtime.supervisor_queue,
            messages.step_done(worker_id, t, loss, has_update, outgoing.nnz),
        )
        state.step = t

        if clock.remaining_time(started) < config.relaunch_margin_s:
            yield sv.kv_set(runtime.checkpoint_key(worker_id), (state, view))
            return {"worker": worker_id, "steps": t, "outcome": "relaunch"}


def ssp_supervisor_loop(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """The SSP supervisor machine (loss aggregation + stop order).

    Collects ``step_done`` reports; a step is *complete* once every worker
    has reported it.  Completion times give the loss/step-duration series;
    the stop condition matches the BSP supervisor's.
    """
    runtime: JobRuntime = payload["runtime"]
    config = runtime.config
    sv = ectx.services
    clock = ectx.clock
    started = clock.now()

    if payload.get("resume"):
        state = yield sv.kv_get(runtime.supervisor_checkpoint_key)
    else:
        state = {
            "reports": {},        # step -> {worker: loss}
            "completed": 0,
            "last_time": None,
            "job_started_at": clock.now(),
        }
        runtime.monitor.record("workers", clock.now(), config.n_workers)

    while True:
        message = yield sv.mq_consume(runtime.supervisor_queue)
        if messages.validate(message) != messages.STEP_DONE:
            continue
        step, worker = message["step"], message["worker"]
        state["reports"].setdefault(step, {})[worker] = message["loss"]

        next_step = state["completed"] + 1
        while (
            next_step in state["reports"]
            and len(state["reports"][next_step]) == config.n_workers
        ):
            now = clock.now()
            mean_loss = float(np.mean(list(state["reports"][next_step].values())))
            runtime.monitor.record("loss", now, mean_loss)
            runtime.monitor.record("loss_by_step", next_step, mean_loss)
            if state["last_time"] is not None:
                runtime.monitor.record(
                    "step_duration", next_step, now - state["last_time"]
                )
            state["last_time"] = now
            del state["reports"][next_step]
            state["completed"] = next_step

            stop = False
            reason = ""
            if config.target_loss is not None and mean_loss <= config.target_loss:
                stop, reason = True, "target"
            elif next_step >= config.max_steps:
                stop, reason = True, "max_steps"
            elif now - state["job_started_at"] >= config.max_time_s:
                stop, reason = True, "max_time"
            if stop:
                yield sv.broadcast(messages.control("stop"))
                return {
                    "outcome": "finished",
                    "steps": state["completed"],
                    "final_loss": mean_loss,
                    "reason": reason,
                    "converged": reason == "target",
                }
            next_step = state["completed"] + 1

        if clock.remaining_time(started) < config.relaunch_margin_s:
            yield sv.kv_set(runtime.supervisor_checkpoint_key, state)
            return {"outcome": "relaunch"}
