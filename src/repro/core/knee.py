"""Knee detection on learning curves (§4.2, "Automatic knee detection").

The scale-in scheduler never removes a worker before the learning curve
passes its "knee" — the point where loss reduction starts flattening out.
The paper uses a simple threshold on the first derivative (slope of the
tangent line) and notes that methods like Kneedle [34] can be plugged in
unchanged; both are implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .ewma import ewma

__all__ = ["SlopeKneeDetector", "KneedleDetector"]


@dataclass
class SlopeKneeDetector:
    """Threshold on the (smoothed) first derivative of the loss curve.

    The knee is declared at the first step where the magnitude of the
    per-step loss slope has fallen below ``slope_threshold`` times the
    peak early slope, sustained for ``patience`` consecutive steps.
    """

    slope_threshold: float = 0.2
    patience: int = 5
    min_steps: int = 10
    alpha: float = 0.3

    def detect(self, losses: Sequence[float]) -> Optional[int]:
        """Index of the knee (0-based step), or None if not reached yet."""
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        n = len(losses)
        if n < max(self.min_steps, self.patience + 2):
            return None
        smooth = ewma(losses, alpha=self.alpha)
        slopes = np.abs(np.diff(smooth))
        # Peak slope over the early (first third, at least 3 points) region.
        head = max(3, n // 3)
        peak = float(slopes[:head].max())
        if peak <= 0:
            return None
        flat = slopes < self.slope_threshold * peak
        run = 0
        for i, is_flat in enumerate(flat):
            run = run + 1 if is_flat else 0
            if run >= self.patience and i + 1 >= self.min_steps:
                return i + 1 - self.patience + 1
        return None


@dataclass
class KneedleDetector:
    """Kneedle (Satopaa et al., 2011) for decreasing convex-ish curves.

    Normalizes the curve to the unit square, computes the difference
    curve ``y_norm - x_norm`` of the *inverted* losses, and returns the
    index of its maximum if the peak is pronounced enough.
    """

    sensitivity: float = 1.0
    min_steps: int = 10
    alpha: float = 0.3

    def detect(self, losses: Sequence[float]) -> Optional[int]:
        n = len(losses)
        if n < self.min_steps:
            return None
        y = ewma(losses, alpha=self.alpha)
        x = np.arange(n, dtype=np.float64)
        y_span = float(y.max() - y.min())
        if y_span <= 0:
            return None
        x_norm = x / (n - 1)
        # Invert so the curve increases (Kneedle's canonical orientation
        # for "decreasing, convex" data).
        y_norm = (y.max() - y) / y_span
        diff = y_norm - x_norm
        peak = int(np.argmax(diff))
        if peak == 0 or peak == n - 1:
            return None
        # Pronounced-peak criterion: the peak must exceed the mean
        # difference by sensitivity * std.
        if diff[peak] < diff.mean() + self.sensitivity * diff.std():
            return None
        return peak
