"""Exponentially weighted moving average filtering.

The scale-in scheduler always smooths raw loss values with an EWMA before
curve fitting "to remove outliers" (§4.2).  Both an online filter (used by
the supervisor as losses stream in) and a batch helper are provided.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

__all__ = ["EWMAFilter", "ewma"]


class EWMAFilter:
    """Online EWMA: ``s_t = alpha * x_t + (1 - alpha) * s_{t-1}``."""

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._state: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """Current smoothed value (None before the first update)."""
        return self._state

    def update(self, x: float) -> float:
        if self._state is None:
            self._state = float(x)
        else:
            self._state = self.alpha * float(x) + (1.0 - self.alpha) * self._state
        return self._state

    def reset(self) -> None:
        self._state = None


def ewma(values: Iterable[float], alpha: float = 0.3) -> np.ndarray:
    """Batch EWMA of a sequence; returns an array of the same length."""
    filt = EWMAFilter(alpha)
    out: List[float] = [filt.update(v) for v in values]
    return np.asarray(out)
