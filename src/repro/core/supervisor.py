"""The MLLess supervisor (§3.1).

A serverless function that collects per-step statistics from all workers,
releases the per-step barrier, decides when training has converged, and
drives the scale-in auto-tuner.  Like the workers it checkpoints itself to
the KV store and relaunches when the activation nears the platform's
duration cap (the paper sketches exactly this scheme).

With fault tolerance enabled (``config.ft_enabled``) the supervisor also
owns failure detection: it consumes with a per-step barrier timeout, asks
silent workers to re-sync (re-sending the last barrier release so a worker
whose release was lost can catch up, and letting a worker whose report was
lost re-publish it), tolerates duplicate and late reports idempotently,
checkpoints its state after every barrier, and — after a capped number of
fruitless resyncs — abandons the missing workers so the survivors can make
progress with a smaller pool.

Like the worker, the supervisor is a **backend-neutral machine**
(:func:`supervisor_loop`): all I/O goes through the
:class:`~repro.exec.protocols.ExecutionContext` it is handed, so the same
control loop runs on the simulator and on real threads.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Set

import numpy as np

from ..exec.protocols import ExecutionContext, Machine
from ..storage import StorageError
from . import messages
from .adaptive import AdaptiveConfig, AdaptiveController
from .autotuner import ScaleInScheduler
from .runtime import JobRuntime
from .step_machine import supervisor_machine

__all__ = ["supervisor_loop", "SupervisorState", "barrier_supervisor_epoch"]

#: barrier releases kept for re-sending to lagging workers (steps)
_RELEASE_WINDOW = 4


class SupervisorState:
    """All supervisor state, persistable across relaunches."""

    def __init__(self, runtime: JobRuntime):
        config = runtime.config
        self.active: Set[int] = set(range(config.n_workers))
        self.reports: Dict[int, Dict[int, Dict[str, Any]]] = {}
        self.last_loss: Dict[int, float] = {}
        self.completed_step = 0
        self.last_barrier_time: Optional[float] = None
        self.job_started_at: Optional[float] = None
        self.scheduler = ScaleInScheduler(config.autotuner, config.n_workers)
        self.pending_eviction: Optional[int] = None
        self.stop_reason: Optional[str] = None
        self.final_loss: Optional[float] = None
        #: update keys by step, pending garbage collection
        self.gc_backlog: Dict[int, List[str]] = {}
        #: recent barrier releases by step (FT: re-sent to lagging workers)
        self.releases: Dict[int, Dict[str, Any]] = {}
        #: barrier timeouts seen while waiting on the current step
        self.resyncs_this_step = 0
        #: arrival-skew controller (sync == "adaptive" only)
        self.adaptive: Optional[AdaptiveController] = (
            AdaptiveController(config.adaptive or AdaptiveConfig(), config.n_workers)
            if config.sync == "adaptive"
            else None
        )
        #: set when the controller ordered the switch to the gossip
        #: family; the epoch returns it as the sync_switch handoff
        self.pending_switch: Optional[Dict[str, Any]] = None

    def snapshot(self) -> "SupervisorState":
        """An independent copy safe to hand to the KV store.

        Replaces ``copy.deepcopy``: the containers are copied one level
        deep and the scheduler via :meth:`ScaleInScheduler.clone`.  The
        report/release *message dicts* stay shared — they are immutable
        by convention (published messages are never mutated in place).
        """
        dup = copy.copy(self)
        dup.active = set(self.active)
        dup.reports = {step: dict(by_worker) for step, by_worker in self.reports.items()}
        dup.last_loss = dict(self.last_loss)
        dup.scheduler = self.scheduler.clone()
        dup.gc_backlog = {step: list(keys) for step, keys in self.gc_backlog.items()}
        dup.releases = dict(self.releases)
        if self.adaptive is not None:
            dup.adaptive = self.adaptive.clone()
        return dup

    @property
    def nbytes(self) -> int:
        """Checkpoint wire size: histories dominate (~24 B per step)."""
        return 1024 + 24 * len(self.scheduler._steps) + 64 * len(self.active)


def supervisor_loop(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """The supervisor machine entry point (family-dispatching)."""
    return supervisor_machine(ectx, payload)


def barrier_supervisor_epoch(
    ectx: ExecutionContext, payload: Dict[str, Any]
) -> Machine:
    """The barrier supervisor control loop (one policy epoch)."""
    runtime: JobRuntime = payload["runtime"]
    config = runtime.config
    sv = ectx.services
    clock = ectx.clock
    started = clock.now()
    ectx.annotate(role="supervisor")

    if "stored" in payload:
        # Pre-fetched by the step machine's adaptive resume sniff.
        state = payload["stored"]
    elif payload.get("resume"):
        if config.ft_enabled:
            stored = yield sv.kv_get_or_none(runtime.supervisor_checkpoint_key)
            if stored is None:
                # Crashed before the first checkpoint: start over.
                state = SupervisorState(runtime)
                state.job_started_at = clock.now()
                runtime.note_recovery("supervisor_fresh_restart")
            else:
                # Snapshot so this activation's mutations never alias the
                # checkpointed object still sitting in the KV store.
                state = stored.snapshot()
                runtime.note_recovery("supervisor_resumed")
        else:
            state = yield sv.kv_get(runtime.supervisor_checkpoint_key)
    else:
        state = SupervisorState(runtime)
        state.job_started_at = clock.now()
        runtime.monitor.record("workers", clock.now(), len(state.active))

    barrier_timeout = config.barrier_timeout

    while True:
        if barrier_timeout is None:
            message = yield sv.mq_consume(runtime.supervisor_queue)
        else:
            message = yield sv.mq_consume_with_timeout(
                runtime.supervisor_queue, barrier_timeout
            )

        if message is None:
            stop = yield from _handle_barrier_timeout(ectx, runtime, state)
        else:
            mtype = messages.validate(message)
            stop = False
            if mtype == messages.STEP_DONE:
                stop = yield from _handle_step_done(ectx, runtime, state, message)
            elif mtype == messages.DEPARTED:
                _handle_departed(ectx, runtime, state, message)
        if stop:
            return {
                "outcome": "finished",
                "steps": state.completed_step,
                "final_loss": state.final_loss,
                "reason": state.stop_reason,
                "converged": state.stop_reason == "target",
            }
        if state.pending_switch is not None:
            # The controller ordered the switch and the release carrying
            # it went out: hand this epoch's counters to the gossip one.
            return {"outcome": "sync_switch", "handoff": state.pending_switch}

        if clock.remaining_time(started) < config.relaunch_margin_s:
            snapshot = state.snapshot() if config.ft_enabled else state
            yield sv.kv_set(runtime.supervisor_checkpoint_key, snapshot)
            return {"outcome": "relaunch"}


def _handle_step_done(
    ectx: ExecutionContext,
    runtime: JobRuntime,
    state: SupervisorState,
    message: Dict[str, Any],
) -> Machine:
    """Collect a report; release the barrier once every active worker is in.

    Returns True when the stop broadcast went out (job over).
    """
    config = runtime.config
    sv = ectx.services
    step = message["step"]
    worker = message["worker"]

    if config.ft_enabled:
        if worker not in state.active:
            # A worker the pool already gave up on came back: halt it.
            yield sv.mq_publish(
                runtime.worker_queue(worker),
                messages.step_complete(step, True, [], len(state.active)),
            )
            runtime.note_recovery("late_report_halted")
            return False
        if step <= state.completed_step:
            # Duplicate delivery or a report whose release got lost:
            # re-send the stored release so the worker can move on.
            runtime.note_recovery("duplicate_report")
            release = state.releases.get(step)
            if release is not None:
                yield sv.mq_publish(runtime.worker_queue(worker), release)
            return False
        if worker in state.reports.get(step, {}):
            runtime.note_recovery("duplicate_report")

    state.reports.setdefault(step, {})[worker] = message
    state.last_loss[worker] = message["loss"]
    if state.adaptive is not None:
        state.adaptive.note_report(step, worker, ectx.clock.now())
    return (yield from _maybe_release_barrier(ectx, runtime, state, step))


def _maybe_release_barrier(
    ectx: ExecutionContext,
    runtime: JobRuntime,
    state: SupervisorState,
    step: int,
) -> Machine:
    """Release barrier ``step`` if every active worker reported.

    Returns True when the stop broadcast went out (job over).
    """
    config = runtime.config
    sv = ectx.services
    collected = state.reports.get(step, {})
    if set(collected) != state.active or step != state.completed_step + 1:
        return False

    now = ectx.clock.now()
    losses = [m["loss"] for m in collected.values()]
    mean_loss = float(np.mean(losses))
    runtime.monitor.record("loss", now, mean_loss)
    runtime.monitor.record("loss_by_step", step, mean_loss)
    if state.last_barrier_time is not None:
        runtime.monitor.record(
            "step_duration", step, now - state.last_barrier_time
        )
    state.last_barrier_time = now
    state.scheduler.observe(step, now, mean_loss)

    stop, reason = _stop_condition(config, state, step, mean_loss, now)
    evict = None
    if not stop and state.pending_eviction is None:
        decision = state.scheduler.should_evict(now)
        if decision.evict:
            evict = _pick_victim(state)
            if evict is not None and runtime.tracer.enabled:
                runtime.tracer.event(
                    "scale_in",
                    "evict",
                    step=step,
                    victim=evict,
                    reason=decision.reason,
                    s_delta=decision.s_delta,
                )
    switch_to = None
    if state.adaptive is not None and not stop:
        decision = state.adaptive.observe_barrier(step, now, state.active)
        if (
            decision.action == "evict"
            and evict is None
            and state.pending_eviction is None
        ):
            evict = decision.victim
            runtime.monitor.record("adaptive_evict", now, float(evict))
            if runtime.tracer.enabled:
                runtime.tracer.event(
                    "scale_in",
                    "evict",
                    step=step,
                    victim=evict,
                    reason=decision.reason,
                    s_delta=0.0,
                )
        elif decision.action == "switch":
            switch_to = "ssp"

    senders = [w for w, m in sorted(collected.items()) if m["has_update"]]
    next_active = len(state.active) - (1 if evict is not None else 0)
    release = messages.step_complete(
        step, stop, senders, next_active, evict=evict
    )
    if switch_to is not None:
        # Extra keys are schema-legal (validate() checks required fields
        # only); non-adaptive workers never look for them.
        release["switch"] = switch_to
        release["peers"] = sorted(state.active)
    if runtime.tracer.enabled:
        runtime.tracer.event(
            "barrier",
            "release",
            step=step,
            senders=len(senders),
            active=next_active,
            stop=stop,
            mean_loss=mean_loss,
        )
    yield sv.broadcast(release)

    state.completed_step = step
    del state.reports[step]
    if evict is not None:
        state.pending_eviction = evict
        state.active.discard(evict)
    if switch_to is not None:
        runtime.monitor.record("sync_switch", now, 1.0)
        if runtime.tracer.enabled:
            runtime.tracer.event(
                "sync_switch", switch_to, step=step, active=len(state.active)
            )
        state.pending_switch = {
            "completed": state.completed_step,
            "last_time": state.last_barrier_time,
            "job_started_at": state.job_started_at,
            "n_expected": len(state.active),
        }

    # Garbage-collect old update keys: once every worker has pulled the
    # updates of step t (guaranteed after the barrier of step t+2), their
    # KV entries are dead weight.  One core supervisor attribution (§3.1:
    # "among other tasks").  Deletes run detached (a DES process in the
    # simulator, a daemon thread locally) so they never delay the barrier.
    state.gc_backlog[step] = [runtime.update_key(step, w) for w in senders]
    expired = [s for s in state.gc_backlog if s <= step - 2]
    dead_keys = [k for s in expired for k in state.gc_backlog.pop(s)]
    if dead_keys:
        ectx.spawner.spawn(_gc_keys(sv, runtime, dead_keys), name="kv-gc")

    if config.ft_enabled:
        state.releases[step] = release
        for stale in [s for s in state.releases if s <= step - _RELEASE_WINDOW]:
            del state.releases[stale]
        state.resyncs_this_step = 0

    if stop:
        state.stop_reason = reason
        state.final_loss = mean_loss
        return True

    ckpt_every = config.checkpoint_every
    if ckpt_every and step % ckpt_every == 0:
        try:
            yield sv.kv_set(runtime.supervisor_checkpoint_key, state.snapshot())
        except StorageError:
            # A lost checkpoint is survivable (we resume one barrier
            # earlier); a dead supervisor is not.
            runtime.note_recovery("checkpoint_skipped")
    return False


def _handle_barrier_timeout(
    ectx: ExecutionContext,
    runtime: JobRuntime,
    state: SupervisorState,
) -> Machine:
    """No message within the barrier timeout: chase the missing workers.

    Returns True when the job is over (everyone abandoned, or the barrier
    released after shrinking the pool).
    """
    config = runtime.config
    sv = ectx.services
    step = state.completed_step + 1
    collected = state.reports.get(step, {})
    missing = sorted(state.active - set(collected))
    if not missing:
        # Quiet for other reasons (e.g. waiting on a DEPARTED message).
        return False

    state.resyncs_this_step += 1
    if state.resyncs_this_step <= config.max_resyncs_per_step:
        release = state.releases.get(state.completed_step)
        for worker in missing:
            yield sv.mq_publish(
                runtime.worker_queue(worker), messages.resync(step, release)
            )
        runtime.note_recovery("resync")
        return False

    # Resync budget exhausted: give up on the silent workers so the
    # survivors can make progress with a smaller pool.
    if runtime.tracer.enabled:
        runtime.tracer.event(
            "scale_in", "abandon", step=step, workers=len(missing)
        )
    for worker in missing:
        state.active.discard(worker)
        sv.unbind(runtime.worker_queue(worker))
        state.scheduler.notify_evicted()
        runtime.note_recovery("worker_abandoned")
    runtime.monitor.record("workers", ectx.clock.now(), len(state.active))
    state.resyncs_this_step = 0
    if not state.active:
        state.stop_reason = "abandoned"
        if state.last_loss:
            state.final_loss = float(np.mean(list(state.last_loss.values())))
        return True
    return (yield from _maybe_release_barrier(ectx, runtime, state, step))


def _stop_condition(config, state, step, mean_loss, now):
    if config.target_loss is not None and mean_loss <= config.target_loss:
        return True, "target"
    if step >= config.max_steps:
        return True, "max_steps"
    if state.job_started_at is not None and (
        now - state.job_started_at >= config.max_time_s
    ):
        return True, "max_time"
    return False, ""


def _gc_keys(sv: Any, runtime: JobRuntime, keys: List[str]) -> Machine:
    """Detached background deletion of consumed update keys."""
    try:
        for key in keys:
            yield sv.kv_delete(key)
    except StorageError:
        # Detached machine: an injected storage error here must not crash
        # the backend.  Leaked keys are only garbage, not corruption.
        runtime.note_recovery("gc_abandoned")


def _pick_victim(state: SupervisorState) -> Optional[int]:
    """The worker with the lowest-quality replica = highest reported loss.

    Candidates are sorted so that loss ties break by lowest worker id —
    ``max`` returns the first maximal element, and iterating the
    ``active`` set directly would tie-break by hash order instead.
    """
    candidates = [w for w in sorted(state.active) if w in state.last_loss]
    if not candidates:
        return None
    return max(candidates, key=lambda w: state.last_loss[w])


def _handle_departed(
    ectx: ExecutionContext,
    runtime: JobRuntime,
    state: SupervisorState,
    message: Dict[str, Any],
) -> None:
    worker = message["worker"]
    ectx.services.unbind(runtime.worker_queue(worker))
    state.scheduler.notify_evicted()
    if state.pending_eviction == worker:
        state.pending_eviction = None
    runtime.monitor.record("workers", ectx.clock.now(), len(state.active))
