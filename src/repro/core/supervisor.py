"""The MLLess supervisor (§3.1).

A serverless function that collects per-step statistics from all workers,
releases the per-step barrier, decides when training has converged, and
drives the scale-in auto-tuner.  Like the workers it checkpoints itself to
the KV store and relaunches when the activation nears the platform's
duration cap (the paper sketches exactly this scheme).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set

import numpy as np

from ..faas import InvocationContext
from . import messages
from .autotuner import ScaleInScheduler
from .runtime import JobRuntime

__all__ = ["supervisor_handler", "SupervisorState"]


class SupervisorState:
    """All supervisor state, persistable across relaunches."""

    def __init__(self, runtime: JobRuntime):
        config = runtime.config
        self.active: Set[int] = set(range(config.n_workers))
        self.reports: Dict[int, Dict[int, Dict[str, Any]]] = {}
        self.last_loss: Dict[int, float] = {}
        self.completed_step = 0
        self.last_barrier_time: Optional[float] = None
        self.job_started_at: Optional[float] = None
        self.scheduler = ScaleInScheduler(config.autotuner, config.n_workers)
        self.pending_eviction: Optional[int] = None
        self.stop_reason: Optional[str] = None
        self.final_loss: Optional[float] = None
        #: update keys by step, pending garbage collection
        self.gc_backlog: Dict[int, List[str]] = {}

    @property
    def nbytes(self) -> int:
        """Checkpoint wire size: histories dominate (~24 B per step)."""
        return 1024 + 24 * len(self.scheduler._steps) + 64 * len(self.active)


def supervisor_handler(
    ctx: InvocationContext, payload: Dict[str, Any]
) -> Generator:
    """FaaS handler: the supervisor control loop."""
    runtime: JobRuntime = payload["runtime"]
    config = runtime.config
    started = ctx.now

    if payload.get("resume"):
        state: SupervisorState = yield from runtime.kv.get(
            runtime.supervisor_checkpoint_key
        )
    else:
        state = SupervisorState(runtime)
        state.job_started_at = ctx.now
        runtime.monitor.record("workers", ctx.now, len(state.active))

    while True:
        message = yield from runtime.mq.consume(runtime.supervisor_queue)
        mtype = messages.validate(message)

        if mtype == messages.STEP_DONE:
            stop = yield from _handle_step_done(ctx, runtime, state, message)
            if stop:
                return {
                    "outcome": "finished",
                    "steps": state.completed_step,
                    "final_loss": state.final_loss,
                    "reason": state.stop_reason,
                    "converged": state.stop_reason == "target",
                }
        elif mtype == messages.DEPARTED:
            _handle_departed(ctx, runtime, state, message)

        if ctx.remaining_time(started) < config.relaunch_margin_s:
            yield from runtime.kv.set(runtime.supervisor_checkpoint_key, state)
            return {"outcome": "relaunch"}


def _handle_step_done(
    ctx: InvocationContext,
    runtime: JobRuntime,
    state: SupervisorState,
    message: Dict[str, Any],
) -> Generator:
    """Collect a report; release the barrier once every active worker is in.

    Returns True when the stop broadcast went out (job over).
    """
    config = runtime.config
    step = message["step"]
    worker = message["worker"]
    state.reports.setdefault(step, {})[worker] = message
    state.last_loss[worker] = message["loss"]

    collected = state.reports[step]
    if set(collected) != state.active or step != state.completed_step + 1:
        return False

    now = ctx.now
    losses = [m["loss"] for m in collected.values()]
    mean_loss = float(np.mean(losses))
    runtime.monitor.record("loss", now, mean_loss)
    runtime.monitor.record("loss_by_step", step, mean_loss)
    if state.last_barrier_time is not None:
        runtime.monitor.record(
            "step_duration", step, now - state.last_barrier_time
        )
    state.last_barrier_time = now
    state.scheduler.observe(step, now, mean_loss)

    stop, reason = _stop_condition(config, state, step, mean_loss, now)
    evict = None
    if not stop and state.pending_eviction is None:
        decision = state.scheduler.should_evict(now)
        if decision.evict:
            evict = _pick_victim(state)
    senders = [w for w, m in sorted(collected.items()) if m["has_update"]]
    next_active = len(state.active) - (1 if evict is not None else 0)
    yield from runtime.exchange.publish(
        messages.step_complete(step, stop, senders, next_active, evict=evict)
    )

    state.completed_step = step
    del state.reports[step]
    if evict is not None:
        state.pending_eviction = evict
        state.active.discard(evict)

    # Garbage-collect old update keys: once every worker has pulled the
    # updates of step t (guaranteed after the barrier of step t+2), their
    # KV entries are dead weight.  One core supervisor attribution (§3.1:
    # "among other tasks").  Deletes run as a detached process so they
    # never delay the next barrier.
    state.gc_backlog[step] = [runtime.update_key(step, w) for w in senders]
    expired = [s for s in state.gc_backlog if s <= step - 2]
    dead_keys = [k for s in expired for k in state.gc_backlog.pop(s)]
    if dead_keys:
        ctx.env.process(_gc_keys(runtime, dead_keys), name="kv-gc")

    if stop:
        state.stop_reason = reason
        state.final_loss = mean_loss
        return True
    return False


def _stop_condition(config, state, step, mean_loss, now):
    if config.target_loss is not None and mean_loss <= config.target_loss:
        return True, "target"
    if step >= config.max_steps:
        return True, "max_steps"
    if state.job_started_at is not None and (
        now - state.job_started_at >= config.max_time_s
    ):
        return True, "max_time"
    return False, ""


def _gc_keys(runtime: JobRuntime, keys: List[str]) -> Generator:
    """Detached background deletion of consumed update keys."""
    for key in keys:
        yield from runtime.kv.delete(key)


def _pick_victim(state: SupervisorState) -> Optional[int]:
    """The worker with the lowest-quality replica = highest reported loss."""
    candidates = [w for w in state.active if w in state.last_loss]
    if not candidates:
        return None
    return max(candidates, key=lambda w: state.last_loss[w])


def _handle_departed(
    ctx: InvocationContext,
    runtime: JobRuntime,
    state: SupervisorState,
    message: Dict[str, Any],
) -> None:
    worker = message["worker"]
    runtime.exchange.unbind(runtime.worker_queue(worker))
    state.scheduler.notify_evicted()
    if state.pending_eviction == worker:
        state.pending_eviction = None
    runtime.monitor.record("workers", ctx.now, len(state.active))
