"""The MLLess serverless worker (§3.2 "Job execution").

Each worker keeps a local replica of the model and repeats, per step:

1. merge a departed peer's replica if an eviction completed last step
   (model averaging, §4.2 "Eviction policy");
2. fetch its next mini-batch from the object store;
3. compute the local gradient (CPU time charged through the backend's
   ``compute`` service, real numpy arithmetic);
4. run the optimizer, apply the update locally, and push the
   *significant* part of the accumulated update to the KV store
   (BSP pushes everything — v = 0);
5. announce completion to the supervisor over the messaging service;
6. block on the supervisor's ``step_complete`` barrier release, then pull
   and apply the peers' updates listed in it.

When the activation nears the platform's 10-minute cap, the worker
checkpoints its state to the KV store and returns a relaunch marker; the
driver re-invokes it as a fresh activation that resumes from the
checkpoint.

The worker is a **backend-neutral machine**: a plain-Python generator
that performs all I/O by yielding :data:`~repro.exec.protocols.ServiceCall`
tokens minted by its :class:`~repro.exec.protocols.ExecutionContext` —
never DES events, sockets, or the host clock directly.  The same machine
runs bit-identically on the simulator (:mod:`repro.exec.sim`) and for
real on threads (:mod:`repro.exec.local`).  Steps 2–4 live in
:func:`train_step`, which the SSP worker (:mod:`repro.core.ssp`) reuses —
BSP and SSP differ only in synchronization policy, not in the step core.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..exec.protocols import ExecutionContext, Machine
from ..storage import StorageError
from ..trace.tracer import NO_SPAN
from . import messages
from .runtime import JobRuntime, WorkerCheckpoint
from .significance import SignificanceFilter

__all__ = ["worker_loop", "train_step"]

#: how long a worker polls for a departed peer's replica before giving up
#: (FT mode only — the peer may have crashed before storing it)
_REINTEGRATE_DEADLINE_S = 60.0


def _fresh_checkpoint(runtime: JobRuntime, worker_id: int) -> WorkerCheckpoint:
    """Initial worker state: identical model replica on every worker."""
    config = runtime.config
    rng = np.random.default_rng(config.seed)  # same seed => same init
    params = config.model.init_params(rng)
    if config.make_filter is not None:
        sig_filter = config.make_filter(params.shapes())
    else:
        sig_filter = SignificanceFilter(config.significance_v, params.shapes())
    return WorkerCheckpoint(
        worker_id=worker_id,
        step=0,
        params=params,
        optimizer=config.make_optimizer(),
        sig_filter=sig_filter,
        active_workers=config.n_workers,
    )


def train_step(
    ectx: ExecutionContext,
    runtime: JobRuntime,
    state: WorkerCheckpoint,
    partition: List[int],
    t: int,
    scale: float,
) -> Machine:
    """One local training step, shared by the BSP and SSP workers.

    Fetch the next mini-batch → charge compute → gradient → optimizer
    step scaled by ``scale`` (gradient averaging, §3.2) → apply locally →
    significance-filter → publish the significant part to the KV store.

    ``scale`` is the only algorithmic knob the synchronization policies
    disagree on: BSP divides by the *current* pool size (it shrinks under
    scale-in), SSP by the configured pool size (fixed — no auto-tuner).

    Returns ``(loss, outgoing, has_update)``.
    """
    sv = ectx.services
    config = runtime.config
    model = config.model
    worker_id = state.worker_id

    batch_idx = partition[(t - 1) % len(partition)]
    batch = yield sv.cos_get(runtime.bucket, runtime.batch_keys[batch_idx])

    # Local gradient — real arithmetic; CPU time charged via the backend
    # (simulated seconds from the calibrated flop model, or genuinely
    # elapsed wall time in the local backend).
    yield sv.compute(
        config.calibration.mlless_step_seconds(model.sparse_step_flops(batch))
    )
    loss, grad = model.gradient(state.params, batch)

    update = state.optimizer.step(state.params, grad, t).scale(scale)
    state.params.apply(update)
    outgoing = state.sig_filter.step(state.params, update, t)
    has_update = not outgoing.is_empty()
    if ectx.tracer.enabled:
        ectx.tracer.event(
            "filter.decision",
            "significance",
            worker=worker_id,
            step=t,
            significant=has_update,
            nnz=int(outgoing.nnz),
        )
    if has_update:
        yield sv.kv_set(runtime.update_key(t, worker_id), outgoing)
    return loss, outgoing, has_update


def worker_loop(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """The BSP/ISP worker machine: train until stop/evict/relaunch."""
    runtime: JobRuntime = payload["runtime"]
    worker_id: int = payload["worker_id"]
    config = runtime.config
    sv = ectx.services
    clock = ectx.clock
    started = clock.now()
    tracer = ectx.tracer
    ectx.annotate(worker=worker_id, role="worker")

    if payload.get("resume"):
        if config.ft_enabled:
            stored = yield sv.kv_get_or_none(runtime.checkpoint_key(worker_id))
            if stored is None:
                # Crashed before the first checkpoint: start over.
                state = _fresh_checkpoint(runtime, worker_id)
                runtime.note_recovery("worker_fresh_restart")
            else:
                # Snapshot so this activation's mutations never alias the
                # checkpointed object still sitting in the KV store.
                state = stored.snapshot()
                runtime.note_recovery("worker_resumed")
        else:
            state = yield sv.kv_get(runtime.checkpoint_key(worker_id))
    else:
        state = _fresh_checkpoint(runtime, worker_id)

    partition = runtime.partitions[worker_id]
    my_queue = runtime.worker_queue(worker_id)

    while True:
        t = state.step + 1
        sp_step = NO_SPAN
        sp_barrier = NO_SPAN
        if tracer.enabled:
            sp_step = tracer.begin("step", f"step-{t}", worker=worker_id, step=t)
        try:
            # (1) pending reintegration of an evicted peer's replica.
            if state.pending_replica is not None:
                yield from _reintegrate(ectx, runtime, state)

            # (2–4) the shared step core: fetch, compute, optimize,
            # filter, publish — scaled by the *current* pool size.
            loss, outgoing, has_update = yield from train_step(
                ectx, runtime, state, partition, t, 1.0 / state.active_workers
            )

            # (5+6) barrier: report to the supervisor, wait for its release.
            # The barrier span's self time is the genuine peer wait — the
            # queue wait in mq.consume happens before its charge span.
            if tracer.enabled:
                sp_barrier = tracer.begin(
                    "barrier", f"barrier-{t}", worker=worker_id, step=t
                )
            report = messages.step_done(worker_id, t, loss, has_update, outgoing.nnz)
            if config.ft_enabled:
                # Kept so a lost report can be re-published on resync.
                state.last_report = report
            yield sv.mq_publish(runtime.supervisor_queue, report)

            if config.ft_enabled:
                release = yield from _await_release(sv, runtime, state, my_queue, t)
            else:
                release = yield sv.mq_consume(my_queue)
                if messages.validate(release) != messages.STEP_COMPLETE:
                    raise RuntimeError(f"worker {worker_id}: unexpected {release!r}")
                if release["step"] != t:
                    raise RuntimeError(
                        f"worker {worker_id}: barrier for step {release['step']} "
                        f"while at step {t}"
                    )
            if sp_barrier >= 0:
                tracer.end(sp_barrier)
                sp_barrier = NO_SPAN
            peer_updates = []
            for peer in release["senders"]:
                if peer == worker_id:
                    continue
                peer_updates.append((yield sv.kv_get(runtime.update_key(t, peer))))
            # Fused scatter, bit-identical to applying one update at a time in
            # sender order (see ParameterSet.apply_many).  Peers must NOT be
            # pre-merged into one update: (w + v1) + v2 != w + (v1 + v2) in
            # floats, and the convergence traces are checked bit-exactly.
            state.params.apply_many(peer_updates)

            state.step = t
            state.active_workers = release["active"]

            evicted = release["evict"]
            if evicted == worker_id:
                yield from _depart(sv, runtime, state)
                return {"worker": worker_id, "steps": t, "outcome": "evicted"}
            if evicted is not None:
                state.pending_replica = (t, evicted)

            if release["stop"]:
                return {"worker": worker_id, "steps": t, "outcome": "converged"}

            # FT: periodic barrier checkpoint so a crashed activation resumes
            # from the last completed step instead of from scratch.  Snapshot:
            # the KV store holds objects by reference, and the live replica
            # keeps mutating after the write.
            checkpointed = False
            ckpt_every = config.checkpoint_every
            if ckpt_every and t % ckpt_every == 0:
                try:
                    yield sv.kv_set(
                        runtime.checkpoint_key(worker_id), state.snapshot()
                    )
                    checkpointed = True
                except StorageError:
                    # A lost checkpoint only costs recomputation after a crash.
                    runtime.note_recovery("checkpoint_skipped")

            # Relaunch before the platform kills the activation.
            if clock.remaining_time(started) < config.relaunch_margin_s:
                if not checkpointed:
                    yield sv.kv_set(runtime.checkpoint_key(worker_id), state)
                return {"worker": worker_id, "steps": t, "outcome": "relaunch"}
        finally:
            if sp_barrier >= 0:
                tracer.end(sp_barrier)
            if sp_step >= 0:
                tracer.end(sp_step)


def _await_release(
    sv: Any,
    runtime: JobRuntime,
    state: WorkerCheckpoint,
    my_queue: str,
    t: int,
) -> Machine:
    """FT barrier wait: tolerate stale releases, duplicates and resyncs.

    Returns the ``step_complete`` message for step ``t``.
    """
    worker_id = state.worker_id
    while True:
        message = yield sv.mq_consume(my_queue)
        mtype = messages.validate(message)
        if mtype == messages.STEP_COMPLETE:
            if message["step"] == t:
                return message
            if message["step"] < t:
                # Re-delivered or re-sent release for a step already done.
                runtime.note_recovery("stale_release_skipped")
                continue
            raise RuntimeError(
                f"worker {worker_id}: barrier for step {message['step']} "
                f"while at step {t}"
            )
        if mtype == messages.RESYNC:
            release = message.get("release")
            if release is not None and release["step"] == t:
                # Our copy of the release was lost: use the re-sent one.
                runtime.note_recovery("release_recovered")
                return release
            if (
                message["step"] == t
                and state.last_report is not None
                and state.last_report["step"] == t
            ):
                # The supervisor never saw our report: re-publish it.
                yield sv.mq_publish(runtime.supervisor_queue, state.last_report)
                runtime.note_recovery("report_republished")
            continue
        raise RuntimeError(f"worker {worker_id}: unexpected {message!r}")


def _reintegrate(
    ectx: ExecutionContext, runtime: JobRuntime, state: WorkerCheckpoint
) -> Machine:
    """Merge a departed peer's replica by model averaging (for v > 0)."""
    evict_step, peer = state.pending_replica
    state.pending_replica = None
    if runtime.config.significance_v == 0 or not runtime.config.reintegrate_on_evict:
        # BSP replicas are exact copies — averaging is a no-op (Corollary
        # in Appendix A), so the one-shot synchronization is skipped.
        return
    sv = ectx.services
    key = runtime.replica_key(evict_step, peer)
    # The replica may not be stored yet; poll with short waits.  With FT
    # on, the departed peer may have crashed before storing it: give up
    # after a deadline instead of polling forever.
    deadline = ectx.clock.now() + _REINTEGRATE_DEADLINE_S
    while not (yield sv.kv_exists(key)):
        if runtime.config.ft_enabled and ectx.clock.now() >= deadline:
            runtime.note_recovery("reintegration_skipped")
            return
        yield sv.sleep(0.01)
    replica = yield sv.kv_get(key)
    state.params.average_with(replica)


def _depart(sv: Any, runtime: JobRuntime, state: WorkerCheckpoint) -> Machine:
    """Store the local replica, notify the supervisor, terminate."""
    key = runtime.replica_key(state.step, state.worker_id)
    if runtime.config.significance_v > 0 and runtime.config.reintegrate_on_evict:
        yield sv.kv_set(key, state.params)
    yield sv.mq_publish(
        runtime.supervisor_queue,
        messages.departed(state.worker_id, state.step, key),
    )
