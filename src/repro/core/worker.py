"""The MLLess serverless worker (§3.2 "Job execution").

Each worker keeps a local replica of the model and repeats, per step:

1. merge a departed peer's replica if an eviction completed last step
   (model averaging, §4.2 "Eviction policy");
2. fetch its next mini-batch from the object store;
3. compute the local gradient (CPU time charged through the backend's
   ``compute`` service, real numpy arithmetic);
4. run the optimizer, apply the update locally, and push the
   *significant* part of the accumulated update to the KV store
   (BSP pushes everything — v = 0);
5. announce completion to the supervisor over the messaging service;
6. block on the supervisor's ``step_complete`` barrier release, then pull
   and apply the peers' updates listed in it.

When the activation nears the platform's 10-minute cap, the worker
checkpoints its state to the KV store and returns a relaunch marker; the
driver re-invokes it as a fresh activation that resumes from the
checkpoint.

The worker is a **backend-neutral machine**: a plain-Python generator
that performs all I/O by yielding :data:`~repro.exec.protocols.ServiceCall`
tokens minted by its :class:`~repro.exec.protocols.ExecutionContext` —
never DES events, sockets, or the host clock directly.  The same machine
runs bit-identically on the simulator (:mod:`repro.exec.sim`) and for
real on threads (:mod:`repro.exec.local`).

Since the step-machine refactor the per-step skeleton lives in
:func:`repro.core.step_machine.worker_machine`; this module contributes
the **barrier family** of its policy phases
(:class:`BarrierWorkerPhases`: restore / reintegrate / barrier
synchronize / checkpoint-and-relaunch) plus the step core
:func:`train_step`, which every synchronization policy shares — BSP, SSP
and adaptive differ only in what surrounds the step, never in the step
itself.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..exec.protocols import ExecutionContext, Machine
from ..storage import StorageError
from ..trace.tracer import NO_SPAN
from . import messages
from .policies import SyncPolicy
from .runtime import JobRuntime, WorkerCheckpoint
from .significance import SignificanceFilter
from .step_machine import StepSpans, worker_machine

__all__ = ["worker_loop", "train_step", "BarrierWorkerPhases"]


def _fresh_checkpoint(runtime: JobRuntime, worker_id: int) -> WorkerCheckpoint:
    """Initial worker state: identical model replica on every worker."""
    config = runtime.config
    rng = np.random.default_rng(config.seed)  # same seed => same init
    params = config.model.init_params(rng)
    if config.make_filter is not None:
        sig_filter = config.make_filter(params.shapes())
    else:
        sig_filter = SignificanceFilter(config.significance_v, params.shapes())
    return WorkerCheckpoint(
        worker_id=worker_id,
        step=0,
        params=params,
        optimizer=config.make_optimizer(),
        sig_filter=sig_filter,
        active_workers=config.n_workers,
    )


def train_step(
    ectx: ExecutionContext,
    runtime: JobRuntime,
    state: WorkerCheckpoint,
    partition: List[int],
    t: int,
    scale: float,
) -> Machine:
    """One local training step, shared by every synchronization policy.

    Fetch the next mini-batch → charge compute → gradient → optimizer
    step scaled by ``scale`` (gradient averaging, §3.2) → apply locally →
    significance-filter → publish the significant part to the KV store.

    ``scale`` is the only algorithmic knob the synchronization policies
    disagree on — see :attr:`~repro.core.policies.SyncPolicy.scale_mode`.

    Returns ``(loss, outgoing, has_update)``.
    """
    sv = ectx.services
    config = runtime.config
    model = config.model
    worker_id = state.worker_id

    batch_idx = partition[(t - 1) % len(partition)]
    batch = yield sv.cos_get(runtime.bucket, runtime.batch_keys[batch_idx])

    # Local gradient — real arithmetic; CPU time charged via the backend
    # (simulated seconds from the calibrated flop model, or genuinely
    # elapsed wall time in the local backend).
    yield sv.compute(
        config.calibration.mlless_step_seconds(model.sparse_step_flops(batch))
    )
    loss, grad = model.gradient(state.params, batch)

    update = state.optimizer.step(state.params, grad, t).scale(scale)
    state.params.apply(update)
    outgoing = state.sig_filter.step(state.params, update, t)
    has_update = not outgoing.is_empty()
    if ectx.tracer.enabled:
        ectx.tracer.event(
            "filter.decision",
            "significance",
            worker=worker_id,
            step=t,
            significant=has_update,
            nnz=int(outgoing.nnz),
        )
    if has_update:
        yield sv.kv_set(runtime.update_key(t, worker_id), outgoing)
    return loss, outgoing, has_update


class BarrierWorkerPhases:
    """The barrier (BSP/ISP, and pre-switch adaptive) worker phases."""

    def __init__(
        self, ectx: ExecutionContext, runtime: JobRuntime, policy: SyncPolicy
    ):
        self.ectx = ectx
        self.runtime = runtime
        self.policy = policy
        self.partition: List[int] = []
        self.my_queue = ""
        self.started = 0.0

    def restore(self, payload: Dict[str, Any]) -> Machine:
        """Fresh replica, or resume from the KV checkpoint."""
        ectx = self.ectx
        runtime = self.runtime
        config = runtime.config
        sv = ectx.services
        worker_id: int = payload["worker_id"]
        self.started = ectx.clock.now()
        ectx.annotate(worker=worker_id, role="worker")

        if "stored" in payload:
            # The step machine already fetched the checkpoint to sniff
            # which policy family wrote it (adaptive resume).
            state = payload["stored"]
        elif payload.get("resume"):
            if config.ft_enabled:
                stored = yield sv.kv_get_or_none(runtime.checkpoint_key(worker_id))
                if stored is None:
                    # Crashed before the first checkpoint: start over.
                    state = _fresh_checkpoint(runtime, worker_id)
                    runtime.note_recovery("worker_fresh_restart")
                else:
                    # Snapshot so this activation's mutations never alias
                    # the checkpointed object still sitting in the KV store.
                    state = stored.snapshot()
                    runtime.note_recovery("worker_resumed")
            else:
                state = yield sv.kv_get(runtime.checkpoint_key(worker_id))
        else:
            state = _fresh_checkpoint(runtime, worker_id)

        self.partition = runtime.partitions[worker_id]
        self.my_queue = runtime.worker_queue(worker_id)
        return state

    def begin(self, state: WorkerCheckpoint, t: int) -> Machine:
        """Pending reintegration of an evicted peer's replica."""
        if state.pending_replica is not None:
            yield from _reintegrate(self.ectx, self.runtime, state)
        return None

    def scale(self, state: WorkerCheckpoint) -> float:
        # The *current* pool size: barrier pools shrink under scale-in.
        return 1.0 / state.active_workers

    def synchronize(
        self,
        state: WorkerCheckpoint,
        t: int,
        loss: float,
        outgoing,
        has_update: bool,
        spans: StepSpans,
    ) -> Machine:
        """Report to the supervisor, block on its release, pull peers."""
        ectx = self.ectx
        runtime = self.runtime
        config = runtime.config
        sv = ectx.services
        tracer = ectx.tracer
        worker_id = state.worker_id

        # The barrier span's self time is the genuine peer wait — the
        # queue wait in mq.consume happens before its charge span.
        if tracer.enabled:
            spans.barrier = tracer.begin(
                "barrier", f"barrier-{t}", worker=worker_id, step=t
            )
        report = messages.step_done(worker_id, t, loss, has_update, outgoing.nnz)
        if config.ft_enabled:
            # Kept so a lost report can be re-published on resync.
            state.last_report = report
        yield sv.mq_publish(runtime.supervisor_queue, report)

        if config.ft_enabled:
            release = yield from _await_release(sv, runtime, state, self.my_queue, t)
        else:
            release = yield sv.mq_consume(self.my_queue)
            if messages.validate(release) != messages.STEP_COMPLETE:
                raise RuntimeError(f"worker {worker_id}: unexpected {release!r}")
            if release["step"] != t:
                raise RuntimeError(
                    f"worker {worker_id}: barrier for step {release['step']} "
                    f"while at step {t}"
                )
        if spans.barrier >= 0:
            tracer.end(spans.barrier)
            spans.barrier = NO_SPAN
        peer_updates = []
        for peer in release["senders"]:
            if peer == worker_id:
                continue
            peer_updates.append((yield sv.kv_get(runtime.update_key(t, peer))))
        # Fused scatter, bit-identical to applying one update at a time in
        # sender order (see ParameterSet.apply_many).  Peers must NOT be
        # pre-merged into one update: (w + v1) + v2 != w + (v1 + v2) in
        # floats, and the convergence traces are checked bit-exactly.
        state.params.apply_many(peer_updates)

        state.step = t
        state.active_workers = release["active"]

        evicted = release["evict"]
        if evicted == worker_id:
            yield from _depart(sv, runtime, state)
            return {"worker": worker_id, "steps": t, "outcome": "evicted"}
        if evicted is not None:
            state.pending_replica = (t, evicted)

        if release["stop"]:
            return {"worker": worker_id, "steps": t, "outcome": "converged"}

        if self.policy.name == "adaptive" and release.get("switch") == "ssp":
            # The controller ordered the sync switch: hand the live
            # replica to the gossip family (peers are at step t too).
            return {
                "outcome": "sync_switch",
                "handoff": {
                    "step": t,
                    "peers": [p for p in release["peers"] if p != worker_id],
                },
            }
        return None

    def persist(self, state: WorkerCheckpoint, t: int) -> Machine:
        """Periodic FT checkpoint; relaunch near the duration cap."""
        ectx = self.ectx
        runtime = self.runtime
        config = runtime.config
        sv = ectx.services
        worker_id = state.worker_id

        # FT: periodic barrier checkpoint so a crashed activation resumes
        # from the last completed step instead of from scratch.  Snapshot:
        # the KV store holds objects by reference, and the live replica
        # keeps mutating after the write.
        checkpointed = False
        ckpt_every = config.checkpoint_every
        if ckpt_every and t % ckpt_every == 0:
            try:
                yield sv.kv_set(
                    runtime.checkpoint_key(worker_id), state.snapshot()
                )
                checkpointed = True
            except StorageError:
                # A lost checkpoint only costs recomputation after a crash.
                runtime.note_recovery("checkpoint_skipped")

        # Relaunch before the platform kills the activation.
        if ectx.clock.remaining_time(self.started) < config.relaunch_margin_s:
            if not checkpointed:
                yield sv.kv_set(runtime.checkpoint_key(worker_id), state)
            return {"worker": worker_id, "steps": t, "outcome": "relaunch"}
        return None


def worker_loop(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """The worker machine entry point (barrier families by default)."""
    return worker_machine(ectx, payload)


def _await_release(
    sv: Any,
    runtime: JobRuntime,
    state: WorkerCheckpoint,
    my_queue: str,
    t: int,
) -> Machine:
    """FT barrier wait: tolerate stale releases, duplicates and resyncs.

    Returns the ``step_complete`` message for step ``t``.
    """
    worker_id = state.worker_id
    while True:
        message = yield sv.mq_consume(my_queue)
        mtype = messages.validate(message)
        if mtype == messages.STEP_COMPLETE:
            if message["step"] == t:
                return message
            if message["step"] < t:
                # Re-delivered or re-sent release for a step already done.
                runtime.note_recovery("stale_release_skipped")
                continue
            raise RuntimeError(
                f"worker {worker_id}: barrier for step {message['step']} "
                f"while at step {t}"
            )
        if mtype == messages.RESYNC:
            release = message.get("release")
            if release is not None and release["step"] == t:
                # Our copy of the release was lost: use the re-sent one.
                runtime.note_recovery("release_recovered")
                return release
            if (
                message["step"] == t
                and state.last_report is not None
                and state.last_report["step"] == t
            ):
                # The supervisor never saw our report: re-publish it.
                yield sv.mq_publish(runtime.supervisor_queue, state.last_report)
                runtime.note_recovery("report_republished")
            continue
        raise RuntimeError(f"worker {worker_id}: unexpected {message!r}")


def _reintegrate(
    ectx: ExecutionContext, runtime: JobRuntime, state: WorkerCheckpoint
) -> Machine:
    """Merge a departed peer's replica by model averaging (for v > 0)."""
    evict_step, peer = state.pending_replica
    state.pending_replica = None
    if runtime.config.significance_v == 0 or not runtime.config.reintegrate_on_evict:
        # BSP replicas are exact copies — averaging is a no-op (Corollary
        # in Appendix A), so the one-shot synchronization is skipped.
        return
    sv = ectx.services
    key = runtime.replica_key(evict_step, peer)
    # The replica may not be stored yet; poll with short waits.  With FT
    # on, the departed peer may have crashed before storing it: give up
    # after a deadline instead of polling forever.
    deadline = ectx.clock.now() + runtime.config.reintegrate_deadline_s
    while not (yield sv.kv_exists(key)):
        if runtime.config.ft_enabled and ectx.clock.now() >= deadline:
            runtime.note_recovery("reintegration_skipped")
            return
        yield sv.sleep(0.01)
    replica = yield sv.kv_get(key)
    state.params.average_with(replica)


def _depart(sv: Any, runtime: JobRuntime, state: WorkerCheckpoint) -> Machine:
    """Store the local replica, notify the supervisor, terminate."""
    key = runtime.replica_key(state.step, state.worker_id)
    if runtime.config.significance_v > 0 and runtime.config.reintegrate_on_evict:
        yield sv.kv_set(key, state.params)
    yield sv.mq_publish(
        runtime.supervisor_queue,
        messages.departed(state.worker_id, state.step, key),
    )
