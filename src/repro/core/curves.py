"""Learning-curve models and non-negative least-squares fitting (§4.2).

Two curve families, exactly as in the paper:

Reference curve (fast-convergence region), Eq. (2)::

    L_P(t) = 1 / (theta0 * t^theta1 + theta2) + theta3

Slow-convergence curve (after the knee), Eq. (3), as in SLAQ [37]::

    l_p(t) = 1 / (theta0 * t^2 + theta1 * t + theta2) + theta3

All coefficients are constrained non-negative; fitting uses
``scipy.optimize.curve_fit`` with box bounds (the paper cites SciPy's
curve_fit as its NNLS solver).  Loss values should be EWMA-smoothed before
fitting (the supervisor does this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.optimize import curve_fit

__all__ = ["ReferenceCurve", "SlowCurve", "CurveFitError"]

_EPS = 1e-12


class CurveFitError(RuntimeError):
    """Raised when a learning curve cannot be fitted to the data."""


def _reference_form(t, a, b, c, d):
    return 1.0 / (a * np.power(t, b) + c + _EPS) + d


def _slow_form(t, a, b, c, d):
    return 1.0 / (a * t * t + b * t + c + _EPS) + d


def _fit(form, t, y, p0, maxfev=20000) -> np.ndarray:
    t = np.asarray(t, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if t.shape != y.shape or t.ndim != 1:
        raise ValueError("t and y must be 1-D arrays of equal length")
    if len(t) < 5:
        raise CurveFitError(f"need >= 5 points to fit, got {len(t)}")
    if np.any(t <= 0):
        raise ValueError("steps must be positive (1-based)")
    try:
        theta, _ = curve_fit(
            form,
            t,
            y,
            p0=p0,
            bounds=(0.0, np.inf),
            maxfev=maxfev,
        )
    except (RuntimeError, ValueError) as exc:
        raise CurveFitError(f"curve fit failed: {exc}") from exc
    return theta


@dataclass(frozen=True)
class ReferenceCurve:
    """Fitted Eq. (2): the P-worker reference loss curve ``L_P(t)``."""

    theta: Tuple[float, float, float, float]

    @classmethod
    def fit(cls, steps: np.ndarray, losses: np.ndarray) -> "ReferenceCurve":
        """Fit to (step, smoothed-loss) points from the fast region."""
        y = np.asarray(losses, dtype=np.float64)
        floor = max(float(y.min()) * 0.5, 0.0)
        p0 = [0.05, 1.0, 1.0 / max(y.max() - floor, _EPS), floor]
        theta = _fit(_reference_form, steps, y, p0)
        return cls(tuple(float(v) for v in theta))

    def predict(self, t) -> np.ndarray:
        """Expected loss at step(s) ``t``."""
        return _reference_form(np.asarray(t, dtype=np.float64), *self.theta)

    def __call__(self, t):
        return self.predict(t)


@dataclass(frozen=True)
class SlowCurve:
    """Fitted Eq. (3): the p-worker slow-convergence curve ``l_p(t)``."""

    theta: Tuple[float, float, float, float]
    #: step offset: the curve is fitted on steps since the last removal,
    #: so predictions must shift by the fit origin.
    origin: int = 0

    @classmethod
    def fit(
        cls, steps: np.ndarray, losses: np.ndarray, origin: int = 0
    ) -> "SlowCurve":
        """Fit to points collected *since the last worker removal*.

        ``steps`` are absolute step numbers; ``origin`` is subtracted so
        the quadratic's domain starts near zero (better conditioning).
        """
        steps = np.asarray(steps, dtype=np.float64) - origin
        if np.any(steps <= 0):
            raise ValueError("all steps must be > origin")
        y = np.asarray(losses, dtype=np.float64)
        floor = max(float(y.min()) * 0.5, 0.0)
        p0 = [1e-6, 1e-3, 1.0 / max(y.max() - floor, _EPS), floor]
        theta = _fit(_slow_form, steps, y, p0)
        return cls(tuple(float(v) for v in theta), origin=origin)

    def predict(self, t) -> np.ndarray:
        """Expected loss at absolute step(s) ``t``."""
        shifted = np.asarray(t, dtype=np.float64) - self.origin
        return _slow_form(np.maximum(shifted, 1.0), *self.theta)

    def __call__(self, t):
        return self.predict(t)


def prediction_error(actual: np.ndarray, predicted: np.ndarray) -> np.ndarray:
    """Relative error |actual - predicted| / actual (Fig. 2c's metric)."""
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    return np.abs(actual - predicted) / np.maximum(np.abs(actual), _EPS)
