"""The scale-in auto-tuner (§4.2).

A pure decision engine driven by the supervisor: it observes one (step,
completion-time, loss) triple per training step and answers "should a
worker be removed now?".  The algorithm follows the paper:

1. **Warm-up** — wait for the "knee" of the learning curve.  When found,
   fit the reference curve ``L_P(t)`` (Eq. 2) on the smoothed loss history
   and estimate the reference step duration ``d_P``; then remove the
   first worker.
2. **Steady state** — every scheduling epoch ``T``: fit the
   slow-convergence curve ``l_p(t)`` (Eq. 3) *only on points since the
   last removal*, estimate the current step duration ``d_p``, and remove
   another worker iff the projected relative loss-reduction deviation at
   horizon ``Delta`` (Eq. 1) is below the threshold ``S``.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .config import AutoTunerConfig
from .curves import CurveFitError, ReferenceCurve, SlowCurve
from .ewma import EWMAFilter
from .knee import KneedleDetector, SlopeKneeDetector

__all__ = ["ScaleInScheduler", "SchedulerDecision"]


@dataclass(frozen=True)
class SchedulerDecision:
    """Outcome of one scheduling evaluation (for logging/tests)."""

    evict: bool
    s_delta: Optional[float] = None
    reason: str = ""


class ScaleInScheduler:
    """Decides when to shrink the worker pool."""

    def __init__(self, config: AutoTunerConfig, initial_workers: int):
        if initial_workers < 1:
            raise ValueError(f"initial_workers must be >= 1, got {initial_workers}")
        self.config = config
        self.initial_workers = initial_workers
        self.current_workers = initial_workers

        self._ewma = EWMAFilter(config.ewma_alpha)
        self._steps: List[int] = []
        self._times: List[float] = []
        self._smoothed: List[float] = []
        if config.knee_method == "kneedle":
            self._knee = KneedleDetector()
        else:
            self._knee = SlopeKneeDetector(
                slope_threshold=config.knee_slope_threshold,
                patience=config.knee_patience,
            )
        self.knee_step: Optional[int] = None
        self.reference: Optional[ReferenceCurve] = None
        self.d_reference: Optional[float] = None
        self._last_removal_step: Optional[int] = None
        self._next_decision_time: Optional[float] = None
        self.decisions: List[SchedulerDecision] = []

    # -- observation -------------------------------------------------------
    def observe(self, step: int, sim_time: float, loss: float) -> None:
        """Record the mean loss of completed step ``step`` at ``sim_time``."""
        if self._steps and step <= self._steps[-1]:
            raise ValueError(f"steps must be increasing, got {step}")
        self._steps.append(step)
        self._times.append(sim_time)
        self._smoothed.append(self._ewma.update(loss))

    # -- decision -------------------------------------------------------
    def should_evict(self, sim_time: float) -> SchedulerDecision:
        """Evaluate the scale-in condition at ``sim_time``."""
        if not self.config.enabled:
            return self._record(SchedulerDecision(False, reason="disabled"))
        if self.current_workers <= self.config.min_workers:
            return self._record(SchedulerDecision(False, reason="at floor"))
        if self.knee_step is None:
            return self._maybe_pass_knee(sim_time)
        if sim_time < (self._next_decision_time or 0.0):
            return self._record(SchedulerDecision(False, reason="waiting epoch"))
        return self._steady_state_decision(sim_time)

    def notify_evicted(self) -> None:
        """The supervisor confirmed a worker left the pool."""
        self.current_workers -= 1
        self._last_removal_step = self._steps[-1] if self._steps else 0

    def clone(self) -> "ScaleInScheduler":
        """An independent copy (supervisor checkpoint snapshotting).

        The config, knee detector and fitted curves are immutable /
        stateless across calls and stay shared; the observation histories
        and the EWMA register are copied.
        """
        dup = copy.copy(self)
        dup._ewma = copy.copy(self._ewma)
        dup._steps = list(self._steps)
        dup._times = list(self._times)
        dup._smoothed = list(self._smoothed)
        dup.decisions = list(self.decisions)
        return dup

    # -- internals -------------------------------------------------------
    def _record(self, decision: SchedulerDecision) -> SchedulerDecision:
        self.decisions.append(decision)
        return decision

    def _mean_step_duration(self, since_step: Optional[int] = None) -> Optional[float]:
        times = np.asarray(self._times)
        steps = np.asarray(self._steps)
        if since_step is not None:
            mask = steps > since_step
            times = times[mask]
        if len(times) < 2:
            return None
        return float(np.mean(np.diff(times)))

    def _maybe_pass_knee(self, sim_time: float) -> SchedulerDecision:
        if self.config.ignore_knee_gate and len(self._smoothed) >= 8:
            knee = len(self._smoothed) - 1
        else:
            knee = self._knee.detect(self._smoothed)
            if knee is None:
                return self._record(SchedulerDecision(False, reason="before knee"))
        # Fit the reference curve on the history collected so far and
        # estimate the reference step duration.
        steps = np.asarray(self._steps, dtype=np.float64)
        try:
            self.reference = ReferenceCurve.fit(
                steps, np.asarray(self._smoothed)
            )
        except CurveFitError:
            return self._record(
                SchedulerDecision(False, reason="reference fit failed")
            )
        self.d_reference = self._mean_step_duration()
        if self.d_reference is None:
            return self._record(SchedulerDecision(False, reason="no durations"))
        self.knee_step = self._steps[knee] if knee < len(self._steps) else self._steps[-1]
        # First removal happens right at the knee (§4.2 "After estimation
        # of these quantities, the scheduler removes the worker ...").
        self._next_decision_time = sim_time + self.config.epoch_s
        return self._record(SchedulerDecision(True, reason="knee passed"))

    def _fit_slow_curve(self) -> Optional[SlowCurve]:
        origin = self._last_removal_step or 0
        steps = np.asarray(self._steps, dtype=np.float64)
        mask = steps > origin
        pts_t = steps[mask]
        pts_y = np.asarray(self._smoothed)[mask]
        if len(pts_t) < 5:
            return None
        try:
            if self.config.slow_curve_family == "power":
                # Ablation: reuse the reference family in the slow region.
                ref = ReferenceCurve.fit(pts_t - origin, pts_y)
                return SlowCurve(ref.theta, origin=origin)
            return SlowCurve.fit(pts_t, pts_y, origin=origin)
        except CurveFitError:
            return None

    def _steady_state_decision(self, sim_time: float) -> SchedulerDecision:
        slow = self._fit_slow_curve()
        if slow is None:
            self._next_decision_time = sim_time + self.config.epoch_s
            return self._record(SchedulerDecision(False, reason="slow fit failed"))
        d_p = self._mean_step_duration(since_step=self._last_removal_step)
        if d_p is None or d_p <= 0 or not self.d_reference:
            self._next_decision_time = sim_time + self.config.epoch_s
            return self._record(SchedulerDecision(False, reason="no durations"))

        t = self._steps[-1]
        delta = self.config.delta_s
        step_ref = t + math.floor(delta / self.d_reference)
        step_cur = t + math.floor(delta / d_p)
        expected_ref = float(self.reference.predict(step_ref))
        expected_cur = float(slow.predict(step_cur))
        if abs(expected_ref) < 1e-12:
            self._next_decision_time = sim_time + self.config.epoch_s
            return self._record(SchedulerDecision(False, reason="flat reference"))
        s_delta = (expected_ref - expected_cur) / expected_ref
        # Eq. (1) measures the *deviation introduced by having fewer
        # workers*: positive when the reduced pool lags the reference.
        s_delta = -s_delta  # ref - cur < 0 when current is worse (higher loss)
        self._next_decision_time = sim_time + self.config.epoch_s
        if s_delta < self.config.s_threshold:
            return self._record(
                SchedulerDecision(True, s_delta=s_delta, reason="below threshold")
            )
        return self._record(
            SchedulerDecision(False, s_delta=s_delta, reason="above threshold")
        )
