"""The MLLess driver (§3.1).

Runs "on the scientist's machine": stages the dataset, provisions the two
service VMs (messaging + Redis, the components of the MLLess bill besides
the functions), registers the worker and supervisor functions, launches
them, and re-invokes any activation that returns a relaunch marker after
checkpointing at the duration cap.  Produces a
:class:`~repro.core.history.RunResult`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..exec.sim import (
    pipeline_stage_handler,
    ssp_supervisor_handler,
    ssp_worker_handler,
    supervisor_handler,
    worker_handler,
)
from ..faas import FaaSPlatform, FunctionSpec
from ..pricing import CostMeter
from ..sim import Environment, Interrupt
from ..trace.tracer import NO_SPAN
from .history import RunResult
from .runtime import JobRuntime

__all__ = ["MLLessDriver"]

#: instance types provisioned for the MLLess services (Table 2 roles)
MESSAGING_INSTANCE = "C1.4x4"
REDIS_INSTANCE = "M1.2x16"

#: FT: after the supervisor finishes, how long the driver waits for the
#: worker roles to drain before interrupting the stragglers (an abandoned
#: worker may be blocked on a barrier release that will never come)
WORKER_DRAIN_GRACE_S = 30.0


class MLLessDriver:
    """Orchestrates one MLLess training job end to end."""

    def __init__(
        self,
        env: Environment,
        platform: FaaSPlatform,
        runtime: JobRuntime,
        meter: Optional[CostMeter] = None,
    ):
        self.env = env
        self.platform = platform
        self.runtime = runtime
        self.meter = meter if meter is not None else CostMeter()
        if self.meter.faas is None:
            self.meter.faas = platform.billing
        self.result: Optional[RunResult] = None
        self._supervisor_report: Optional[Dict[str, Any]] = None

    # -- public API ---------------------------------------------------------
    def run(self) -> RunResult:
        """Run the whole job to completion (drives the event loop)."""
        done = self.env.process(self.run_process(), name="mlless-driver")
        self.env.run(until=done)
        if not done.ok:
            raise done.value
        assert self.result is not None
        return self.result

    def run_process(self) -> Generator:
        """The driver as a simulation process (for composition)."""
        runtime = self.runtime
        config = runtime.config
        tracer = runtime.tracer

        messaging_lease = self.meter.lease(MESSAGING_INSTANCE, self.env.now)
        redis_lease = self.meter.lease(REDIS_INSTANCE, self.env.now)

        self._register_functions()
        self._declare_channels()

        started_at = self.env.now
        sp_job = NO_SPAN
        if tracer.enabled:
            sp_job = tracer.begin(
                "job",
                "mlless-job",
                n_workers=config.n_workers,
                sync=config.sync,
                v=config.significance_v,
            )
        try:
            yield from self._run_roles(runtime, config, tracer, sp_job)
        finally:
            if sp_job >= 0:
                tracer.end(sp_job)
        finished_at = self.env.now

        self.meter.release(messaging_lease, finished_at)
        self.meter.release(redis_lease, finished_at)

        report = self._supervisor_report or {}
        extras = {
            "stop_reason_is_target": float(report.get("converged", False)),
        }
        if self.platform.faults is not None:
            stats = self.platform.faults.stats
            extras["faults_injected"] = float(stats.total_injected)
            extras["faults_recovered"] = float(stats.total_recovered)
            for key, value in stats.summary().items():
                extras[key] = float(value)
        self.result = RunResult(
            system="mlless",
            monitor=runtime.monitor,
            meter=self.meter,
            started_at=started_at,
            finished_at=finished_at,
            converged=bool(report.get("converged")),
            final_loss=report.get("final_loss"),
            total_steps=int(report.get("steps", 0)),
            extras=extras,
        )
        return self.result

    def _run_roles(self, runtime, config, tracer, sp_job) -> Generator:
        """Launch one process per role and wait for the job to drain."""
        worker_fn, supervisor_fn = self._function_names()
        roles = [
            self.env.process(
                self._run_role(supervisor_fn, {"runtime": runtime}),
                name="role-supervisor",
            )
        ]
        for w in range(config.n_workers):
            roles.append(
                self.env.process(
                    self._run_role(
                        worker_fn, {"runtime": runtime, "worker_id": w}
                    ),
                    name=f"role-worker-{w}",
                )
            )
        if sp_job >= 0:
            # Invoke spans opened by the role processes nest under the job.
            for role in roles:
                tracer.adopt(role, sp_job)
        if config.ft_enabled:
            # The supervisor decides when the job is over; workers that
            # were abandoned mid-job may be blocked forever on a barrier
            # release, so wait for them only up to a grace period, then
            # interrupt the stragglers (their activations are still
            # billed — FaaS charges failed activations for consumed GB-s).
            yield roles[0]
            workers_done = self.env.all_of(roles[1:])
            grace = self.env.timeout(WORKER_DRAIN_GRACE_S)
            result = yield self.env.any_of([workers_done, grace])
            if workers_done not in result:
                for role in roles[1:]:
                    if role.is_alive:
                        role.interrupt(cause="job-finished")
                yield workers_done
        else:
            yield self.env.all_of(roles)

    # -- internals -------------------------------------------------------
    def _function_names(self):
        if self.runtime.config.pipeline_stages > 1:
            # Model-parallel: one stage function per "worker" slot, the
            # ordinary barrier supervisor.
            return "mlless-pipeline-stage", "mlless-supervisor"
        if self.runtime.config.sync == "ssp":
            return "mlless-ssp-worker", "mlless-ssp-supervisor"
        return "mlless-worker", "mlless-supervisor"

    def _register_functions(self) -> None:
        memory = self.runtime.config.worker_memory_mb
        worker_fn, supervisor_fn = self._function_names()
        handlers = {
            "mlless-worker": worker_handler,
            "mlless-supervisor": supervisor_handler,
            "mlless-ssp-worker": ssp_worker_handler,
            "mlless-ssp-supervisor": ssp_supervisor_handler,
            "mlless-pipeline-stage": pipeline_stage_handler,
        }
        for name in (worker_fn, supervisor_fn):
            if not self.platform.is_registered(name):
                self.platform.register(
                    FunctionSpec(name, handlers[name], memory_mb=memory)
                )

    def _declare_channels(self) -> None:
        runtime = self.runtime
        runtime.mq.declare(runtime.supervisor_queue)
        for w in range(runtime.config.n_workers):
            queue = runtime.worker_queue(w)
            runtime.mq.declare(queue)
            runtime.exchange.bind(queue)

    def _run_role(self, function: str, payload: Dict[str, Any]) -> Generator:
        """Invoke ``function``; re-invoke while it asks for a relaunch.

        With fault tolerance on, a *failed* activation (crash, timeout,
        storage error) is also re-invoked — resuming from its checkpoint —
        with capped exponential backoff, up to ``max_invoke_retries``
        consecutive failures; after that a worker role is abandoned (the
        supervisor shrinks the pool around it) while a supervisor failure
        is fatal to the job.
        """
        config = self.runtime.config
        attempt = 0
        while True:
            activation = self.platform.invoke(function, payload)
            try:
                yield activation.process
                result = activation.result()
            except Interrupt:
                # Driver shutdown: kill the live activation so it gets
                # finalized (and billed) instead of lingering unfinished.
                if activation.process.is_alive:
                    activation.process.interrupt(cause="driver-shutdown")
                return {"outcome": "abandoned", "function": function}
            except Exception as error:
                if not config.ft_enabled:
                    raise
                attempt += 1
                if attempt > config.max_invoke_retries:
                    if function.endswith("supervisor"):
                        raise
                    self.runtime.note_recovery("worker_retries_exhausted")
                    return {
                        "outcome": "abandoned",
                        "function": function,
                        "error": repr(error),
                    }
                self.runtime.note_recovery("invoke_retry")
                if self.runtime.tracer.enabled:
                    self.runtime.tracer.event(
                        "invoke",
                        "retry",
                        function=function,
                        attempt=attempt,
                        error=type(error).__name__,
                    )
                backoff = min(
                    config.retry_backoff_base_s * 2 ** (attempt - 1),
                    config.retry_backoff_cap_s,
                )
                try:
                    yield self.env.timeout(backoff)
                except Interrupt:
                    return {"outcome": "abandoned", "function": function}
                payload = {**payload, "resume": True}
                continue
            attempt = 0
            if isinstance(result, dict) and result.get("outcome") == "relaunch":
                if self.runtime.tracer.enabled:
                    self.runtime.tracer.event(
                        "invoke", "relaunch", function=function
                    )
                payload = {**payload, "resume": True}
                continue
            if function.endswith("supervisor"):
                self._supervisor_report = result
            return result
