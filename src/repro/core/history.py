"""Training-run results: loss/worker/cost trajectories and derived metrics.

Every trainer in this repo (MLLess, the serverful baseline, the PyWren
baseline) returns a :class:`RunResult`, so the experiment harnesses can
compare systems uniformly: time-to-loss, cost-to-loss, Perf/$ (§6.2) and
the loss reachable under a fixed budget (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..pricing import CostMeter
from ..sim import Monitor

__all__ = ["RunResult", "perf_per_dollar"]


def perf_per_dollar(exec_time_s: float, price_usd: float) -> float:
    """The paper's composite metric: ``1 / (time * price)``; higher is better."""
    if exec_time_s <= 0 or price_usd <= 0:
        raise ValueError("exec time and price must both be positive")
    return 1.0 / (exec_time_s * price_usd)


@dataclass
class RunResult:
    """Trajectories and accounting of one training run."""

    system: str
    #: monitor with series "loss" (sim-time -> mean step loss),
    #: "loss_by_step" (step -> loss), "workers" (sim-time -> active count),
    #: "step_duration" (step -> seconds)
    monitor: Monitor
    meter: CostMeter
    #: simulated time the job started computing (post setup/boot)
    started_at: float
    #: simulated time the job stopped
    finished_at: float
    #: setup time excluded from exec time (VM boot for serverful; the
    #: paper's comparison excludes start-up time on both sides)
    setup_duration: float = 0.0
    converged: bool = False
    final_loss: Optional[float] = None
    total_steps: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    # -- durations -------------------------------------------------------
    @property
    def exec_time(self) -> float:
        """Execution time excluding setup (the paper's headline metric)."""
        return self.finished_at - self.started_at

    @property
    def wall_time(self) -> float:
        """Execution time including setup."""
        return self.exec_time + self.setup_duration

    # -- cost -------------------------------------------------------------
    @property
    def total_cost(self) -> float:
        return self.meter.total_cost()

    def cost_at(self, sim_time: float) -> float:
        return self.meter.total_cost(up_to=sim_time)

    @property
    def perf_per_dollar(self) -> float:
        return perf_per_dollar(self.exec_time, self.total_cost)

    # -- loss queries ------------------------------------------------------
    def losses(self):
        """(sim_times, losses) arrays of the smoothed-free raw loss series."""
        return self.monitor.series("loss").as_arrays()

    def time_to_loss(self, threshold: float) -> Optional[float]:
        """Seconds (from ``started_at``) to first reach ``threshold``."""
        t = self.monitor.series("loss").time_to_reach(threshold)
        return None if t is None else t - self.started_at

    def cost_to_loss(self, threshold: float) -> Optional[float]:
        """$ spent when the loss first reached ``threshold``."""
        t = self.monitor.series("loss").time_to_reach(threshold)
        return None if t is None else self.cost_at(t)

    def best_loss_within_budget(self, budget_usd: float) -> Optional[float]:
        """Lowest loss reached before spending ``budget_usd`` (Fig. 7).

        Returns None when the budget cannot even cover the first loss
        report.
        """
        if budget_usd <= 0:
            return None
        times, losses = self.losses()
        best = None
        for t, loss in zip(times, losses):
            if self.cost_at(t) > budget_usd:
                break
            best = loss if best is None else min(best, loss)
        return best

    def time_within_budget(self, budget_usd: float) -> float:
        """Maximum exec seconds affordable with ``budget_usd`` (Fig. 7 bars).

        Found by bisection on the cumulative cost curve over the run's
        span; if the whole run costs less than the budget, extrapolates at
        the run's average burn rate.
        """
        if budget_usd <= 0:
            return 0.0
        total = self.total_cost
        if total <= budget_usd:
            rate = total / max(self.exec_time, 1e-9)
            return budget_usd / rate if rate > 0 else float("inf")
        lo, hi = self.started_at, self.finished_at
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.cost_at(mid) <= budget_usd:
                lo = mid
            else:
                hi = mid
        return lo - self.started_at

    # -- worker trajectory ----------------------------------------------
    def final_worker_count(self) -> Optional[int]:
        last = self.monitor.series("workers").last()
        return None if last is None else int(last[1])

    def mean_step_duration(self) -> float:
        return self.monitor.series("step_duration").mean()

    def steps_per_second(self) -> float:
        return 1.0 / self.mean_step_duration()

    def summary(self) -> Dict[str, object]:
        out = {
            "system": self.system,
            "exec_time_s": round(self.exec_time, 3),
            "total_cost_usd": round(self.total_cost, 6),
            "converged": self.converged,
            "final_loss": self.final_loss,
            "steps": self.total_steps,
            "final_workers": self.final_worker_count(),
        }
        if "faults_injected" in self.extras:
            out["faults"] = int(self.extras["faults_injected"])
            out["recoveries"] = int(self.extras.get("faults_recovered", 0))
        return out
