"""The unified per-step worker/supervisor machines.

Before this module the BSP and SSP training loops were two hand-written
pairs (``core/worker.py`` + ``core/supervisor.py`` and ``core/ssp.py``)
that duplicated the step skeleton.  Now there is exactly one worker
skeleton (:func:`worker_machine`) and one supervisor dispatcher
(:func:`supervisor_machine`); what used to be the loop bodies survives
as *policy phase objects* selected by the job's
:class:`~repro.core.policies.SyncPolicy`:

========  ==========================  ===========================
phase     barrier family              gossip family
========  ==========================  ===========================
restore   checkpoint / fresh replica  checkpoint / fresh + view
begin     merge evicted peer replica  drain peers, staleness gate
(step)    :func:`train_step` — shared by every policy
sync      report, barrier, pull       broadcast update, report
persist   barrier ckpt + relaunch     relaunch checkpoint
========  ==========================  ===========================

The phase objects live next to the machinery they reuse
(``BarrierWorkerPhases`` in :mod:`repro.core.worker`,
``GossipWorkerPhases`` in :mod:`repro.core.ssp`) and are imported
lazily here to keep the module graph acyclic.

Every phase preserves the pre-refactor service-call sequence **exactly**
— the pinned seed-digest tests in ``tests/exec/test_backend_seam.py``
hold the refactor to byte-identical monitor traces for BSP, SSP and the
chaos variants.

Mid-job policy switching (the SMLT-style adaptive mode) works by
*epochs*: a phase may finish with a ``sync_switch`` outcome carrying a
handoff dict, and the machine re-enters the loop under
:func:`~repro.core.policies.gossip_policy` with the same live state.
"""

from __future__ import annotations

from typing import Any, Dict

from ..exec.protocols import ExecutionContext, Machine
from ..trace.tracer import NO_SPAN
from .policies import BARRIER, gossip_policy, resolve_policy
from .runtime import JobRuntime

__all__ = ["worker_machine", "supervisor_machine", "StepSpans"]


class StepSpans:
    """The per-step tracer spans a barrier worker opens and must close.

    Handed into the synchronize phase so it can close the barrier span
    the moment the release arrives (the span's self time is the genuine
    peer wait); the machine's ``finally`` closes whatever is left open
    when a step exits early.
    """

    __slots__ = ("step", "barrier")

    def __init__(self):
        self.step = NO_SPAN
        self.barrier = NO_SPAN


def _worker_phases(policy):
    if policy.family == BARRIER:
        from .worker import BarrierWorkerPhases

        return BarrierWorkerPhases
    from .ssp import GossipWorkerPhases

    return GossipWorkerPhases


def worker_machine(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """The one worker machine every synchronization policy runs through."""
    from .worker import train_step

    runtime: JobRuntime = payload["runtime"]
    config = runtime.config
    tracer = ectx.tracer
    policy = resolve_policy(config)

    if payload.get("resume") and config.sync == "adaptive":
        # An adaptive job may have switched families before this
        # relaunch; the checkpoint's shape says which side wrote it
        # (gossip checkpoints are (state, view) tuples).
        stored = yield ectx.services.kv_get(
            runtime.checkpoint_key(payload["worker_id"])
        )
        if isinstance(stored, tuple):
            policy = gossip_policy(config)
        payload = {**payload, "stored": stored}

    while True:
        phases = _worker_phases(policy)(ectx, runtime, policy)
        state = yield from phases.restore(payload)
        worker_id = state.worker_id
        outcome = None

        while outcome is None:
            t = state.step + 1
            spans = StepSpans()
            if policy.traced_steps and tracer.enabled:
                spans.step = tracer.begin(
                    "step", f"step-{t}", worker=worker_id, step=t
                )
            try:
                outcome = yield from phases.begin(state, t)
                if outcome is not None:
                    break
                loss, outgoing, has_update = yield from train_step(
                    ectx, runtime, state, phases.partition, t, phases.scale(state)
                )
                outcome = yield from phases.synchronize(
                    state, t, loss, outgoing, has_update, spans
                )
                if outcome is not None:
                    break
                outcome = yield from phases.persist(state, t)
            finally:
                if spans.barrier >= 0:
                    tracer.end(spans.barrier)
                if spans.step >= 0:
                    tracer.end(spans.step)

        if outcome.get("outcome") != "sync_switch":
            return outcome
        # Mid-job policy switch: same replica, new coordination family.
        policy = gossip_policy(config)
        payload = {
            "runtime": runtime,
            "worker_id": worker_id,
            "handoff": {**outcome["handoff"], "state": state},
        }


def supervisor_machine(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """The supervisor dispatcher: one epoch per active policy family."""
    runtime: JobRuntime = payload["runtime"]
    config = runtime.config
    policy = resolve_policy(config)

    if payload.get("resume") and config.sync == "adaptive":
        # Same family sniffing as the worker: the gossip supervisor
        # checkpoints a plain dict, the barrier one a SupervisorState.
        stored = yield ectx.services.kv_get(runtime.supervisor_checkpoint_key)
        if isinstance(stored, dict):
            policy = gossip_policy(config)
        payload = {**payload, "stored": stored}

    while True:
        if policy.family == BARRIER:
            from .supervisor import barrier_supervisor_epoch as epoch
        else:
            from .ssp import gossip_supervisor_epoch as epoch
        outcome = yield from epoch(ectx, payload)
        if not (isinstance(outcome, dict) and outcome.get("outcome") == "sync_switch"):
            return outcome
        policy = gossip_policy(config)
        payload = {"runtime": runtime, "handoff": outcome["handoff"]}
