"""SMLT-style adaptive hybrid scaling (PAPERS.md).

SMLT's observation is that no static configuration wins for a whole job:
when the pool is balanced, the BSP barrier is cheapest (exact averaging,
trivial convergence accounting); when stragglers appear, every step costs
``max(worker times)`` and a staleness-bounded gossip mode recovers the
lost throughput.  The :class:`AdaptiveController` lives inside the
barrier supervisor and watches the *report-arrival skew* of each barrier
— the gap between the first and last ``step_done`` arrival, normalized
by the step duration.  Smoothed through the same
:class:`~repro.core.ewma.EWMAFilter` machinery the scale-in scheduler
uses, the skew drives two escalating reactions:

1. **evict** — one persistent straggler (the same worker is last for
   ``evict_patience`` consecutive barriers while skew is high) is evicted
   through the ordinary scale-in release path, shrinking the pool;
2. **switch** — diffuse skew (high smoothed skew for ``patience``
   barriers with no single culprit, or the eviction budget spent) flips
   the job from the barrier family to the gossip family mid-step via the
   ``sync_switch`` epoch handoff in :mod:`repro.core.step_machine`.

The controller is pure bookkeeping: it never yields, never touches
services, and is cloned with the supervisor checkpoint, so relaunches
resume its streaks exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .ewma import EWMAFilter

__all__ = ["AdaptiveConfig", "AdaptiveController", "AdaptiveDecision"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs for the adaptive sync/pool controller."""

    #: barriers observed before any decision may fire
    warmup_steps: int = 5
    #: EWMA smoothing for the arrival-skew ratio
    ewma_alpha: float = 0.4
    #: smoothed skew/duration ratio above which a barrier counts as slow
    skew_threshold: float = 0.5
    #: consecutive slow barriers before switching sync family
    patience: int = 3
    #: consecutive last-place finishes before a straggler is evicted
    evict_patience: int = 4
    #: never evict below this many workers
    min_pool: int = 2
    #: eviction budget before the controller escalates to switching
    max_evictions: int = 1
    #: barriers to sit out after an eviction (let the pool resettle)
    cooldown_steps: int = 2

    def __post_init__(self):
        if self.warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {self.warmup_steps}")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.skew_threshold <= 0:
            raise ValueError(
                f"skew_threshold must be > 0, got {self.skew_threshold}"
            )
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.evict_patience < 1:
            raise ValueError(
                f"evict_patience must be >= 1, got {self.evict_patience}"
            )
        if self.min_pool < 1:
            raise ValueError(f"min_pool must be >= 1, got {self.min_pool}")
        if self.max_evictions < 0:
            raise ValueError(
                f"max_evictions must be >= 0, got {self.max_evictions}"
            )
        if self.cooldown_steps < 0:
            raise ValueError(
                f"cooldown_steps must be >= 0, got {self.cooldown_steps}"
            )


@dataclass(frozen=True)
class AdaptiveDecision:
    """One controller verdict at a barrier."""

    #: "none", "evict" or "switch"
    action: str
    #: the straggler to evict (action == "evict" only)
    victim: Optional[int] = None
    reason: str = ""


_NONE = AdaptiveDecision("none")


class AdaptiveController:
    """Arrival-skew monitor deciding evictions and the sync switch."""

    def __init__(self, config: AdaptiveConfig, n_workers: int):
        self.config = config
        self.n_workers = n_workers
        #: step -> {worker: report arrival time}
        self._arrivals: Dict[int, Dict[int, float]] = {}
        self._skew = EWMAFilter(config.ewma_alpha)
        self._last_barrier: Optional[float] = None
        self._slow_streak = 0
        self._last_place: Optional[int] = None
        self._last_place_streak = 0
        self._evictions = 0
        self._cooldown = 0
        self._barriers_seen = 0
        #: every non-"none" decision, in order (inspection/tests)
        self.decisions: List[AdaptiveDecision] = []

    # -- observation -------------------------------------------------------

    def note_report(self, step: int, worker: int, now: float) -> None:
        """A ``step_done`` report arrived at ``now``."""
        self._arrivals.setdefault(step, {}).setdefault(worker, now)

    def observe_barrier(self, step: int, now: float, active) -> AdaptiveDecision:
        """All reports for ``step`` are in: update streaks, maybe act."""
        arrivals = self._arrivals.pop(step, {})
        # Drop stale partial entries for abandoned steps.
        for stale in [s for s in self._arrivals if s <= step]:
            del self._arrivals[stale]
        last_barrier, self._last_barrier = self._last_barrier, now
        self._barriers_seen += 1
        if self._cooldown > 0:
            self._cooldown -= 1

        if len(arrivals) < 2 or last_barrier is None:
            return _NONE
        duration = now - last_barrier
        if duration <= 0:
            return _NONE
        times = sorted(arrivals.values())
        ratio = self._skew.update((times[-1] - times[0]) / duration)

        slow = ratio > self.config.skew_threshold
        self._slow_streak = self._slow_streak + 1 if slow else 0
        last_place = max(arrivals, key=lambda w: (arrivals[w], w))
        if slow and last_place == self._last_place:
            self._last_place_streak += 1
        else:
            self._last_place_streak = 1 if slow else 0
        self._last_place = last_place

        if (
            self._barriers_seen <= self.config.warmup_steps
            or self._cooldown > 0
        ):
            return _NONE

        decision = self._decide(last_place, len(active))
        if decision.action != "none":
            self.decisions.append(decision)
        if decision.action == "evict":
            self._evictions += 1
            self._cooldown = self.config.cooldown_steps
            self._last_place_streak = 0
            self._slow_streak = 0
            self._skew.reset()
        return decision

    def _decide(self, last_place: int, pool: int) -> AdaptiveDecision:
        cfg = self.config
        if (
            self._last_place_streak >= cfg.evict_patience
            and self._evictions < cfg.max_evictions
            and pool > cfg.min_pool
        ):
            return AdaptiveDecision(
                "evict",
                victim=last_place,
                reason=f"straggler for {self._last_place_streak} barriers",
            )
        if self._slow_streak >= cfg.patience:
            return AdaptiveDecision(
                "switch",
                reason=f"skew ratio {self._skew.value:.2f} "
                f"over {self._slow_streak} barriers",
            )
        return _NONE

    # -- persistence -------------------------------------------------------

    def clone(self) -> "AdaptiveController":
        """Independent copy for the supervisor checkpoint snapshot."""
        dup = AdaptiveController(self.config, self.n_workers)
        dup._arrivals = {s: dict(a) for s, a in self._arrivals.items()}
        dup._skew = EWMAFilter(self.config.ewma_alpha)
        dup._skew._state = self._skew._state
        dup._last_barrier = self._last_barrier
        dup._slow_streak = self._slow_streak
        dup._last_place = self._last_place
        dup._last_place_streak = self._last_place_streak
        dup._evictions = self._evictions
        dup._cooldown = self._cooldown
        dup._barriers_seen = self._barriers_seen
        dup.decisions = list(self.decisions)
        return dup
