"""The ISP significance filter (§4.1).

Each worker accumulates its local updates per parameter while they are
non-significant.  After applying the step-``t`` update, the accumulated
update ``delta_{i,t}`` for parameter ``i`` is *significant* when::

    | delta_{i,t} / x_{i,t} | > v_t,    v_t = v / sqrt(t)

Significant entries are extracted (the full accumulated history encoded as
one sparse update), broadcast to peers, and their accumulators reset; the
rest stay local.  With ``v = 0`` every touched entry is significant, so
ISP degrades to BSP exactly (the Corollary in Appendix A) — property
tests rely on this.
"""

from __future__ import annotations

import copy
import math
from typing import Dict

import numpy as np

from ..ml.parameters import ModelUpdate, ParameterSet
from ..ml.sparse import SparseDelta

__all__ = ["threshold_at", "SignificanceFilter"]

#: guards the relative-magnitude test against division by a zero parameter
_X_EPS = 1e-8


def threshold_at(v: float, t: int) -> float:
    """The decaying significance threshold ``v_t = v / sqrt(t)``."""
    if v < 0:
        raise ValueError(f"v must be >= 0, got {v}")
    if t < 1:
        raise ValueError(f"step t must be >= 1, got {t}")
    return v / math.sqrt(t)


class SignificanceFilter:
    """Per-parameter accumulation + relative-significance extraction."""

    def __init__(self, v: float, shapes: Dict[str, tuple]):
        if v < 0:
            raise ValueError(f"v must be >= 0, got {v}")
        self.v = v
        self._acc: Dict[str, np.ndarray] = {
            name: np.zeros(shape) for name, shape in shapes.items()
        }

    @property
    def accumulated(self) -> Dict[str, np.ndarray]:
        """Read-only view of the residual accumulators (for tests)."""
        return {n: a.copy() for n, a in self._acc.items()}

    def clone(self) -> "SignificanceFilter":
        """An independent copy with fresh accumulator buffers.

        All mutable state lives in ``_acc`` (subclasses only add scalar
        configuration); used by checkpoint snapshotting instead of
        ``copy.deepcopy``.
        """
        dup = copy.copy(self)
        dup._acc = {name: acc.copy() for name, acc in self._acc.items()}
        return dup

    def residual_update(self) -> ModelUpdate:
        """The entire accumulated residual as one sparse update.

        Used at eviction time: the leaving worker's unsent history is what
        model averaging reintegrates into the survivors.
        """
        return ModelUpdate(
            {n: SparseDelta.from_dense(a) for n, a in self._acc.items()}
        )

    def add(self, update: ModelUpdate) -> None:
        """Fold a local update ``u_t`` into the accumulators."""
        for name, delta in update:
            if name not in self._acc:
                raise KeyError(f"update names unknown tensor {name!r}")
            delta.apply_to(self._acc[name])

    def extract_significant(
        self, params: ParameterSet, t: int
    ) -> ModelUpdate:
        """Pull out (and reset) every significant accumulated entry.

        ``params`` is the worker's *noisy* local model after applying its
        own update — the denominator of the relative-magnitude test.
        Returns the sparse update to broadcast (possibly empty).
        """
        v_t = threshold_at(self.v, t)
        deltas: Dict[str, SparseDelta] = {}
        for name, acc in self._acc.items():
            flat_acc = np.ravel(acc)
            candidate = np.flatnonzero(flat_acc)
            if len(candidate) == 0:
                deltas[name] = SparseDelta.empty(acc.shape)
                continue
            if v_t <= 0:
                significant = candidate
            else:
                x = np.abs(np.ravel(params[name])[candidate]) + _X_EPS
                significant = candidate[
                    np.abs(flat_acc[candidate]) / x > v_t
                ]
            deltas[name] = SparseDelta(
                significant, flat_acc[significant].copy(), acc.shape
            )
            flat_acc[significant] = 0.0
        return ModelUpdate(deltas)

    def step(self, params: ParameterSet, update: ModelUpdate, t: int) -> ModelUpdate:
        """Convenience: ``add`` then ``extract_significant``."""
        self.add(update)
        return self.extract_significant(params, t)
