"""Job configuration for MLLess training runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..calibration import Calibration, DEFAULT_CALIBRATION
from ..faults import FaultProfile
from ..ml.data.dataset import Dataset
from ..ml.models.base import Model
from ..ml.optim.base import Optimizer
from .adaptive import AdaptiveConfig

__all__ = ["AutoTunerConfig", "JobConfig"]

#: default per-step barrier timeout when fault tolerance is on, seconds
DEFAULT_BARRIER_TIMEOUT_S = 15.0


@dataclass(frozen=True)
class AutoTunerConfig:
    """Scale-in scheduler parameters (§4.2).

    The paper's evaluation uses a 20 s scheduling epoch with the horizon
    ``delta`` fixed at half the epoch (10 s), and never scales below a
    floor of workers.
    """

    enabled: bool = False
    #: scheduling interval T, seconds
    epoch_s: float = 20.0
    #: decision horizon Delta (<= epoch), seconds
    delta_s: float = 10.0
    #: scale-in condition: remove a worker while s_Delta(t) < S
    s_threshold: float = 0.05
    #: never scale below this many workers
    min_workers: int = 2
    #: knee detection method: "slope" (the paper's threshold heuristic)
    #: or "kneedle" (Satopaa et al. [34], pluggable per §4.2)
    knee_method: str = "slope"
    #: knee detector: slope threshold relative to peak slope
    knee_slope_threshold: float = 0.2
    #: knee detector: consecutive flat steps required
    knee_patience: int = 5
    #: EWMA smoothing factor applied to losses before fitting
    ewma_alpha: float = 0.3
    #: ablation switch: scale in immediately, ignoring the knee gate
    ignore_knee_gate: bool = False
    #: curve family for the slow region: "quadratic" (Eq. 3, default) or
    #: "power" (reuse Eq. 2) — exercised by the curve-family ablation
    slow_curve_family: str = "quadratic"

    def __post_init__(self):
        if self.epoch_s <= 0:
            raise ValueError(f"epoch_s must be > 0, got {self.epoch_s}")
        if not 0 < self.delta_s <= self.epoch_s:
            raise ValueError(
                f"delta_s must be in (0, epoch_s], got {self.delta_s}"
            )
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.slow_curve_family not in ("quadratic", "power"):
            raise ValueError(
                f"unknown slow_curve_family {self.slow_curve_family!r}"
            )
        if self.knee_method not in ("slope", "kneedle"):
            raise ValueError(f"unknown knee_method {self.knee_method!r}")


@dataclass
class JobConfig:
    """Everything needed to run one MLLess training job."""

    model: Model
    #: factory, not an instance: each worker owns independent state
    make_optimizer: Callable[[], Optimizer]
    dataset: Dataset
    n_workers: int
    #: significance threshold v; 0 selects plain BSP
    significance_v: float = 0.0
    #: synchronization protocol: "bsp" (per-step barrier, the paper's
    #: default), "ssp" (Stale Synchronous Parallel [13], the relaxation
    #: §3.1 notes is "easy enough to integrate") or "adaptive" (SMLT-style:
    #: start under the barrier, switch to gossip mid-job when the
    #: supervisor's AdaptiveController sees sustained arrival skew); the
    #: significance filter composes with any of them
    sync: str = "bsp"
    #: SSP bound: a worker may run at most this many steps ahead of the
    #: slowest peer
    ssp_staleness: int = 2
    #: stop when the (mean per-batch) training loss reaches this value
    target_loss: Optional[float] = None
    max_steps: int = 5000
    #: give up after this much simulated time, seconds
    max_time_s: float = 3600.0
    seed: int = 0
    autotuner: AutoTunerConfig = field(default_factory=AutoTunerConfig)
    calibration: Calibration = DEFAULT_CALIBRATION
    worker_memory_mb: int = 2048
    #: reintegrate an evicted worker's replica by model averaging (the
    #: paper's eviction policy for v > 0); ablation switch
    reintegrate_on_evict: bool = True
    #: simulated-time margin before the FaaS duration cap at which a
    #: worker checkpoints its state and is relaunched as a fresh function
    relaunch_margin_s: float = 30.0
    #: optional factory for an alternative update filter (ablations):
    #: called with the parameter shapes dict; None selects the paper's
    #: SignificanceFilter(significance_v)
    make_filter: Optional[Callable] = None
    #: fault profile injected into the platform and storage services;
    #: None (or a no-op profile) keeps the simulation byte-identical to a
    #: run without any fault machinery
    faults: Optional[FaultProfile] = None
    #: force the fault-tolerance machinery on/off; None = on iff ``faults``
    #: can actually inject something
    fault_tolerance: Optional[bool] = None
    #: checkpoint worker/supervisor state every N barriers (FT mode);
    #: None = every barrier when FT is on
    checkpoint_every_steps: Optional[int] = None
    #: supervisor barrier timeout before it suspects lost workers or
    #: messages; None = DEFAULT_BARRIER_TIMEOUT_S when FT is on
    barrier_timeout_s: Optional[float] = None
    #: driver-level relaunch budget per role (capped exponential backoff)
    max_invoke_retries: int = 4
    retry_backoff_base_s: float = 0.25
    retry_backoff_cap_s: float = 4.0
    #: barrier timeouts tolerated per step before the supervisor abandons
    #: the missing workers and shrinks the pool
    max_resyncs_per_step: int = 8
    #: how long a worker polls for a departed peer's replica before giving
    #: up (FT mode only — the peer may have crashed before storing it)
    reintegrate_deadline_s: float = 60.0
    #: model-parallel pipeline depth; 1 = ordinary data parallelism, > 1
    #: partitions the model's layers across ``pipeline_stages`` stage
    #: functions (n_workers must equal pipeline_stages) that forward
    #: micro-batch activations/gradients through the KV store (FuncPipe)
    pipeline_stages: int = 1
    #: micro-batches per step in pipeline mode (>= 2 overlaps stages)
    micro_batches: int = 1
    #: controller knobs for sync == "adaptive"; None = AdaptiveConfig()
    adaptive: Optional[AdaptiveConfig] = None

    def __post_init__(self):
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.significance_v < 0:
            raise ValueError(
                f"significance_v must be >= 0, got {self.significance_v}"
            )
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.n_workers > len(self.dataset):
            raise ValueError(
                f"{self.n_workers} workers but only {len(self.dataset)} "
                f"mini-batches; every worker needs at least one"
            )
        if self.sync not in ("bsp", "ssp", "adaptive"):
            raise ValueError(f"unknown sync protocol {self.sync!r}")
        if self.ssp_staleness < 0:
            raise ValueError(
                f"ssp_staleness must be >= 0, got {self.ssp_staleness}"
            )
        if self.sync == "ssp" and self.autotuner.enabled:
            raise ValueError(
                "the scale-in auto-tuner currently requires the BSP "
                "barrier; disable it for SSP runs"
            )
        if self.max_invoke_retries < 0:
            raise ValueError(
                f"max_invoke_retries must be >= 0, got {self.max_invoke_retries}"
            )
        if self.max_resyncs_per_step < 1:
            raise ValueError(
                f"max_resyncs_per_step must be >= 1, got {self.max_resyncs_per_step}"
            )
        if self.sync == "ssp" and self.ft_enabled:
            raise ValueError(
                "fault tolerance currently requires the BSP barrier; "
                "disable it (or the fault profile) for SSP runs"
            )
        if self.sync == "adaptive":
            if self.autotuner.enabled:
                raise ValueError(
                    "sync='adaptive' owns scale-in itself; disable the "
                    "scale-in auto-tuner for adaptive runs"
                )
            if self.ft_enabled:
                raise ValueError(
                    "fault tolerance and sync='adaptive' are mutually "
                    "exclusive (the resync protocol assumes a fixed "
                    "sync family); disable one of them"
                )
        if self.reintegrate_deadline_s <= 0:
            raise ValueError(
                "reintegrate_deadline_s must be > 0, got "
                f"{self.reintegrate_deadline_s}"
            )
        if self.pipeline_stages < 1:
            raise ValueError(
                f"pipeline_stages must be >= 1, got {self.pipeline_stages}"
            )
        if self.micro_batches < 1:
            raise ValueError(
                f"micro_batches must be >= 1, got {self.micro_batches}"
            )
        if self.pipeline_stages > 1:
            if self.sync != "bsp":
                raise ValueError(
                    "pipeline parallelism uses the barrier supervisor; "
                    f"sync must be 'bsp', got {self.sync!r}"
                )
            if self.significance_v != 0:
                raise ValueError(
                    "the significance filter is data-parallel-only; "
                    "set significance_v=0 for pipeline runs"
                )
            if self.autotuner.enabled:
                raise ValueError(
                    "a pipeline cannot scale in (every stage holds "
                    "unique layers); disable the auto-tuner"
                )
            if self.ft_enabled:
                raise ValueError(
                    "fault tolerance is not yet wired for pipeline "
                    "stages; disable it (or the fault profile)"
                )
            if self.n_workers != self.pipeline_stages:
                raise ValueError(
                    "pipeline mode maps one stage per worker function: "
                    f"n_workers ({self.n_workers}) must equal "
                    f"pipeline_stages ({self.pipeline_stages})"
                )
            if not hasattr(self.model, "stage_layers"):
                raise ValueError(
                    f"model {type(self.model).__name__} is not stageable "
                    "(needs stage_layers/stage_forward/stage_backward)"
                )
            # Fail fast on an unpartitionable depth (e.g. more stages
            # than layers) instead of mid-job.
            self.model.stage_layers(self.pipeline_stages)

    @property
    def sync_model(self) -> str:
        """"bsp" (v == 0) or "isp"."""
        return "bsp" if self.significance_v == 0 else "isp"

    # -- fault tolerance ---------------------------------------------------
    @property
    def ft_enabled(self) -> bool:
        """Whether the recovery machinery (timeouts, checkpoints) is on."""
        if self.fault_tolerance is not None:
            return self.fault_tolerance
        return self.faults is not None and not self.faults.is_noop()

    @property
    def barrier_timeout(self) -> Optional[float]:
        """Supervisor consume timeout, or None when FT is off."""
        if not self.ft_enabled:
            return None
        if self.barrier_timeout_s is not None:
            return self.barrier_timeout_s
        return DEFAULT_BARRIER_TIMEOUT_S

    @property
    def checkpoint_every(self) -> Optional[int]:
        """Barrier-checkpoint period, or None when FT is off."""
        if not self.ft_enabled:
            return None
        return self.checkpoint_every_steps or 1
