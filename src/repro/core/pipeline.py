"""Pipeline-parallel stage machine (FuncPipe-style, PAPERS.md).

When a model's parameter tensors do not fit one function, FuncPipe
partitions the layers into contiguous *stages*, runs one stage per
function, and pipelines micro-batches between neighbors through shared
storage.  This module is that execution scheme on the repo's
backend-neutral machinery: a stage is **just another machine yielding
service tokens**, so :mod:`repro.exec.sim` and :mod:`repro.exec.local`
need no contract changes, and the barrier supervisor coordinates steps
exactly as it does for data-parallel workers.

Topology per step ``t`` (GPipe-style flush, ``M = micro_batches``):

* stage 0 fetches the step's mini-batch from the object store, splits it
  into ``M`` micro-batches and *injects them all*: per micro-batch it
  stores the labels and its forward activations in the KV store and
  publishes ``act_ready`` to stage 1 — so while stage 1 computes
  micro-batch 0, stage 0 is already computing micro-batch 1 (>= 2
  in-flight);
* a middle stage answers ``act_ready`` by pulling + deleting the
  activation, running its forward slice, and forwarding downstream; it
  answers ``grad_ready`` by pulling + deleting the output gradient,
  running backward, and forwarding the input gradient upstream;
* the last stage closes the loop: forward, loss + output gradient
  (labels pulled from stage 0's KV drop), backward, gradient upstream —
  the micro-batch loss rides the ``grad_ready`` messages so every stage
  reports the same per-step mean loss;
* once all ``M`` micro-gradients are home, each stage averages them,
  runs its own optimizer slice, and enters the ordinary ``step_done`` /
  ``step_complete`` barrier (``has_update=False``: stages exchange
  activations and gradients, never parameter updates).

Every stage initializes the *full* model from the job seed and keeps
only its slice (:func:`repro.core.worker._fresh_checkpoint` does the
seeded init), so the partition is consistent across functions with no
startup communication.  Relaunch near the duration cap reuses the
ordinary :class:`~repro.core.runtime.WorkerCheckpoint` path — stages
only relaunch between steps, when no activations are in flight.

The ``stage_busy`` (+1/-1 around each compute charge) and
``pipeline_inflight`` (+1 at injection, -1 when the gradient returns)
monitor series let tests and notebooks reconstruct the overlap the
pipeline actually achieved.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..exec.protocols import ExecutionContext, Machine
from ..ml.parameters import ModelUpdate, ParameterSet
from ..trace.tracer import NO_SPAN
from . import messages
from .runtime import JobRuntime, WorkerCheckpoint
from .significance import SignificanceFilter
from .worker import _fresh_checkpoint

__all__ = ["pipeline_stage_loop"]


def _fresh_stage_checkpoint(
    runtime: JobRuntime, stage: int, layers: List[int]
) -> WorkerCheckpoint:
    """Seeded full-model init, then keep only this stage's tensors."""
    config = runtime.config
    full = _fresh_checkpoint(runtime, stage)
    names = config.model.stage_param_names(layers)
    params = ParameterSet({name: full.params[name] for name in names})
    return WorkerCheckpoint(
        worker_id=stage,
        step=0,
        params=params,
        optimizer=config.make_optimizer(),
        sig_filter=SignificanceFilter(0.0, params.shapes()),
        active_workers=config.n_workers,
    )


def _charge(ectx: ExecutionContext, runtime: JobRuntime, flops: float) -> Machine:
    """Charge stage compute, bracketing it in the ``stage_busy`` series."""
    runtime.monitor.record("stage_busy", ectx.clock.now(), 1.0)
    yield ectx.services.compute(
        runtime.config.calibration.mlless_step_seconds(flops)
    )
    runtime.monitor.record("stage_busy", ectx.clock.now(), -1.0)


def pipeline_stage_loop(ectx: ExecutionContext, payload: Dict[str, Any]) -> Machine:
    """One pipeline stage: forward/backward relay + per-step barrier."""
    runtime: JobRuntime = payload["runtime"]
    stage: int = payload["worker_id"]
    config = runtime.config
    model = config.model
    sv = ectx.services
    clock = ectx.clock
    started = clock.now()
    tracer = ectx.tracer
    ectx.annotate(worker=stage, role="stage")

    n_stages = config.pipeline_stages
    n_micro = config.micro_batches
    layers = model.stage_layers(n_stages)[stage]
    is_first = stage == 0
    is_last = stage == n_stages - 1
    my_queue = runtime.worker_queue(stage)

    if payload.get("resume"):
        state = yield sv.kv_get(runtime.checkpoint_key(stage))
    else:
        state = _fresh_stage_checkpoint(runtime, stage, layers)

    while True:
        t = state.step + 1
        sp_step = NO_SPAN
        if tracer.enabled:
            sp_step = tracer.begin(
                "step", f"step-{t}", worker=stage, step=t, role="stage"
            )
        try:
            losses: Dict[int, float] = {}
            grads: Dict[int, ModelUpdate] = {}
            caches: Dict[int, list] = {}
            done_bwd = 0

            if is_first:
                # Inject the whole step: all M micro-batches go downstream
                # back-to-back, which is what fills the pipeline.
                batch = yield sv.cos_get(
                    runtime.bucket,
                    runtime.batch_keys[(t - 1) % len(runtime.batch_keys)],
                )
                for m, mb in enumerate(batch.micro_split(n_micro)):
                    yield sv.kv_set(runtime.label_key(t, m), mb.y)
                    yield from _charge(
                        ectx, runtime, model.stage_fwd_flops(mb.n, layers)
                    )
                    out, caches[m] = model.stage_forward(state.params, mb.x, layers)
                    yield sv.kv_set(runtime.activation_key(t, m, stage + 1), out)
                    yield sv.mq_publish(
                        runtime.worker_queue(stage + 1),
                        messages.act_ready(stage + 1, t, m),
                    )
                    runtime.monitor.record("pipeline_inflight", clock.now(), 1.0)

            while done_bwd < n_micro:
                message = yield sv.mq_consume(my_queue)
                mtype = messages.validate(message)
                if mtype not in (messages.ACT_READY, messages.GRAD_READY):
                    raise RuntimeError(f"stage {stage}: unexpected {message!r}")
                m = message["micro"]
                if message["step"] != t:
                    raise RuntimeError(
                        f"stage {stage}: {mtype} for step {message['step']} "
                        f"while at step {t}"
                    )

                if mtype == messages.ACT_READY:
                    # A micro-batch arrived from upstream: forward it.
                    act = yield sv.kv_get(runtime.activation_key(t, m, stage))
                    yield sv.kv_delete(runtime.activation_key(t, m, stage))
                    yield from _charge(
                        ectx, runtime,
                        model.stage_fwd_flops(act.shape[0], layers),
                    )
                    out, cache = model.stage_forward(state.params, act, layers)
                    if is_last:
                        # Close the loop: loss + backward, gradient upstream.
                        y = yield sv.kv_get(runtime.label_key(t, m))
                        yield sv.kv_delete(runtime.label_key(t, m))
                        loss_m, grad_out = model.output_grad(out, y)
                        losses[m] = loss_m
                        yield from _charge(
                            ectx, runtime,
                            model.stage_bwd_flops(act.shape[0], layers),
                        )
                        grad_in, grads[m] = model.stage_backward(
                            state.params, cache, grad_out, layers
                        )
                        yield sv.kv_set(runtime.grad_key(t, m, stage - 1), grad_in)
                        yield sv.mq_publish(
                            runtime.worker_queue(stage - 1),
                            messages.grad_ready(stage - 1, t, m, loss_m),
                        )
                        done_bwd += 1
                    else:
                        caches[m] = cache
                        yield sv.kv_set(
                            runtime.activation_key(t, m, stage + 1), out
                        )
                        yield sv.mq_publish(
                            runtime.worker_queue(stage + 1),
                            messages.act_ready(stage + 1, t, m),
                        )
                else:  # GRAD_READY
                    losses[m] = message["loss"]
                    grad_out = yield sv.kv_get(runtime.grad_key(t, m, stage))
                    yield sv.kv_delete(runtime.grad_key(t, m, stage))
                    cache = caches.pop(m)
                    yield from _charge(
                        ectx, runtime,
                        model.stage_bwd_flops(grad_out.shape[0], layers),
                    )
                    grad_in, grads[m] = model.stage_backward(
                        state.params, cache, grad_out, layers
                    )
                    if is_first:
                        # The micro-batch's round trip is complete.
                        runtime.monitor.record(
                            "pipeline_inflight", clock.now(), -1.0
                        )
                    else:
                        yield sv.kv_set(runtime.grad_key(t, m, stage - 1), grad_in)
                        yield sv.mq_publish(
                            runtime.worker_queue(stage - 1),
                            messages.grad_ready(stage - 1, t, m, message["loss"]),
                        )
                    done_bwd += 1

            # All M micro-gradients are home: average (m-ordered — the
            # arrival interleaving must not change the float sums), step
            # this stage's optimizer slice, apply locally.
            mean_grad = ModelUpdate.merge_many(
                grads[m] for m in range(n_micro)
            ).scale(1.0 / n_micro)
            update = state.optimizer.step(state.params, mean_grad, t)
            state.params.apply(update)
            loss = float(np.mean([losses[m] for m in range(n_micro)]))

            # The ordinary barrier.  has_update=False: stages never
            # exchange parameter updates, so the release carries no
            # senders and the supervisor GCs nothing.
            yield sv.mq_publish(
                runtime.supervisor_queue,
                messages.step_done(stage, t, loss, False, 0),
            )
            release = yield sv.mq_consume(my_queue)
            if messages.validate(release) != messages.STEP_COMPLETE:
                raise RuntimeError(f"stage {stage}: unexpected {release!r}")
            if release["step"] != t:
                raise RuntimeError(
                    f"stage {stage}: barrier for step {release['step']} "
                    f"while at step {t}"
                )
            state.step = t
            state.active_workers = release["active"]
            if release["stop"]:
                return {"worker": stage, "steps": t, "outcome": "converged"}

            if clock.remaining_time(started) < config.relaunch_margin_s:
                # Between steps nothing is in flight: the plain worker
                # checkpoint (params slice + optimizer) is complete.
                yield sv.kv_set(runtime.checkpoint_key(stage), state)
                return {"worker": stage, "steps": t, "outcome": "relaunch"}
        finally:
            if sp_step >= 0:
                tracer.end(sp_step)
