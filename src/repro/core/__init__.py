"""MLLess core: driver, supervisor, workers, ISP filter, scale-in tuner."""

from .adaptive import AdaptiveConfig, AdaptiveController, AdaptiveDecision
from .autotuner import ScaleInScheduler, SchedulerDecision
from .config import AutoTunerConfig, JobConfig
from .curves import CurveFitError, ReferenceCurve, SlowCurve, prediction_error
from .driver import MLLessDriver
from .ewma import EWMAFilter, ewma
from .history import RunResult, perf_per_dollar
from .knee import KneedleDetector, SlopeKneeDetector
from .pipeline import pipeline_stage_loop
from .policies import SyncPolicy, gossip_policy, resolve_policy
from .runtime import JobRuntime, WorkerCheckpoint
from .significance import SignificanceFilter, threshold_at
from .ssp import ssp_supervisor_loop, ssp_worker_loop
from .step_machine import supervisor_machine, worker_machine
from .supervisor import SupervisorState, supervisor_loop
from .worker import train_step, worker_loop

# The FaaS-handler wrappers (backend-neutral machines driven on the DES)
# keep their historical names importable from repro.core.
from ..exec.sim import (  # noqa: E402  (re-export, import order is deliberate)
    pipeline_stage_handler,
    ssp_supervisor_handler,
    ssp_worker_handler,
    supervisor_handler,
    worker_handler,
)

__all__ = [
    "JobConfig",
    "AutoTunerConfig",
    "MLLessDriver",
    "JobRuntime",
    "WorkerCheckpoint",
    "RunResult",
    "perf_per_dollar",
    "SignificanceFilter",
    "threshold_at",
    "ScaleInScheduler",
    "SchedulerDecision",
    "ReferenceCurve",
    "SlowCurve",
    "CurveFitError",
    "prediction_error",
    "EWMAFilter",
    "ewma",
    "SlopeKneeDetector",
    "KneedleDetector",
    "supervisor_handler",
    "worker_handler",
    "ssp_worker_handler",
    "ssp_supervisor_handler",
    "supervisor_loop",
    "worker_loop",
    "ssp_worker_loop",
    "ssp_supervisor_loop",
    "train_step",
    "SupervisorState",
    "SyncPolicy",
    "resolve_policy",
    "gossip_policy",
    "worker_machine",
    "supervisor_machine",
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptiveDecision",
    "pipeline_stage_loop",
    "pipeline_stage_handler",
]
