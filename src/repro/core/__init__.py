"""MLLess core: driver, supervisor, workers, ISP filter, scale-in tuner."""

from .autotuner import ScaleInScheduler, SchedulerDecision
from .config import AutoTunerConfig, JobConfig
from .curves import CurveFitError, ReferenceCurve, SlowCurve, prediction_error
from .driver import MLLessDriver
from .ewma import EWMAFilter, ewma
from .history import RunResult, perf_per_dollar
from .knee import KneedleDetector, SlopeKneeDetector
from .runtime import JobRuntime, WorkerCheckpoint
from .significance import SignificanceFilter, threshold_at
from .ssp import ssp_supervisor_handler, ssp_worker_handler
from .supervisor import SupervisorState, supervisor_handler
from .worker import worker_handler

__all__ = [
    "JobConfig",
    "AutoTunerConfig",
    "MLLessDriver",
    "JobRuntime",
    "WorkerCheckpoint",
    "RunResult",
    "perf_per_dollar",
    "SignificanceFilter",
    "threshold_at",
    "ScaleInScheduler",
    "SchedulerDecision",
    "ReferenceCurve",
    "SlowCurve",
    "CurveFitError",
    "prediction_error",
    "EWMAFilter",
    "ewma",
    "SlopeKneeDetector",
    "KneedleDetector",
    "supervisor_handler",
    "worker_handler",
    "ssp_worker_handler",
    "ssp_supervisor_handler",
    "SupervisorState",
]
