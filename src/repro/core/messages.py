"""Control-message schema for the MLLess messaging service.

Messages are plain dicts (sized by :func:`repro.storage.payload_size`)
with a ``type`` tag.  This module centralizes their construction and
validation so workers, supervisor and tests agree on the schema.

Flow per step ``t``:

* each worker publishes ``step_done`` to the supervisor queue after
  pushing its (filtered) update to the KV store;
* the supervisor, once all active workers reported, broadcasts
  ``step_complete`` through the worker exchange, carrying the stop flag,
  an optional eviction order, and the list of workers whose updates are
  available to pull;
* an evicted worker saves its replica and publishes ``departed``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = [
    "step_done",
    "step_complete",
    "departed",
    "update_available",
    "control",
    "resync",
    "validate",
    "act_ready",
    "grad_ready",
    "STEP_DONE",
    "STEP_COMPLETE",
    "DEPARTED",
    "UPDATE_AVAILABLE",
    "CONTROL",
    "RESYNC",
    "ACT_READY",
    "GRAD_READY",
]

STEP_DONE = "step_done"
STEP_COMPLETE = "step_complete"
DEPARTED = "departed"
#: SSP: a worker announcing its step-t update directly to its peers
UPDATE_AVAILABLE = "update_available"
#: SSP: a supervisor order broadcast to the workers (e.g. stop)
CONTROL = "control"
#: FT: supervisor asking a silent worker to re-report / re-sync its step
RESYNC = "resync"
#: pipeline: stage s-1 stored a micro-batch activation for stage s
ACT_READY = "act_ready"
#: pipeline: stage s+1 stored a micro-batch input gradient for stage s
GRAD_READY = "grad_ready"

_REQUIRED: Dict[str, List[str]] = {
    STEP_DONE: ["worker", "step", "loss", "has_update", "update_nnz"],
    STEP_COMPLETE: ["step", "stop", "evict", "senders", "active"],
    DEPARTED: ["worker", "step", "replica_key"],
    UPDATE_AVAILABLE: ["worker", "step", "has_update"],
    CONTROL: ["command"],
    RESYNC: ["step", "release"],
    ACT_READY: ["stage", "step", "micro"],
    GRAD_READY: ["stage", "step", "micro", "loss"],
}


def step_done(
    worker: int, step: int, loss: float, has_update: bool, update_nnz: int
) -> Dict[str, Any]:
    """Worker -> supervisor: finished local computation for ``step``."""
    return {
        "type": STEP_DONE,
        "worker": int(worker),
        "step": int(step),
        "loss": float(loss),
        "has_update": bool(has_update),
        "update_nnz": int(update_nnz),
    }


def step_complete(
    step: int,
    stop: bool,
    senders: List[int],
    active: int,
    evict: Optional[int] = None,
) -> Dict[str, Any]:
    """Supervisor -> all workers: barrier release for ``step``.

    ``active`` is the pool size for the *next* step (evictions applied),
    which workers use to scale their update contributions (gradient
    averaging, §3.2).
    """
    return {
        "type": STEP_COMPLETE,
        "step": int(step),
        "stop": bool(stop),
        "evict": None if evict is None else int(evict),
        "senders": [int(w) for w in senders],
        "active": int(active),
    }


def departed(worker: int, step: int, replica_key: str) -> Dict[str, Any]:
    """Evicted worker -> supervisor: replica stored, terminating."""
    return {
        "type": DEPARTED,
        "worker": int(worker),
        "step": int(step),
        "replica_key": replica_key,
    }


def update_available(worker: int, step: int, has_update: bool) -> Dict[str, Any]:
    """SSP worker -> peers: my step-``step`` update is in the KV store."""
    return {
        "type": UPDATE_AVAILABLE,
        "worker": int(worker),
        "step": int(step),
        "has_update": bool(has_update),
    }


def resync(step: int, release: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Supervisor -> one worker: barrier ``step`` timed out waiting for you.

    ``release`` carries the last ``step_complete`` the supervisor sent (or
    None when no barrier was released yet), so a worker that missed its
    release can re-apply it instead of waiting forever; a worker that is
    still computing ignores the message, and one whose report was lost
    re-publishes it.
    """
    return {
        "type": RESYNC,
        "step": int(step),
        "release": release,
    }


def act_ready(stage: int, step: int, micro: int) -> Dict[str, Any]:
    """Pipeline stage ``stage - 1`` -> ``stage``: activation stored.

    ``stage`` is the *receiver*: the activation sits under
    ``runtime.activation_key(step, micro, stage)`` and feeds that stage's
    forward pass for micro-batch ``micro``.
    """
    return {
        "type": ACT_READY,
        "stage": int(stage),
        "step": int(step),
        "micro": int(micro),
    }


def grad_ready(stage: int, step: int, micro: int, loss: float) -> Dict[str, Any]:
    """Pipeline stage ``stage + 1`` -> ``stage``: input gradient stored.

    ``loss`` carries the micro-batch loss computed at the last stage back
    upstream so every stage can report the same per-step mean loss.
    """
    return {
        "type": GRAD_READY,
        "stage": int(stage),
        "step": int(step),
        "micro": int(micro),
        "loss": float(loss),
    }


def control(command: str) -> Dict[str, Any]:
    """SSP supervisor -> workers: broadcast order (currently: "stop")."""
    if command not in ("stop",):
        raise ValueError(f"unknown control command {command!r}")
    return {"type": CONTROL, "command": command}


def validate(message: Dict[str, Any]) -> str:
    """Check schema; returns the message type or raises ``ValueError``."""
    if not isinstance(message, dict) or "type" not in message:
        raise ValueError(f"not a control message: {message!r}")
    mtype = message["type"]
    if mtype not in _REQUIRED:
        raise ValueError(f"unknown message type {mtype!r}")
    missing = [k for k in _REQUIRED[mtype] if k not in message]
    if missing:
        raise ValueError(f"{mtype} message missing fields {missing}")
    return mtype
