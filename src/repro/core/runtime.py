"""Shared runtime context of one MLLess job.

A :class:`JobRuntime` bundles everything workers and the supervisor need:
the job config, the service handles of whichever execution backend is
running the job (simulated COS/KV/MQ under :mod:`repro.exec.sim`, real
in-process stores under :mod:`repro.exec.local`), queue/key naming
conventions, and the run monitor.  It is passed by reference inside
function payloads — both backends execute in one process.

Also defines :class:`WorkerCheckpoint`, the state a worker persists to the
KV store when it approaches the FaaS duration cap and must be relaunched
as a fresh activation (§3.1 sketches exactly this checkpoint/relaunch
scheme for the supervisor).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..exec.protocols import FaultSink, TracerLike
from ..ml.optim.base import Optimizer
from ..ml.parameters import ParameterSet
from ..sim import Monitor
from ..storage import Exchange, KVStore, MessageQueue, ObjectStore
from ..trace.tracer import NULL_TRACER
from .config import JobConfig
from .significance import SignificanceFilter

__all__ = ["JobRuntime", "WorkerCheckpoint"]

#: queue the supervisor consumes control messages from
SUPERVISOR_QUEUE = "supervisor"


@dataclass
class JobRuntime:
    """Everything shared by the components of one training job."""

    config: JobConfig
    cos: ObjectStore
    kv: KVStore
    mq: MessageQueue
    exchange: Exchange
    bucket: str
    batch_keys: List[str]
    #: per-worker lists of batch indices (round-robin data partition)
    partitions: List[List[int]]
    monitor: Monitor = field(default_factory=Monitor)
    #: the run's :class:`~repro.faults.FaultInjector`, if any — used by
    #: the training components to report recovery actions
    faults: Optional[FaultSink] = None
    #: the run's span tracer (a no-op :data:`~repro.trace.NULL_TRACER`
    #: unless the experiment was started with tracing on)
    tracer: TracerLike = NULL_TRACER

    def note_recovery(self, kind: str) -> None:
        """Count a recovery action in the run's fault statistics."""
        if self.faults is not None:
            self.faults.stats.note_recovered(kind)

    # -- naming conventions ------------------------------------------------
    @property
    def supervisor_queue(self) -> str:
        return SUPERVISOR_QUEUE

    def worker_queue(self, worker: int) -> str:
        return f"worker-{worker}"

    def update_key(self, step: int, worker: int) -> str:
        return f"upd/{step}/{worker}"

    def replica_key(self, step: int, worker: int) -> str:
        return f"departed/{step}/{worker}"

    def checkpoint_key(self, worker: int) -> str:
        return f"ckpt/worker-{worker}"

    # pipeline-parallel keys: ``stage`` is always the *consuming* stage
    def activation_key(self, step: int, micro: int, stage: int) -> str:
        """Micro-batch activation feeding ``stage``'s forward pass."""
        return f"act/{step}/{micro}/{stage}"

    def grad_key(self, step: int, micro: int, stage: int) -> str:
        """Micro-batch output gradient feeding ``stage``'s backward pass."""
        return f"grad/{step}/{micro}/{stage}"

    def label_key(self, step: int, micro: int) -> str:
        """Micro-batch labels, stage 0 -> the last stage's loss."""
        return f"lbl/{step}/{micro}"

    @property
    def supervisor_checkpoint_key(self) -> str:
        return "ckpt/supervisor"


class WorkerCheckpoint:
    """A worker's full state, persisted across activation relaunches."""

    def __init__(
        self,
        worker_id: int,
        step: int,
        params: ParameterSet,
        optimizer: Optimizer,
        sig_filter: SignificanceFilter,
        pending_replica: Optional[Tuple[int, int]] = None,
        active_workers: int = 1,
        last_report: Optional[Dict[str, Any]] = None,
    ):
        self.worker_id = worker_id
        self.step = step
        self.params = params
        self.optimizer = optimizer
        self.sig_filter = sig_filter
        #: (step, worker) of an eviction whose replica is not yet merged
        self.pending_replica = pending_replica
        #: pool size as of the last barrier (scales update contributions)
        self.active_workers = active_workers
        #: the last step_done message published (FT: re-sent on resync when
        #: the original was lost in the queue); excluded from nbytes — it
        #: is a tiny control dict next to the dense tensors
        self.last_report = last_report

    def snapshot(self) -> "WorkerCheckpoint":
        """An independent copy safe to hand to the KV store.

        Equivalent to ``copy.deepcopy(self)`` — later mutations of the
        live state (or of the stored copy) must never alias each other —
        but copies only the NumPy buffers and small containers instead of
        walking the whole object graph: parameters via
        :meth:`ParameterSet.copy`, optimizer state via
        :meth:`Optimizer.clone`, filter accumulators via
        :meth:`SignificanceFilter.clone` (components without a
        ``clone`` fall back to ``deepcopy``).
        """
        optimizer = (
            self.optimizer.clone()
            if hasattr(self.optimizer, "clone")
            else copy.deepcopy(self.optimizer)
        )
        sig_filter = (
            self.sig_filter.clone()
            if hasattr(self.sig_filter, "clone")
            else copy.deepcopy(self.sig_filter)
        )
        return WorkerCheckpoint(
            worker_id=self.worker_id,
            step=self.step,
            params=self.params.copy(),
            optimizer=optimizer,
            sig_filter=sig_filter,
            pending_replica=self.pending_replica,
            active_workers=self.active_workers,
            last_report=dict(self.last_report)
            if self.last_report is not None
            else None,
        )

    @property
    def nbytes(self) -> int:
        """Wire size: parameters + optimizer state + filter accumulators.

        The optimizer buffers and the significance accumulators are dense
        tensors of the same shapes as the parameters; a conservative
        estimate charges one parameter-sized tensor for each state slot.
        """
        state_slots = len(getattr(self.optimizer, "_state", {}))
        return self.params.nbytes * (2 + state_slots)
