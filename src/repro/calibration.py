"""Calibration constants for the simulated substrate.

Every simulated-time charge in the system traces back to a named constant
here.  Values are set to the orders of magnitude the paper and its
citations report; where the paper gives no absolute number, the constant
is calibrated so the *relative* step times of the three systems match the
published ratios (see DESIGN.md "Calibration constants").

None of the ML arithmetic depends on these — they only scale the clock.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """All simulated-time rates and overheads, in one place."""

    # ---- compute kernels -------------------------------------------------
    #: MLLess worker kernel (Cython sparse ops) on one full vCPU, flop/s.
    mlless_flops_per_s: float = 1.5e8
    #: fixed per-step overhead inside an MLLess worker (Python dispatch,
    #: (de)serialization of its own sparse update), seconds.
    mlless_step_overhead_s: float = 0.008

    #: serverful (PyTorch-like) dense kernel per core, flop/s; MKL is fast
    #: on dense math but the evaluation's workloads are gather/scatter
    #: bound, hence the modest effective rate (§6.2: "PyTorch's speed is
    #: affected by the high sparsity of the datasets").
    serverful_flops_per_s_per_core: float = 1.0e8
    #: multi-core parallel efficiency of the dense kernel.
    serverful_parallel_eff: float = 0.85
    #: per-step sparse-data handling overhead of the dense framework
    #: (COO/CSR -> dense tensor conversion, Python dataloader, autograd
    #: graph), seconds per million sparse batch entries.  NOTE: this
    #: constant absorbs the workload scale-down — the synthetic datasets
    #: are ~15x smaller than the paper's, but the published step-time
    #: *ratios* between systems are the reproduction target, so the
    #: per-entry cost is correspondingly larger than a raw per-entry
    #: measurement of PyTorch would give (see DESIGN.md, EXPERIMENTS.md).
    serverful_overhead_s_per_mnnz: float = 400.0
    #: dense optimizer pass over the FULL parameter tensors every step
    #: (momentum/Adam over whole embedding tables), flops per parameter.
    serverful_dense_opt_flops_per_param: float = 6.0

    #: PyWren-style pure-Python map/reduce task kernel, flop/s.
    pywren_flops_per_s: float = 2.0e7
    #: per-task overhead of the generic map-reduce runtime (job
    #: submission, activation wave coordination, pickling), seconds.
    pywren_task_overhead_s: float = 2.5

    # ---- evaluation (loss on a held-out sample) ---------------------------
    #: flops charged per evaluated sample (forward pass only), as a
    #: multiple of the model's per-sample training flops.
    eval_flops_fraction: float = 0.3

    def mlless_step_seconds(self, flops: float) -> float:
        """CPU-seconds (at 1 vCPU) of one MLLess gradient step."""
        return self.mlless_step_overhead_s + flops / self.mlless_flops_per_s

    def serverful_step_seconds(
        self, dense_flops: float, batch_nnz: float, n_params: int, cores: int
    ) -> float:
        """Wall-seconds of one serverful gradient step on ``cores`` cores."""
        rate = self.serverful_flops_per_s_per_core * (
            cores if cores == 1 else cores * self.serverful_parallel_eff
        )
        compute = dense_flops / rate
        overhead = self.serverful_overhead_s_per_mnnz * (batch_nnz / 1e6)
        optimizer = self.serverful_dense_opt_flops_per_param * n_params / rate
        return compute + overhead + optimizer

    def pywren_task_seconds(self, flops: float) -> float:
        """CPU-seconds of one PyWren map/reduce task."""
        return self.pywren_task_overhead_s + flops / self.pywren_flops_per_s


#: The calibration used by all experiments unless overridden.
DEFAULT_CALIBRATION = Calibration()
