"""Deterministic fault injection for the serverless training simulator.

See DESIGN.md § "Fault model & recovery" for the full catalogue of fault
types, their seed streams, and the recovery paths they exercise.
"""

from .injector import FaultInjector, FaultStats
from .profile import FAULT_PROFILES, FaultProfile

__all__ = ["FaultInjector", "FaultStats", "FaultProfile", "FAULT_PROFILES"]
