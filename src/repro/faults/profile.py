"""Fault profiles: declarative descriptions of *what* can go wrong.

A :class:`FaultProfile` is a frozen bag of rates and magnitude ranges for
every fault model the injector knows how to apply:

* **activation crash** — an invocation fails at a sampled point after it
  starts executing (models container OOM/kill, host failure).
* **cold-start spike** — a cold dispatch occasionally takes a sampled
  multiple of the modelled latency (models image-pull storms).
* **straggler** — a worker's compute time is scaled by a sampled factor
  for the whole activation (models noisy neighbours / degraded hosts).
* **message loss / duplication** — the message queue drops or re-delivers
  a published message (models at-most-once / at-least-once brokers).
* **KV / object-store transient errors** — a storage operation fails and
  must be retried (models rate-limiting and transient 5xx responses).

Profiles are pure data: they draw nothing themselves.  All randomness
lives in :class:`~repro.faults.injector.FaultInjector`, which samples
exclusively from named :class:`~repro.sim.rand.RandomStreams` streams so
that a given seed yields a byte-identical fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["FaultProfile", "FAULT_PROFILES"]


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def _check_range(name: str, rng: Tuple[float, float], minimum: float) -> None:
    lo, hi = rng
    if lo > hi:
        raise ValueError(f"{name} range must satisfy lo <= hi, got {rng!r}")
    if lo < minimum:
        raise ValueError(f"{name} range must be >= {minimum}, got {rng!r}")


@dataclass(frozen=True)
class FaultProfile:
    """Rates and magnitudes for every supported fault model.

    All rates are per-opportunity probabilities (per activation, per
    message, per storage operation).  Magnitude ranges are uniform
    ``(lo, hi)`` bounds.  ``*_targets`` restricts activation-level faults
    to functions whose name contains one of the given substrings, so a
    profile can crash workers without ever touching the supervisor.
    """

    name: str = "custom"

    # -- activation crashes ------------------------------------------------
    crash_rate: float = 0.0
    #: seconds after the handler starts within which the crash fires
    crash_window_s: Tuple[float, float] = (0.5, 30.0)
    crash_targets: Tuple[str, ...] = ("worker",)

    # -- cold-start spikes -------------------------------------------------
    coldstart_spike_rate: float = 0.0
    coldstart_spike_factor: Tuple[float, float] = (2.0, 8.0)

    # -- stragglers --------------------------------------------------------
    straggler_rate: float = 0.0
    straggler_factor: Tuple[float, float] = (1.5, 4.0)
    straggler_targets: Tuple[str, ...] = ("worker",)

    # -- message queue -----------------------------------------------------
    message_loss_rate: float = 0.0
    message_duplication_rate: float = 0.0

    # -- storage -----------------------------------------------------------
    kv_error_rate: float = 0.0
    cos_error_rate: float = 0.0
    #: transparent retries inside the storage layer before the error
    #: surfaces to the caller as a TransientStorageError
    max_storage_retries: int = 4

    def __post_init__(self) -> None:
        _check_rate("crash_rate", self.crash_rate)
        _check_rate("coldstart_spike_rate", self.coldstart_spike_rate)
        _check_rate("straggler_rate", self.straggler_rate)
        _check_rate("message_loss_rate", self.message_loss_rate)
        _check_rate("message_duplication_rate", self.message_duplication_rate)
        _check_rate("kv_error_rate", self.kv_error_rate)
        _check_rate("cos_error_rate", self.cos_error_rate)
        if self.message_loss_rate + self.message_duplication_rate > 1.0:
            raise ValueError("message loss + duplication rates must sum <= 1")
        _check_range("crash_window_s", self.crash_window_s, 0.0)
        _check_range("coldstart_spike_factor", self.coldstart_spike_factor, 1.0)
        _check_range("straggler_factor", self.straggler_factor, 1.0)
        if self.max_storage_retries < 0:
            raise ValueError("max_storage_retries must be >= 0")

    def is_noop(self) -> bool:
        """True when the profile can never inject a fault."""
        return (
            self.crash_rate == 0.0
            and self.coldstart_spike_rate == 0.0
            and self.straggler_rate == 0.0
            and self.message_loss_rate == 0.0
            and self.message_duplication_rate == 0.0
            and self.kv_error_rate == 0.0
            and self.cos_error_rate == 0.0
        )


#: Named presets selectable from the CLI (``--faults <name>``).
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "crash": FaultProfile(
        name="crash",
        crash_rate=0.25,
        crash_window_s=(0.5, 15.0),
    ),
    "straggler": FaultProfile(
        name="straggler",
        straggler_rate=0.25,
        straggler_factor=(1.5, 3.0),
    ),
    "coldstart": FaultProfile(
        name="coldstart",
        coldstart_spike_rate=0.5,
        coldstart_spike_factor=(2.0, 8.0),
    ),
    "lossy": FaultProfile(
        name="lossy",
        message_loss_rate=0.02,
        message_duplication_rate=0.05,
    ),
    "flaky-storage": FaultProfile(
        name="flaky-storage",
        kv_error_rate=0.02,
        cos_error_rate=0.01,
    ),
    "chaos": FaultProfile(
        name="chaos",
        crash_rate=0.2,
        crash_window_s=(0.5, 10.0),
        straggler_rate=0.15,
        straggler_factor=(1.5, 3.0),
        coldstart_spike_rate=0.25,
        coldstart_spike_factor=(2.0, 6.0),
        message_loss_rate=0.01,
        message_duplication_rate=0.01,
        kv_error_rate=0.01,
        cos_error_rate=0.005,
    ),
}
