"""The fault injector: deterministic sampling + bookkeeping.

The injector is the single point where fault randomness is drawn.  Every
fault model has its **own named stream** (``faults.crash``,
``faults.coldstart``, ``faults.straggler``, ``faults.mq``,
``faults.storage``) obtained from the run's :class:`RandomStreams`, so:

* the same seed yields a byte-identical fault schedule, and
* enabling one fault model never perturbs the draws of another (streams
  are independent by construction).

Zero-rate models never touch their stream at all, which keeps a profile
with e.g. only crashes enabled identical to the same profile plus an
explicitly-zero straggler rate.

The injector also carries :class:`FaultStats`: counters of injected
faults and observed recoveries that the driver surfaces in the run
report.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from ..sim.rand import RandomStreams
from .profile import FaultProfile

__all__ = ["FaultInjector", "FaultStats"]


class FaultStats:
    """Counters of injected faults and recovery actions, by kind."""

    def __init__(self) -> None:
        self.injected: Counter = Counter()
        self.recovered: Counter = Counter()

    def note_injected(self, kind: str, n: int = 1) -> None:
        self.injected[kind] += n

    def note_recovered(self, kind: str, n: int = 1) -> None:
        self.recovered[kind] += n

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_recovered(self) -> int:
        return sum(self.recovered.values())

    def summary(self) -> Dict[str, int]:
        out = {f"fault.{k}": v for k, v in sorted(self.injected.items())}
        out.update(
            {f"recovery.{k}": v for k, v in sorted(self.recovered.items())}
        )
        return out

    def __repr__(self) -> str:
        return (
            f"<FaultStats injected={self.total_injected} "
            f"recovered={self.total_recovered}>"
        )


class FaultInjector:
    """Samples fault decisions for the platform and storage layers."""

    def __init__(self, profile: FaultProfile, streams: RandomStreams):
        self.profile = profile
        self.stats = FaultStats()
        self._crash_rng = streams.stream("faults.crash")
        self._coldstart_rng = streams.stream("faults.coldstart")
        self._straggler_rng = streams.stream("faults.straggler")
        self._mq_rng = streams.stream("faults.mq")
        self._storage_rng = streams.stream("faults.storage")
        self._storage_rates = {
            "redis": profile.kv_error_rate,
            "cos": profile.cos_error_rate,
        }

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def _targeted(function: str, targets) -> bool:
        return any(t in function for t in targets)

    # -- activation-level faults -----------------------------------------
    def crash_delay(self, function: str) -> Optional[float]:
        """Seconds after handler start at which to crash, or None.

        The caller counts the fault when the crash actually fires (the
        handler may finish first, in which case nothing was injected).
        """
        p = self.profile
        if p.crash_rate == 0.0 or not self._targeted(function, p.crash_targets):
            return None
        if self._crash_rng.random() >= p.crash_rate:
            return None
        lo, hi = p.crash_window_s
        return float(self._crash_rng.uniform(lo, hi))

    def coldstart_multiplier(self) -> float:
        """Factor applied to a cold dispatch latency (1.0 = no spike)."""
        p = self.profile
        if p.coldstart_spike_rate == 0.0:
            return 1.0
        if self._coldstart_rng.random() >= p.coldstart_spike_rate:
            return 1.0
        lo, hi = p.coldstart_spike_factor
        self.stats.note_injected("coldstart_spike")
        return float(self._coldstart_rng.uniform(lo, hi))

    def compute_scale(self, function: str) -> float:
        """Factor applied to the activation's compute time (1.0 = normal)."""
        p = self.profile
        if p.straggler_rate == 0.0 or not self._targeted(
            function, p.straggler_targets
        ):
            return 1.0
        if self._straggler_rng.random() >= p.straggler_rate:
            return 1.0
        lo, hi = p.straggler_factor
        self.stats.note_injected("straggler")
        return float(self._straggler_rng.uniform(lo, hi))

    # -- message queue ----------------------------------------------------
    def message_fate(self, queue: str) -> str:
        """Fate of one published message: deliver, drop, or duplicate."""
        p = self.profile
        if p.message_loss_rate == 0.0 and p.message_duplication_rate == 0.0:
            return "deliver"
        u = self._mq_rng.random()
        if u < p.message_loss_rate:
            self.stats.note_injected("message_loss")
            return "drop"
        if u < p.message_loss_rate + p.message_duplication_rate:
            self.stats.note_injected("message_duplication")
            return "duplicate"
        return "deliver"

    # -- storage ----------------------------------------------------------
    def storage_should_fail(self, service: str) -> bool:
        """Whether the next operation on ``service`` fails transiently."""
        rate = self._storage_rates.get(service, 0.0)
        if rate == 0.0:
            return False
        if self._storage_rng.random() < rate:
            self.stats.note_injected(f"{service}_error")
            return True
        return False

    def __repr__(self) -> str:
        return f"<FaultInjector profile={self.profile.name!r} {self.stats!r}>"
