"""Cost attribution: split every billed GB-second across span categories.

The FaaS bill is a sum over :class:`~repro.faas.billing.ActivationRecord`
entries; a trace says what each activation *did* while it was billed.  The
ledger joins the two: for every record it finds the matching ``invoke``
span (matched on ``(function, activation_id)``), walks its subtree, and
charges each span's **self time** — its length minus the length of its
children, clipped to the record's billed window — to the span's category.

Accounting identities (checked by tests and ``reconcile()``):

* every second of ``record.duration`` lands in exactly one category
  (uninstrumented gaps land in ``idle``, the invoke span's self time);
* the 100 ms-rounding surcharge, ``billed_duration - duration``, lands in
  ``billing.rounding``;
* hence per record the category seconds sum to ``billed_duration``, and
  :meth:`CostLedger.total_cost` equals ``FaaSBilling.total_cost()``
  *exactly* (same per-record fold, same order);
* a record with no matching invoke span (a run traced with the
  :class:`~repro.trace.tracer.NullTracer`, or a foreign billing object)
  is charged whole to ``unattributed``.

Span identity: activation ids are only unique *within* one platform
instance, so the join key is ``(pool, function, activation_id)`` — the
pool label each :class:`~repro.faas.FaaSPlatform` stamps on its invoke
spans and billing records.  A consolidated bill over several pools with
*colliding* labels used to silently decompose a record against the wrong
pool's span (the misattributed time vanished into ``billing.rounding``);
now any ambiguous key is refused and its records land in
``unattributed``, where :meth:`CostLedger.reconcile` makes the residue
visible instead of swallowing it.

Phases: ``dispatch`` (cold/warm dispatch latency), ``train`` (anything
inside a worker ``step`` span), ``runtime`` (everything else inside the
activation: checkpoint restores, drains, idle waits), ``billing`` (the
rounding surcharge).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .tracer import Span, span_children

__all__ = ["CostLedger"]

#: categories whose *self time* is re-labelled: container spans measure
#: "time not accounted to any child", i.e. idle/wait time
_CONTAINER_CATEGORIES = ("invoke", "job")


def _decompose(
    span: Span,
    lo: float,
    hi: float,
    children: Dict[int, List[Span]],
    out: Dict[Tuple[str, str], float],
    in_step: bool,
) -> float:
    """Charge ``span``'s subtree within ``[lo, hi]``; returns clipped length."""
    start = span.start if span.start > lo else lo
    raw_end = span.end if span.end is not None else hi
    end = raw_end if raw_end < hi else hi
    length = end - start
    if length < 0.0:
        length = 0.0
    inside_step = in_step or span.category == "step"
    child_total = 0.0
    for child in children.get(span.span_id, ()):
        child_total += _decompose(child, start, end, children, out, inside_step)
    self_time = length - child_total
    if self_time < 0.0:
        # Float noise, or an adopted child outliving its parent's clip
        # window; never let it produce negative dollars.
        self_time = 0.0
    if span.category in _CONTAINER_CATEGORIES:
        category = "idle"
    elif span.category == "barrier":
        # A barrier span's children (publish/consume) keep their own
        # categories; its self time *is* the wait.
        category = "barrier"
    else:
        category = span.category
    if span.category == "coldstart":
        phase = "dispatch"
    elif inside_step:
        phase = "train"
    else:
        phase = "runtime"
    key = (category, phase)
    out[key] = out.get(key, 0.0) + self_time
    return length


class CostLedger:
    """Per-category / per-phase / per-worker breakdown of the FaaS bill.

    Build with :meth:`from_trace`; each row is a dict with keys
    ``function``, ``activation_id``, ``worker``, ``category``, ``phase``,
    ``seconds``, ``gb_s``, ``cost``.
    """

    def __init__(self, rate_per_gb_s: float, rows: List[Dict[str, Any]],
                 record_costs: List[float]):
        self.rate_per_gb_s = rate_per_gb_s
        self.rows = rows
        #: per-record billed cost, computed exactly as FaaSBilling does —
        #: total_cost() must reproduce the bill bit-for-bit
        self._record_costs = record_costs

    # -- construction ----------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Any, billing: Any) -> "CostLedger":
        """Join ``trace`` (anything with ``.spans``) against ``billing``."""
        spans = list(trace.spans)
        children = span_children(spans)
        invoke_index: Dict[Tuple[str, str, int], Span] = {}
        ambiguous: Dict[Tuple[str, str, int], bool] = {}
        for span in spans:
            if span.category == "invoke":
                key = (
                    span.attrs.get("pool", "faas"),
                    span.attrs.get("function"),
                    span.attrs.get("activation_id"),
                )
                if key in invoke_index:
                    # Two pools with the same label minted the same
                    # activation id: there is no way to tell which span
                    # belongs to which record, so refuse the join rather
                    # than attribute dollars to the wrong tenant/span.
                    ambiguous[key] = True
                else:
                    invoke_index[key] = span

        rate = billing.rate_per_gb_s
        rows: List[Dict[str, Any]] = []
        record_costs: List[float] = []
        for record in billing.records:
            record_costs.append(record.cost(rate))
            gb = record.memory_mb / 1024.0
            key = (
                getattr(record, "pool", "faas"),
                record.function,
                record.activation_id,
            )
            span = None if key in ambiguous else invoke_index.get(key)
            if span is None:
                rows.append(
                    _row(record, None, "unattributed", "runtime",
                         record.billed_duration, gb, rate)
                )
                continue
            seconds_by: Dict[Tuple[str, str], float] = {}
            _decompose(span, record.start, record.end, children, seconds_by,
                       in_step=False)
            attributed = 0.0
            for secs in seconds_by.values():
                attributed += secs
            worker = _worker_label(span, record.function)
            for (category, phase) in sorted(seconds_by):
                rows.append(
                    _row(record, worker, category, phase,
                         seconds_by[(category, phase)], gb, rate)
                )
            # The rounding surcharge completes the billed duration; it also
            # absorbs the (sub-nanosecond) float noise of the subtree sum.
            rounding = record.billed_duration - attributed
            rows.append(_row(record, worker, "billing.rounding", "billing",
                             rounding, gb, rate))
        return cls(rate, rows, record_costs)

    # -- totals ----------------------------------------------------------
    def total_cost(self) -> float:
        """The bill, exactly as ``FaaSBilling.total_cost()`` computes it."""
        return sum(self._record_costs)

    def row_cost(self) -> float:
        """Sum of the per-row costs (equals :meth:`total_cost` up to ulps)."""
        return sum(r["cost"] for r in self.rows)

    def _grouped(self, key: str) -> Dict[Any, Dict[str, float]]:
        groups: Dict[Any, Dict[str, float]] = {}
        for row in self.rows:
            bucket = groups.setdefault(
                row[key], {"seconds": 0.0, "gb_s": 0.0, "cost": 0.0}
            )
            bucket["seconds"] += row["seconds"]
            bucket["gb_s"] += row["gb_s"]
            bucket["cost"] += row["cost"]
        return groups

    def by_category(self) -> Dict[str, Dict[str, float]]:
        return self._grouped("category")

    def by_phase(self) -> Dict[str, Dict[str, float]]:
        return self._grouped("phase")

    def by_worker(self) -> Dict[str, Dict[str, float]]:
        return self._grouped("worker")

    def by_function(self) -> Dict[str, Dict[str, float]]:
        return self._grouped("function")

    # -- reconciliation --------------------------------------------------
    def reconcile(self) -> Dict[str, float]:
        """Accounting identities vs. the bill; see the module docstring.

        ``attributed_fraction`` is the share of billed GB-s that landed in
        a category other than ``unattributed``.
        """
        total = self.total_cost()
        row_sum = self.row_cost()
        total_gb_s = 0.0
        unattributed_gb_s = 0.0
        for row in self.rows:
            total_gb_s += row["gb_s"]
            if row["category"] == "unattributed":
                unattributed_gb_s += row["gb_s"]
        attributed_gb_s = total_gb_s - unattributed_gb_s
        fraction = attributed_gb_s / total_gb_s if total_gb_s > 0 else 1.0
        return {
            "billing_total_cost": total,
            "ledger_row_cost": row_sum,
            "abs_error": abs(total - row_sum),
            "total_gb_s": total_gb_s,
            "attributed_gb_s": attributed_gb_s,
            "attributed_fraction": fraction,
        }

    def category_table(self) -> List[Dict[str, Any]]:
        """Rows for a text table, most expensive category first."""
        groups = self.by_category()
        ordered = sorted(groups, key=lambda c: (-groups[c]["cost"], c))
        total = self.row_cost()
        table = []
        for category in ordered:
            bucket = groups[category]
            share = bucket["cost"] / total if total > 0 else 0.0
            table.append(
                {
                    "category": category,
                    "seconds": round(bucket["seconds"], 4),
                    "gb_s": round(bucket["gb_s"], 4),
                    "cost_usd": round(bucket["cost"], 8),
                    "share_pct": round(100.0 * share, 2),
                }
            )
        return table

    def __repr__(self) -> str:
        return (
            f"<CostLedger rows={len(self.rows)} "
            f"records={len(self._record_costs)} rate={self.rate_per_gb_s}>"
        )


def _worker_label(span: Span, function: str) -> str:
    worker = span.attrs.get("worker")
    if worker is not None:
        return f"worker-{worker}"
    role = span.attrs.get("role")
    if role is not None:
        return str(role)
    return function


def _row(record: Any, worker: Any, category: str, phase: str,
         seconds: float, gb: float, rate: float) -> Dict[str, Any]:
    gb_s = gb * seconds
    return {
        "function": record.function,
        "activation_id": record.activation_id,
        "worker": worker if worker is not None else "?",
        "category": category,
        "phase": phase,
        "seconds": seconds,
        "gb_s": gb_s,
        "cost": gb_s * rate,
    }
