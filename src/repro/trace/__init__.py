"""Zero-perturbation observability for simulated training runs.

Span tracing (:mod:`~repro.trace.tracer`), cost attribution against the
FaaS bill (:mod:`~repro.trace.ledger`), per-step critical-path and
straggler analysis (:mod:`~repro.trace.critical`), and pure exporters
(:mod:`~repro.trace.export`).  File writing and the CLI live in
:mod:`repro.trace_cli`; run ``python -m repro.trace`` (or ``repro-trace``)
on a saved ``.jsonl`` trace.

Invariant: enabling tracing never changes the simulation — the tracer
only reads ``env.now``/``env.active_process``, so a traced run's
determinism digest is bit-identical to an untraced one (enforced by
``python -m repro.analysis.determinism --trace-invariance``).
"""

from .tracer import (
    NO_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    span_children,
)
from .ledger import CostLedger
from .critical import critical_path, step_spans, straggler_report
from .export import TraceData, chrome_trace, parse_jsonl, to_jsonl_lines

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NO_SPAN",
    "span_children",
    "CostLedger",
    "critical_path",
    "straggler_report",
    "step_spans",
    "TraceData",
    "chrome_trace",
    "to_jsonl_lines",
    "parse_jsonl",
]
