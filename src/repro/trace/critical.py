"""Per-step critical-path extraction and straggler/idle-time reporting.

Under BSP every step is as slow as its slowest worker, so the job's
critical path is, per step, the *bounding* worker — the one whose work
phase (step start to barrier entry) finished last — plus whichever
resource dominated that worker's step.  The two reports here answer the
two questions behind Fig. 2/5 of the paper: *where did the time go* and
*who was everyone waiting for*.

Inputs are duck-typed: anything with a ``.spans`` list of
:class:`~repro.trace.tracer.Span` works (a live ``Tracer`` or a
``TraceData`` loaded from JSONL).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .tracer import Span, span_children

__all__ = ["critical_path", "straggler_report", "step_spans"]


def step_spans(trace: Any) -> Dict[int, List[Span]]:
    """Finished worker ``step`` spans grouped by step number."""
    by_step: Dict[int, List[Span]] = {}
    for span in trace.spans:
        if span.category == "step" and span.end is not None:
            step = span.attrs.get("step")
            if step is not None:
                by_step.setdefault(int(step), []).append(span)
    return by_step


def _barrier_child(span: Span, children: Dict[int, List[Span]]) -> Optional[Span]:
    for child in children.get(span.span_id, ()):
        if child.category == "barrier":
            return child
    return None


def _subtree_self_times(
    span: Span,
    children: Dict[int, List[Span]],
    out: Dict[str, float],
    skip_categories: tuple,
) -> float:
    """Self time per category over ``span``'s subtree; returns span length."""
    end = span.end if span.end is not None else span.start
    length = max(end - span.start, 0.0)
    child_total = 0.0
    for child in children.get(span.span_id, ()):
        if child.category in skip_categories:
            continue
        child_total += _subtree_self_times(child, children, out, skip_categories)
    self_time = max(length - child_total, 0.0)
    out[span.category] = out.get(span.category, 0.0) + self_time
    return length


def critical_path(trace: Any) -> List[Dict[str, Any]]:
    """One row per completed step: who bounded it, and on what.

    Row keys: ``step``, ``workers``, ``bound_worker`` (last to reach the
    barrier), ``bound_category`` (dominant self-time category of the
    bounding worker's work phase), ``work_s`` (the bounding worker's work
    time), ``skew_s`` (bounding minus fastest worker's work time — the
    per-step straggler penalty BSP pays), ``barrier_s`` (mean time workers
    then spent blocked on the release).
    """
    children = span_children(list(trace.spans))
    by_step = step_spans(trace)
    rows: List[Dict[str, Any]] = []
    for step in sorted(by_step):
        spans = by_step[step]
        per_worker = []
        for span in spans:
            barrier = _barrier_child(span, children)
            work_end = barrier.start if barrier is not None else span.end
            wait = 0.0
            if barrier is not None and barrier.end is not None:
                barrier_children = 0.0
                for child in children.get(barrier.span_id, ()):
                    if child.end is not None:
                        barrier_children += child.end - child.start
                wait = max((barrier.end - barrier.start) - barrier_children, 0.0)
            per_worker.append(
                {
                    "worker": span.attrs.get("worker"),
                    "span": span,
                    "work_s": max(work_end - span.start, 0.0),
                    "wait_s": wait,
                }
            )
        per_worker.sort(key=lambda w: (w["work_s"], -(w["worker"] or 0)))
        bound = per_worker[-1]
        fastest = per_worker[0]
        categories: Dict[str, float] = {}
        _subtree_self_times(bound["span"], children, categories,
                            skip_categories=("barrier",))
        categories.pop("step", None)  # container self time, not a resource
        if categories:
            bound_category = max(sorted(categories), key=lambda c: categories[c])
        else:
            bound_category = "compute"
        mean_wait = sum(w["wait_s"] for w in per_worker) / len(per_worker)
        rows.append(
            {
                "step": step,
                "workers": len(per_worker),
                "bound_worker": bound["worker"],
                "bound_category": bound_category,
                "work_s": round(bound["work_s"], 6),
                "skew_s": round(bound["work_s"] - fastest["work_s"], 6),
                "barrier_s": round(mean_wait, 6),
            }
        )
    return rows


def straggler_report(trace: Any) -> List[Dict[str, Any]]:
    """One row per worker: totals of work, barrier wait and bounding steps.

    ``idle_fraction`` is barrier wait over (work + wait): how much of the
    worker's billed step time was spent waiting for peers — high values on
    *other* workers point at this row's stragglers; a low value paired
    with a high ``bounded_steps`` marks the straggler itself.
    """
    rows_by_worker: Dict[int, Dict[str, Any]] = {}
    path = critical_path(trace)
    bounded: Dict[int, int] = {}
    for row in path:
        worker = row["bound_worker"]
        bounded[worker] = bounded.get(worker, 0) + 1

    children = span_children(list(trace.spans))
    by_step = step_spans(trace)
    for step in sorted(by_step):
        for span in by_step[step]:
            worker = span.attrs.get("worker")
            barrier = _barrier_child(span, children)
            work_end = barrier.start if barrier is not None else span.end
            wait = 0.0
            if barrier is not None and barrier.end is not None:
                wait = barrier.end - barrier.start
            entry = rows_by_worker.setdefault(
                worker,
                {"worker": worker, "steps": 0, "work_s": 0.0, "wait_s": 0.0},
            )
            entry["steps"] += 1
            entry["work_s"] += max(work_end - span.start, 0.0)
            entry["wait_s"] += wait

    report: List[Dict[str, Any]] = []
    for worker in sorted(rows_by_worker):
        entry = rows_by_worker[worker]
        busy = entry["work_s"] + entry["wait_s"]
        report.append(
            {
                "worker": worker,
                "steps": entry["steps"],
                "work_s": round(entry["work_s"], 4),
                "wait_s": round(entry["wait_s"], 4),
                "idle_fraction": round(entry["wait_s"] / busy, 4) if busy > 0 else 0.0,
                "bounded_steps": bounded.get(worker, 0),
            }
        )
    return report
