"""Span/event model and the recording tracer.

A :class:`Tracer` records *what the simulation did* as a tree of
sim-time-stamped spans (intervals with a category, a name and structured
attributes) plus instant events.  The contract that makes it safe to leave
instrumentation in the hot path permanently:

**Zero perturbation.**  The tracer only ever *reads* the simulation —
``env.now`` and ``env.active_process`` — and never creates events, yields,
draws randomness or otherwise touches the schedule.  Enabling tracing must
leave the determinism oracle's monitor-trace digest bit-identical; the
invariance check in :mod:`repro.analysis.determinism` (and CI) enforces it.

**Near-zero cost when off.**  The default collaborator is the
:data:`NULL_TRACER` singleton, whose class attribute ``enabled`` is False.
Instrumented hot paths guard with ``if tracer.enabled:`` so a run without
tracing pays one attribute lookup per site and allocates nothing.

Span nesting follows the *process structure* of the simulation: each
simulation process carries its own stack of open spans, so concurrent
workers produce properly separated subtrees.  A span opened in one process
(the ``invoke`` span opened by the platform in the caller's process) can be
installed as the root scope of a child process with :meth:`Tracer.adopt`,
which is how handler-body spans end up nested under their activation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_children",
]

#: sentinel span id meaning "no span" / "no parent"
NO_SPAN = -1


class Span:
    """One sim-time interval: ``[start, end]`` with category and attributes.

    ``end is None`` while the span is still open (or was abandoned by a
    crashed activation); analysis code clips open spans to the enclosing
    activation record.  ``parent_id`` is :data:`NO_SPAN` (-1) for roots.
    """

    __slots__ = ("span_id", "parent_id", "category", "name", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        category: str,
        name: str,
        start: float,
        end: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.category = category
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Span length in simulated seconds, or None while open."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "category": self.category,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return (
            f"<Span #{self.span_id} {self.category} {self.name!r} "
            f"[{self.start:.6f}, {end}]>"
        )


class TraceEvent:
    """An instant occurrence (a decision, a fault, a scale-in order)."""

    __slots__ = ("event_id", "parent_id", "category", "name", "ts", "attrs")

    def __init__(
        self,
        event_id: int,
        parent_id: int,
        category: str,
        name: str,
        ts: float,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.event_id = event_id
        self.parent_id = parent_id
        self.category = category
        self.name = name
        self.ts = ts
        self.attrs = attrs if attrs is not None else {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.event_id,
            "parent": self.parent_id,
            "category": self.category,
            "name": self.name,
            "ts": self.ts,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return f"<TraceEvent #{self.event_id} {self.category} {self.name!r} @{self.ts:.6f}>"


class NullTracer:
    """The do-nothing tracer: every hook is a no-op returning a sentinel.

    Also serves as the interface definition — :class:`Tracer` subclasses it
    so instrumented code can hold either without isinstance checks.  Use
    the module-level :data:`NULL_TRACER` singleton instead of constructing
    new instances.
    """

    enabled = False

    def bind(self, env: Any) -> "NullTracer":
        """Attach to a simulation environment (no-op when disabled)."""
        return self

    def begin(self, category: str, name: str, **attrs: Any) -> int:
        """Open a span; returns its id (:data:`NO_SPAN` when disabled)."""
        return NO_SPAN

    def end(self, span_id: int, **attrs: Any) -> None:
        """Close a span (idempotent; :data:`NO_SPAN` is ignored)."""

    def event(self, category: str, name: str, **attrs: Any) -> int:
        """Record an instant event; returns its id (-1 when disabled)."""
        return -1

    def annotate(self, span_id: int, **attrs: Any) -> None:
        """Merge attributes into an open or closed span."""

    def adopt(self, process: Any, span_id: int) -> None:
        """Make ``span_id`` the root scope of a (not yet started) process."""

    def current_span_id(self) -> int:
        """Innermost open span of the active process, or :data:`NO_SPAN`."""
        return NO_SPAN


#: the shared no-op tracer every component defaults to
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records spans and events against a simulation environment's clock.

    One tracer observes one run: bind it to the run's environment (done
    automatically by the components it is handed to), thread it through
    ``build_world(tracer=...)`` / ``run_mlless(tracer=...)``, and read
    ``spans`` / ``events`` afterwards.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self._env: Any = None
        #: per-process stacks of open span ids; the ``None`` key collects
        #: spans opened outside any process.  Keys are only ever looked up,
        #: never iterated, so host ``id()`` ordering cannot leak into the
        #: trace (let alone the simulation).
        self._scopes: Dict[Any, List[int]] = {}
        #: open span id -> the scope stack it was pushed on, so a span can
        #: be closed from a different process than the one that opened it
        #: (e.g. the platform finalizer closing an ``invoke`` span)
        self._open: Dict[int, List[int]] = {}

    # -- wiring ----------------------------------------------------------
    def bind(self, env: Any) -> "Tracer":
        """Attach to ``env``; idempotent, but refuses a second environment."""
        if self._env is not None and self._env is not env:
            raise ValueError(
                "tracer is already bound to a different environment; "
                "use one Tracer per run"
            )
        self._env = env
        return self

    @property
    def now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    def _stack(self) -> List[int]:
        proc = self._env.active_process if self._env is not None else None
        stack = self._scopes.get(proc)
        if stack is None:
            stack = self._scopes[proc] = []
        return stack

    # -- recording -------------------------------------------------------
    def begin(self, category: str, name: str, **attrs: Any) -> int:
        stack = self._stack()
        parent = stack[-1] if stack else NO_SPAN
        span = Span(len(self.spans), parent, category, name, self.now, None, attrs)
        self.spans.append(span)
        stack.append(span.span_id)
        self._open[span.span_id] = stack
        return span.span_id

    def end(self, span_id: int, **attrs: Any) -> None:
        if span_id < 0:
            return
        span = self.spans[span_id]
        if span.end is None:
            span.end = self.now
        if attrs:
            span.attrs.update(attrs)
        stack = self._open.pop(span_id, None)
        if stack is not None:
            try:
                stack.remove(span_id)
            except ValueError:
                pass

    def event(self, category: str, name: str, **attrs: Any) -> int:
        stack = self._stack()
        parent = stack[-1] if stack else NO_SPAN
        ev = TraceEvent(len(self.events), parent, category, name, self.now, attrs)
        self.events.append(ev)
        return ev.event_id

    def annotate(self, span_id: int, **attrs: Any) -> None:
        if span_id < 0:
            return
        self.spans[span_id].attrs.update(attrs)

    def adopt(self, process: Any, span_id: int) -> None:
        """Seed ``process``'s scope stack with ``span_id`` as its root.

        Must be called before the process first runs (in practice:
        immediately after ``env.process(...)``, while the spawner still
        holds control).  The adopted span is *not* re-registered as open —
        whoever opened it still owns closing it.
        """
        if span_id < 0:
            return
        self._scopes[process] = [span_id]

    def current_span_id(self) -> int:
        proc = self._env.active_process if self._env is not None else None
        stack = self._scopes.get(proc)
        return stack[-1] if stack else NO_SPAN

    def __repr__(self) -> str:
        return f"<Tracer spans={len(self.spans)} events={len(self.events)}>"


def span_children(spans: List[Span]) -> Dict[int, List[Span]]:
    """Parent id -> children (in span-id order), for tree walks."""
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id >= 0:
            children.setdefault(span.parent_id, []).append(span)
    return children
