"""Pure trace serializers: Chrome trace-event JSON and JSONL round-trip.

Everything here returns data (dicts, line iterators, parsed objects) and
never touches the filesystem — file writing lives in
:mod:`repro.trace_cli`, outside the simulated layers, so this package
stays sim-lint clean.

Formats:

* :func:`chrome_trace` — the Chrome trace-event format (``{"traceEvents":
  [...]}``) loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Spans become complete (``ph: "X"``) events,
  instant events become ``ph: "i"``, and each activation gets its own
  named track via ``thread_name`` metadata.  Timestamps are microseconds
  of *simulated* time.
* :func:`to_jsonl_lines` / :func:`parse_jsonl` — a lossless native dump
  (one JSON object per line: a meta header, then spans, events and —
  optionally — activation billing records) that round-trips back into
  :class:`TraceData`, so every analysis in :mod:`repro.trace` works on a
  saved trace exactly as on a live tracer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional

from .tracer import Span, TraceEvent

__all__ = ["chrome_trace", "to_jsonl_lines", "parse_jsonl", "TraceData"]

JSONL_VERSION = 1


class TraceData:
    """A parsed trace: the duck-type shared with a live ``Tracer``.

    ``spans`` and ``events`` satisfy every analysis entry point
    (:class:`~repro.trace.ledger.CostLedger`,
    :func:`~repro.trace.critical.critical_path`, :func:`chrome_trace`);
    ``records``/``rate_per_gb_s`` restore the billing side when the dump
    included it (see :attr:`billing`).
    """

    def __init__(
        self,
        spans: List[Span],
        events: List[TraceEvent],
        records: Optional[List[Any]] = None,
        rate_per_gb_s: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.spans = spans
        self.events = events
        self.records = records if records is not None else []
        self.rate_per_gb_s = rate_per_gb_s
        self.meta = meta if meta is not None else {}

    @property
    def billing(self) -> Any:
        """A ``FaaSBilling`` rebuilt from the embedded records.

        Raises :class:`ValueError` when the dump carried no billing data.
        """
        if not self.records:
            raise ValueError(
                "this trace was saved without billing records; re-export "
                "with a billing object to enable cost analysis"
            )
        from ..faas.billing import FaaSBilling

        rate = self.rate_per_gb_s
        if rate is None:
            return FaaSBilling(records=list(self.records))
        return FaaSBilling(rate_per_gb_s=rate, records=list(self.records))

    def __repr__(self) -> str:
        return (
            f"<TraceData spans={len(self.spans)} events={len(self.events)} "
            f"records={len(self.records)}>"
        )


# -- Chrome trace-event format ------------------------------------------


def _track_label(span: Span, spans: List[Span]) -> str:
    """Perfetto track for a span: its enclosing activation (or role)."""
    current: Optional[Span] = span
    while current is not None:
        if current.category == "invoke":
            worker = current.attrs.get("worker")
            if worker is not None:
                return f"worker-{worker}"
            role = current.attrs.get("role")
            if role is not None:
                return str(role)
            return str(current.attrs.get("function", current.name))
        if current.category == "job":
            return "driver"
        parent = current.parent_id
        current = spans[parent] if parent >= 0 else None
    return "background"


def chrome_trace(trace: Any) -> Dict[str, Any]:
    """The trace as a Chrome trace-event JSON object (Perfetto-loadable).

    Track (tid) assignment is deterministic: first appearance order of
    each track label across spans then events.
    """
    spans: List[Span] = list(trace.spans)
    events: List[TraceEvent] = list(trace.events)
    horizon = 0.0
    for span in spans:
        if span.end is not None and span.end > horizon:
            horizon = span.end
        elif span.start > horizon:
            horizon = span.start

    tids: Dict[str, int] = {}

    def tid_of(label: str) -> int:
        if label not in tids:
            tids[label] = len(tids) + 1
        return tids[label]

    trace_events: List[Dict[str, Any]] = []
    for span in spans:
        label = _track_label(span, spans)
        end = span.end if span.end is not None else horizon
        trace_events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "ts": span.start * 1e6,
                "dur": max(end - span.start, 0.0) * 1e6,
                "pid": 1,
                "tid": tid_of(label),
                "args": dict(span.attrs),
            }
        )
    for event in events:
        parent = spans[event.parent_id] if event.parent_id >= 0 else None
        label = _track_label(parent, spans) if parent is not None else "background"
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "name": event.name,
                "cat": event.category,
                "ts": event.ts * 1e6,
                "pid": 1,
                "tid": tid_of(label),
                "args": dict(event.attrs),
            }
        )
    metadata = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "args": {"name": "simulated run"},
        }
    ]
    for label in tids:  # insertion-ordered dict: deterministic
        metadata.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tids[label],
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "source": "repro.trace"},
    }


# -- JSONL round-trip ---------------------------------------------------


def to_jsonl_lines(trace: Any, billing: Any = None) -> Iterator[str]:
    """Serialize a trace (and optionally its billing) one JSON per line."""
    spans: List[Span] = list(trace.spans)
    events: List[TraceEvent] = list(trace.events)
    header: Dict[str, Any] = {
        "kind": "meta",
        "version": JSONL_VERSION,
        "n_spans": len(spans),
        "n_events": len(events),
    }
    if billing is not None:
        header["rate_per_gb_s"] = billing.rate_per_gb_s
        header["n_records"] = len(billing.records)
    yield json.dumps(header, sort_keys=True)
    for span in spans:
        yield json.dumps({"kind": "span", **span.to_dict()}, sort_keys=True)
    for event in events:
        yield json.dumps({"kind": "event", **event.to_dict()}, sort_keys=True)
    if billing is not None:
        for r in billing.records:
            yield json.dumps(
                {
                    "kind": "record",
                    "function": r.function,
                    "activation_id": r.activation_id,
                    "memory_mb": r.memory_mb,
                    "start": r.start,
                    "end": r.end,
                    "cold": r.cold,
                    "ok": r.ok,
                    "pool": r.pool,
                    "container_id": r.container_id,
                },
                sort_keys=True,
            )


def parse_jsonl(lines: Iterable[str]) -> TraceData:
    """Rebuild a :class:`TraceData` from :func:`to_jsonl_lines` output."""
    spans: List[Span] = []
    events: List[TraceEvent] = []
    records: List[Any] = []
    rate: Optional[float] = None
    meta: Dict[str, Any] = {}
    record_cls = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("kind")
        if kind == "meta":
            meta = obj
            rate = obj.get("rate_per_gb_s")
        elif kind == "span":
            spans.append(
                Span(
                    span_id=obj["id"],
                    parent_id=obj["parent"],
                    category=obj["category"],
                    name=obj["name"],
                    start=obj["start"],
                    end=obj["end"],
                    attrs=obj.get("attrs") or {},
                )
            )
        elif kind == "event":
            events.append(
                TraceEvent(
                    event_id=obj["id"],
                    parent_id=obj["parent"],
                    category=obj["category"],
                    name=obj["name"],
                    ts=obj["ts"],
                    attrs=obj.get("attrs") or {},
                )
            )
        elif kind == "record":
            if record_cls is None:
                from ..faas.billing import ActivationRecord

                record_cls = ActivationRecord
            records.append(
                record_cls(
                    function=obj["function"],
                    activation_id=obj["activation_id"],
                    memory_mb=obj["memory_mb"],
                    start=obj["start"],
                    end=obj["end"],
                    cold=obj["cold"],
                    ok=obj["ok"],
                    pool=obj.get("pool", "faas"),
                    container_id=obj.get("container_id", -1),
                )
            )
        else:
            raise ValueError(f"unknown trace line kind {kind!r}")
    spans.sort(key=lambda s: s.span_id)
    events.sort(key=lambda e: e.event_id)
    return TraceData(spans, events, records=records, rate_per_gb_s=rate, meta=meta)
