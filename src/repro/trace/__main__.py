"""``python -m repro.trace`` — delegate to the host-side CLI.

The CLI (argument parsing, file I/O, printing) lives outside the
simulated layers in :mod:`repro.trace_cli`; this shim only forwards.
"""

import sys

from ..trace_cli import main

if __name__ == "__main__":
    sys.exit(main())
