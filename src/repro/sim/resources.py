"""Shared resources for simulation processes.

``Resource``
    A counted resource (e.g. vCPU slots, connection pools).  Processes
    ``yield resource.request()`` to acquire a unit and call
    ``resource.release(req)`` (or use the request as a context manager via
    the two-phase pattern) to give it back.  FIFO granting.

``Store``
    An unbounded-or-bounded FIFO buffer of Python objects, the building
    block for queues and mailboxes.

``Container``
    A continuous quantity (e.g. bytes of budget) with put/get amounts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Tuple

from .core import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Store", "Container"]


class Request(Event):
    """A pending acquisition of one unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._request(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        if not self.triggered:
            try:
                self.resource._waiters.remove(self)
            except ValueError:
                pass


class Resource:
    """A counted resource with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[Request] = []

    @property
    def count(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Request:
        """Ask for one unit; the returned event fires when granted."""
        return Request(self)

    def _request(self, req: Request) -> None:
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiters.append(req)

    def release(self, req: Request) -> None:
        """Return one unit previously granted to ``req``."""
        if not req.triggered:
            req.cancel()
            return
        if self._in_use <= 0:
            raise SimulationError("release() without a matching grant")
        if self._waiters:
            nxt = self._waiters.pop(0)
            nxt.succeed()
        else:
            self._in_use -= 1


class Store:
    """A FIFO object buffer with optionally bounded capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        #: blocked puts as (event, item) pairs — events are slotted, so
        #: payloads ride alongside them instead of as ad-hoc attributes
        self._putters: Deque[Tuple[Event, Any]] = deque()

    @property
    def items(self) -> List[Any]:
        """Snapshot of buffered items (oldest first)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the event fires once there is room.

        The unblocked path inlines :meth:`Event.succeed` (minus the
        already-triggered guard — these events are untriggered by
        construction): FIFO handoffs are the hottest resource entry
        point, and the inlined now-queue appends keep each one an O(1)
        kernel operation with no method-call overhead.
        """
        env = self.env
        event = env.event()
        if len(self._items) < self.capacity:
            getters = self._getters
            if getters:
                getter = getters.popleft()
                getter._ok = True
                getter._value = item
                seq = env._seq
                env._seq = seq + 1
                env._nowq.append((env._now, seq, getter))
            else:
                self._items.append(item)
            event._ok = True
            event._value = None
            seq = env._seq
            env._seq = seq + 1
            env._nowq.append((env._now, seq, event))
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item.

        The item-available path is inlined like :meth:`put`.
        """
        env = self.env
        event = env.event()
        items = self._items
        if items:
            event._ok = True
            event._value = items.popleft()
            seq = env._seq
            env._seq = seq + 1
            env._nowq.append((env._now, seq, event))
            if self._putters and len(items) < self.capacity:
                putter, item = self._putters.popleft()
                self._do_put(putter, item)
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending ``get`` so a future put skips it.

        Used by timed consumers: once the waiter gives up, its get event
        must leave the queue or the next item would be delivered to a
        consumer that is no longer listening (and silently lost).  A
        no-op if the event already fired or was never queued.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def _do_put(self, event: Event, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)
        event.succeed()

    def _do_get(self, event: Event) -> None:
        event.succeed(self._items.popleft())
        if self._putters and len(self._items) < self.capacity:
            putter, item = self._putters.popleft()
            self._do_put(putter, item)


class Container:
    """A continuous quantity with blocking ``put``/``get`` of amounts."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        #: blocked transfers as (event, amount) pairs (events are slotted)
        self._getters: Deque[Tuple[Event, float]] = deque()
        self._putters: Deque[Tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = self.env.event()
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = self.env.event()
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and self._level + self._putters[0][1] <= self.capacity:
                putter, amount = self._putters.popleft()
                self._level += amount
                putter.succeed()
                progress = True
            if self._getters and self._level >= self._getters[0][1]:
                getter, amount = self._getters.popleft()
                self._level -= amount
                getter.succeed(amount)
                progress = True
