"""Discrete-event simulation kernel.

A minimal but complete process-based DES engine in the style of SimPy,
written from scratch so the whole cloud substrate (FaaS platform, storage
services, VM clusters) can run on a deterministic simulated clock.

The central pieces are:

``Environment``
    Owns the simulated clock and the pending-event queue, and drives the
    simulation forward with :meth:`Environment.run` / :meth:`Environment.step`.

``Event``
    A one-shot occurrence with a value.  Processes wait on events by
    yielding them.

``Process``
    Wraps a Python generator.  Each ``yield`` hands an event back to the
    kernel; the process resumes when that event fires.  A ``Process`` is
    itself an event that triggers when the generator returns, so processes
    compose (a process can wait for another process).

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling (ties broken by a monotonically increasing sequence
number), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party may attach a ``cause`` describing why.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from a triggered event whose
# value happens to be ``None``.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it and schedules its callbacks to run at the current simulated
    time.  Once triggered, an event cannot be triggered again.

    Events are the highest-churn allocation of the whole simulator (every
    simulated service call makes several), so the class — and every
    subclass — carries ``__slots__``; state beyond the slots must live in
    the payloads the kernel passes around, never as ad-hoc attributes.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: set by the kernel when a failure was delivered to at least one
        #: waiter (or explicitly defused), so unhandled failures can be
        #: reported instead of silently dropped.
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (``callbacks`` is then ``None``)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance when it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception re-raised at their
        ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        from .events import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        from .events import AnyOf

        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts are born triggered, so ``__init__`` writes the slots
    directly instead of going through :class:`Event` and overwriting —
    this is the hottest constructor in the simulator (every simulated
    latency is one).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that starts a :class:`Process` at spawn time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self.defused = False
        env._schedule(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator drives the process: every value it ``yield``\\ s must be
    an :class:`Event`; the process suspends until that event triggers.  If
    the event failed, its exception is re-raised inside the generator so it
    can be caught with ordinary ``try/except``.

    The process itself is an event that succeeds with the generator's
    return value (or fails with its uncaught exception).
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from the event currently waited on, then schedule an
        # immediate resumption that raises Interrupt inside the generator.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        event = Event(self.env)
        event.callbacks.append(self._resume)
        event.fail(Interrupt(cause))
        event.defused = True

    # -- kernel interface -------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active_process = self
        while True:
            try:
                if event is None or event._ok:
                    value = None if event is None else event._value
                    next_event = self._generator.send(value)
                else:
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._generator.close()
                self.fail(error)
                return

            if next_event.callbacks is not None:
                # Event still pending (or triggered but not yet processed):
                # register and suspend.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                env._active_process = None
                return

            # Event already processed: feed its value straight back in.
            event = next_event

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"


class Environment:
    """The simulation environment: clock plus event queue."""

    __slots__ = ("_now", "_queue", "_seq", "_active_process")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []  # heap of (time, seq, event)
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being executed, if any."""
        return self._active_process

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> "Condition":
        from .events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> "Condition":
        from .events import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event in the queue."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # A failure nobody waited on: surface it rather than losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers; its value is returned).
        """
        stop_at = float("inf")
        stop_at_given = False
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_callback)
            elif stop_event.triggered:
                return stop_event._value if stop_event._ok else None
        else:
            stop_at = float(until)
            stop_at_given = True
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )

        try:
            while self._queue and self.peek() <= stop_at:
                self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run() finished with no remaining events, but the 'until' "
                "event was never triggered"
            )
        if stop_event is None and stop_at_given:
            self._now = stop_at
        return None

    def _stop_callback(self, event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
