"""Discrete-event simulation kernel.

A minimal but complete process-based DES engine in the style of SimPy,
written from scratch so the whole cloud substrate (FaaS platform, storage
services, VM clusters) can run on a deterministic simulated clock.

The central pieces are:

``Environment``
    Owns the simulated clock and the pending-event set, and drives the
    simulation forward with :meth:`Environment.run` / :meth:`Environment.step`.

``Event``
    A one-shot occurrence with a value.  Processes wait on events by
    yielding them.

``Process``
    Wraps a Python generator.  Each ``yield`` hands an event back to the
    kernel; the process resumes when that event fires.  A ``Process`` is
    itself an event that triggers when the generator returns, so processes
    compose (a process can wait for another process).

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling (ties broken by a monotonically increasing sequence
number), so runs are exactly reproducible.

Pending-event structure
-----------------------

The kernel delivers events in ``(time, seq)`` order from four containers
instead of one global heap, because the platform-scale workloads keep
thousands of timers pending while delay-zero handoffs churn:

``_nowq``
    A deque of delay-zero schedules (``succeed``/``fail`` wakeups, Store
    handoffs).  Simulated time never moves backwards and ``seq`` is
    monotone, so the deque is sorted by construction and a wakeup is an
    O(1) append/popleft instead of a push through a populated heap.

``_wheel``
    A circular timer wheel of :data:`_WHEEL_SIZE` buckets, each
    :data:`_WHEEL_QUANTUM` seconds wide, holding short-delay timeouts
    (the dominant event class).  Bucket indices are *unwrapped* (the
    physical slot is ``idx & _WHEEL_MASK``), so slots behind the cursor
    belong to the next rotation and the usable horizon is always the
    full wheel span.  Insert is an O(1) ``list.append``; a small side
    heap (``_wheel_occ``) of *occupied bucket indices* — pushed only on
    a bucket's empty-to-nonempty transition — lets the flush jump
    straight to the next occupied bucket instead of scanning empties,
    so sparse timelines (one pending timer, second-scale gaps) cost
    O(log occupied-buckets), not O(elapsed-time / quantum).  A bucket
    is sorted once (C timsort) when the clock reaches it and drained
    through ``_due``.  The index function is monotone in ``t`` (with a
    float guard so a bucket's lower bound never exceeds an entry's
    time), which makes bucket order a refinement of ``(time, seq)``
    order: equal times always map to the same bucket, and the wheel
    base is never renormalized while entries are pending so every
    lower-bound comparison reuses the exact float expression of the
    insert guard.

``_due``
    The flushed-but-undelivered wheel entries, kept descending so the
    minimum pops from the end in O(1).

``_far``
    A conventional heap for everything else: timers beyond the wheel
    horizon, timers targeting already-flushed buckets (sub-quantum
    delays landing just behind the cursor), and any entry at all when in
    doubt — the pop loop compares the heads of all four containers
    lexicographically, so the heap is always a correct fallback.

The wheel re-anchors lazily: when it is empty and an insert misses the
current window, the base moves to ``now`` and bucket 0 starts there, so
long quiet periods cost nothing.

Fired :class:`Timeout` and plain :class:`Event` objects are additionally
pooled: after callbacks run, an event whose refcount proves no user
reference survives is recycled by the next :meth:`Environment.timeout` /
:meth:`Environment.event` call (its callbacks list is cleared and reused
too), skipping the allocation and ``__init__`` of the two hottest
constructors in the simulator.  Pooling never changes delivery order,
only object identity, and the monitor digest hashes values and times,
never identities.
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
]

#: timer-wheel geometry: 4096 buckets x 1 ms covers a rolling 4.096 s
#: horizon (the wheel is circular: slots behind the cursor hold the next
#: rotation), sized so millisecond-to-second service latencies (compute,
#: network, polling sleeps) land in the wheel while barrier timeouts,
#: keep-alive windows and hour-scale anchors fall through to the far
#: heap.  The 1 ms quantum keeps bucket occupancy low even with tens of
#: thousands of concurrent timers, so the sort-on-flush stays cheap.
_WHEEL_SIZE = 4096
_WHEEL_MASK = _WHEEL_SIZE - 1
_WHEEL_QUANTUM = 0.001
_WHEEL_INV_QUANTUM = 1.0 / _WHEEL_QUANTUM
_WHEEL_SPAN = _WHEEL_SIZE * _WHEEL_QUANTUM

_heappush = heapq.heappush
_heappop = heapq.heappop

#: recycled-event pool cap per environment (bounds kernel-held garbage)
_TIMEOUT_POOL_CAP = 256

#: timeout-delay histogram bin edges (seconds) for the kernel profiler
_DELAY_BIN_EDGES = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)


def _measure_reclaim_refs() -> int:
    """Reference count of an object held exactly like a just-fired event.

    Mirrors the run loop at the pooling check: one containing tuple, one
    local binding, one ``getrefcount`` argument.  Measuring instead of
    hard-coding keeps the check correct across CPython versions; if the
    measurement were ever too high the pool would silently stay cold
    (safe), never reclaim a live object.
    """
    entry = (0.0, 0, object())
    event = entry[2]
    return sys.getrefcount(event) if hasattr(sys, "getrefcount") else -1


_RECLAIM_REFS = _measure_reclaim_refs()
#: on runtimes without getrefcount (PyPy) this never equals _RECLAIM_REFS,
#: so pooling is disabled rather than wrong
_getrefcount = getattr(sys, "getrefcount", lambda _obj: -2)


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party may attach a ``cause`` describing why.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from a triggered event whose
# value happens to be ``None``.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it and schedules its callbacks to run at the current simulated
    time.  Once triggered, an event cannot be triggered again.

    Events are the highest-churn allocation of the whole simulator (every
    simulated service call makes several), so the class — and every
    subclass — carries ``__slots__``; state beyond the slots must live in
    the payloads the kernel passes around, never as ad-hoc attributes.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: set by the kernel when a failure was delivered to at least one
        #: waiter (or explicitly defused), so unhandled failures can be
        #: reported instead of silently dropped.
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (``callbacks`` is then ``None``)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance when it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Delay-zero scheduling is inlined (now-queue append): wakeups are
        the single hottest kernel entry point after timeouts.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        env._nowq.append((env._now, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception re-raised at their
        ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        env._nowq.append((env._now, seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        from .events import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        from .events import AnyOf

        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts are born triggered, so ``__init__`` writes the slots
    directly instead of going through :class:`Event` and overwriting —
    this is the hottest constructor in the simulator (every simulated
    latency is one).  Fired instances with no surviving references are
    recycled through the environment's pool (see
    :meth:`Environment.timeout`), which bypasses this constructor
    entirely.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that starts a :class:`Process` at spawn time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self.defused = False
        env._schedule(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator drives the process: every value it ``yield``\\ s must be
    an :class:`Event`; the process suspends until that event triggers.  If
    the event failed, its exception is re-raised inside the generator so it
    can be caught with ordinary ``try/except``.

    The process itself is an event that succeeds with the generator's
    return value (or fails with its uncaught exception).
    """

    __slots__ = ("_generator", "name", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        #: the bound resume callback, created once — every yield appends
        #: it to an event's callbacks, so don't rebuild the bound method
        #: each time
        self._resume_cb = self._resume
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from the event currently waited on, then schedule an
        # immediate resumption that raises Interrupt inside the generator.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        event = Event(self.env)
        event.callbacks.append(self._resume_cb)
        event.fail(Interrupt(cause))
        event.defused = True

    # -- kernel interface -------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc)
                return

            # Duck-typed event check: anything without a ``callbacks``
            # attribute is not an event.  (A separate try block so user
            # AttributeErrors inside send/throw above are not masked.)
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                env._active_process = None
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                generator.close()
                self.fail(error)
                return

            if callbacks is not None:
                # Event still pending (or triggered but not yet processed):
                # register and suspend.
                self._target = next_event
                callbacks.append(self._resume_cb)
                env._active_process = None
                return

            # Event already processed: feed its value straight back in.
            event = next_event

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"


class Environment:
    """The simulation environment: clock plus pending-event structure."""

    __slots__ = (
        "_now",
        "_seq",
        "_active_process",
        "_nowq",
        "_due",
        "_far",
        "_wheel",
        "_wheel_base",
        "_wheel_cursor",
        "_wheel_count",
        "_wheel_occ",
        "_wheel_lb",
        "_timeout_pool",
        "_event_pool",
        "_profile",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: delay-zero schedules, already sorted by construction
        self._nowq: deque = deque()
        #: flushed wheel entries, descending — the minimum is due[-1]
        self._due: List = []
        #: heap of (time, seq, event) outside the wheel window
        self._far: List = []
        #: bucket lists, built lazily on the first nonzero-delay schedule
        self._wheel: Optional[List[List]] = None
        self._wheel_base = self._now
        self._wheel_cursor = 0
        self._wheel_count = 0
        #: min-heap of occupied (unwrapped) bucket indices.  An index is
        #: pushed exactly on a bucket's empty->nonempty transition and
        #: popped when that bucket drains, so the heap mirrors bucket
        #: occupancy with no stale entries and the flush can jump the
        #: cursor over arbitrarily many empty buckets in O(log occupied).
        self._wheel_occ: List[int] = []
        #: cached lower bound of the nearest occupied bucket
        #: (== _wheel_base + _wheel_occ[0] * _WHEEL_QUANTUM, maintained
        #: at every occ-min change) so the run loop can decide "can the
        #: wheel hold anything <= best?" with one slot load instead of a
        #: _flush_wheel call.  Only meaningful while _wheel_count > 0.
        self._wheel_lb = self._now
        self._timeout_pool: List[Timeout] = []
        self._event_pool: List[Event] = []
        self._profile: Optional[Dict[str, Any]] = None

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being executed, if any."""
        return self._active_process

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event.

        Recycles a pooled fired event when one is available: its
        callbacks list was cleared at reclaim time, so only the trigger
        state needs resetting.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = _PENDING
            event._ok = None
            event.defused = False
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now.

        Recycles a pooled fired timeout when one is available (see the
        module docstring): the slot writes below mirror
        :meth:`Timeout.__init__` exactly, minus the allocation.
        """
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Pooled instances need no callbacks/_ok writes: reclaim cleared
        # the callbacks list in place and only successful events pool.
        event = pool.pop()
        event._value = value
        event.defused = False
        event.delay = delay
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            self._nowq.append((self._now, seq, event))
            return event
        t = self._now + delay
        # No profile hook here: enable_profile() drains the pools and
        # profiled runs never refill them, so this path stays cold
        # while the delay histogram is recording.
        # Inlined common-case wheel insert (in-window, wheel built); any
        # miss falls through to the generic path.
        base = self._wheel_base
        idx = int((t - base) * _WHEEL_INV_QUANTUM)
        if base + idx * _WHEEL_QUANTUM > t:
            idx -= 1
        cursor = self._wheel_cursor
        wheel = self._wheel
        if wheel is not None and cursor <= idx < cursor + _WHEEL_SIZE:
            bucket = wheel[idx & _WHEEL_MASK]
            if not bucket:
                occ = self._wheel_occ
                _heappush(occ, idx)
                if idx == occ[0]:
                    self._wheel_lb = base + idx * _WHEEL_QUANTUM
            bucket.append((t, seq, event))
            self._wheel_count += 1
        else:
            self._wheel_insert((t, seq, event), t)
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> "Condition":
        from .events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> "Condition":
        from .events import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            self._nowq.append((self._now, seq, event))
            return
        t = self._now + delay
        self._wheel_insert((t, seq, event), t)
        if self._profile is not None:
            self._record_delay(delay)

    def _wheel_insert(self, entry: tuple, t: float) -> None:
        """File a future entry into the wheel, or the far heap when outside.

        The far heap is a *correct* home for any entry (pops compare all
        container heads), so every out-of-window case simply falls
        through to it.
        """
        base = self._wheel_base
        cursor = self._wheel_cursor
        idx = int((t - base) * _WHEEL_INV_QUANTUM)
        # Float guard: a bucket's lower bound must never exceed its
        # entries' time, or the flush order could deliver a later entry
        # first.  The guarded index function stays monotone in t, so
        # equal times always share a bucket.
        if base + idx * _WHEEL_QUANTUM > t:
            idx -= 1
        # The wheel is circular: indices are un-wrapped (monotone since
        # the last re-anchor; the physical slot is idx & mask) and the
        # live window is [cursor, cursor + size).  The base is *only*
        # moved while the wheel is empty, so every lower-bound
        # comparison below and in _flush_wheel reuses the exact float
        # expression of this guard — ordering never hinges on a
        # renormalized base being bit-equal.
        if idx < cursor or idx >= cursor + _WHEEL_SIZE:
            if self._wheel_count == 0:
                # Wheel idle: re-anchor the window at the current time.
                self._wheel_base = base = self._now
                self._wheel_cursor = cursor = 0
                self._wheel_lb = base
                idx = int((t - base) * _WHEEL_INV_QUANTUM)
                if base + idx * _WHEEL_QUANTUM > t:
                    idx -= 1
            if idx < cursor or idx >= cursor + _WHEEL_SIZE:
                _heappush(self._far, entry)
                return
        wheel = self._wheel
        if wheel is None:
            wheel = self._wheel = [[] for _ in range(_WHEEL_SIZE)]
        bucket = wheel[idx & _WHEEL_MASK]
        if not bucket:
            occ = self._wheel_occ
            _heappush(occ, idx)
            if idx == occ[0]:
                self._wheel_lb = base + idx * _WHEEL_QUANTUM
        bucket.append(entry)
        self._wheel_count += 1

    def _flush_wheel(self, best: Optional[tuple]) -> Optional[tuple]:
        """Drain wheel buckets that may contain entries <= ``best``.

        Jumps the cursor to each occupied bucket in index order (via the
        ``_wheel_occ`` min-heap — empty buckets are never visited),
        stopping once the next occupied bucket's lower bound exceeds the
        best candidate's time.  Non-empty buckets are sorted into
        ``_due`` (descending); returns the updated best candidate (the
        new ``_due`` head when it wins).  Merging into a non-empty
        ``_due`` is the rare float-edge case; steady state appends to an
        empty list.  Bucket lower bounds reuse the insert guard's exact
        float expression (same base, same index), so an entry's time is
        never below its bucket's computed bound.
        """
        due = self._due
        wheel = self._wheel
        occ = self._wheel_occ
        base = self._wheel_base
        while occ:
            idx = occ[0]
            lb = base + idx * _WHEEL_QUANTUM
            if best is not None and best[0] < lb:
                break
            _heappop(occ)
            self._wheel_cursor = idx + 1
            bucket = wheel[idx & _WHEEL_MASK]
            self._wheel_count -= len(bucket)
            if due:
                due.extend(bucket)
                due.sort(reverse=True)
            else:
                bucket.sort(reverse=True)
                due.extend(bucket)
            bucket.clear()
            head = due[-1]
            if best is None or head < best:
                best = head
        if occ:
            self._wheel_lb = base + occ[0] * _WHEEL_QUANTUM
        return best

    def _pop_next(self, stop_at: float = float("inf")) -> Optional[tuple]:
        """Remove and return the globally next ``(time, seq, event)``.

        Returns ``None`` when no event remains or the next event lies
        beyond ``stop_at`` (in which case nothing is removed).  This is
        the reference pop — :meth:`_run_fast` inlines the same logic.
        """
        nowq = self._nowq
        due = self._due
        far = self._far
        best = None
        src = 0
        if nowq:
            best = nowq[0]
            src = 1
        if due:
            head = due[-1]
            if best is None or head < best:
                best = head
                src = 2
        if far:
            head = far[0]
            if best is None or head < best:
                best = head
                src = 3
        if self._wheel_count:
            flushed = self._flush_wheel(best)
            if flushed is not best:
                best = flushed
                src = 2
        if best is None or best[0] > stop_at:
            return None
        if src == 1:
            nowq.popleft()
        elif src == 2:
            due.pop()
        else:
            heapq.heappop(far)
        return best

    def _pending_count(self) -> int:
        return (
            len(self._nowq) + len(self._due) + len(self._far) + self._wheel_count
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        best_t = float("inf")
        if self._nowq:
            best_t = self._nowq[0][0]
        if self._due and self._due[-1][0] < best_t:
            best_t = self._due[-1][0]
        if self._far and self._far[0][0] < best_t:
            best_t = self._far[0][0]
        if self._wheel_count:
            # Bucket order refines time order, so the lowest occupied
            # bucket index holds the wheel's minimum.
            bucket = self._wheel[self._wheel_occ[0] & _WHEEL_MASK]
            t = min(bucket)[0]
            if t < best_t:
                best_t = t
        return best_t

    def step(self) -> None:
        """Process the single next event in the queue."""
        entry = self._pop_next()
        if entry is None:
            raise SimulationError("no scheduled events")
        self._now = entry[0]
        event = entry[2]
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # A failure nobody waited on: surface it rather than losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers; its value is returned).
        """
        stop_at = float("inf")
        stop_at_given = False
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_callback)
            elif stop_event.triggered:
                return stop_event._value if stop_event._ok else None
        else:
            stop_at = float(until)
            stop_at_given = True
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )

        try:
            if self._profile is None:
                self._run_fast(stop_at)
            else:
                self._run_profiled(stop_at)
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run() finished with no remaining events, but the 'until' "
                "event was never triggered"
            )
        if stop_event is None and stop_at_given:
            self._now = stop_at
        return None

    def _run_fast(self, stop_at: float) -> None:
        """The hot loop: :meth:`_pop_next` + :meth:`step` fused and inlined.

        Containers are cached as locals and only ever mutated in place
        (never rebound), so the cache stays valid across callbacks that
        schedule new events.  Scalar cursor state lives on ``self``
        because callbacks move it.
        """
        nowq = self._nowq
        due = self._due
        far = self._far
        tpool = self._timeout_pool
        epool = self._event_pool
        heappop = heapq.heappop
        getrefcount = _getrefcount
        reclaim_refs = _RECLAIM_REFS
        while True:
            # Candidate selection: pick the lexicographic minimum of the
            # nowq / due / far heads, then give the wheel a chance iff
            # its cursor lower bound does not exceed that candidate (the
            # cached ``_wheel_lb`` makes that one compare, not a call).
            # The lb comparison is required even when ``due`` is
            # populated: the bucket index guard only enforces the lower
            # bound, so float edges can file an entry one bucket early
            # and flushing with the candidate restores exact (t, seq)
            # order.
            if due:
                best = due[-1]
                src = 2
                if nowq and nowq[0] < best:
                    best = nowq[0]
                    src = 1
                if far and far[0] < best:
                    best = far[0]
                    src = 3
                if self._wheel_count and self._wheel_lb <= best[0]:
                    flushed = self._flush_wheel(best)
                    if flushed is not best:
                        best = flushed
                        src = 2
            elif nowq:
                best = nowq[0]
                src = 1
                if far and far[0] < best:
                    best = far[0]
                    src = 3
                if self._wheel_count and self._wheel_lb <= best[0]:
                    flushed = self._flush_wheel(best)
                    if flushed is not best:
                        best = flushed
                        src = 2
            else:
                best = far[0] if far else None
                src = 3
                if self._wheel_count:
                    flushed = self._flush_wheel(best)
                    if flushed is not best:
                        best = flushed
                        src = 2
                if best is None:
                    return
            t = best[0]
            if t > stop_at:
                return
            if src == 2:
                due.pop()
            elif src == 1:
                nowq.popleft()
            else:
                heappop(far)
            self._now = t
            event = best[2]
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok:
                if not event.defused:
                    # A failure nobody waited on: surface it, don't drop it.
                    raise event._value
            elif getrefcount(event) == reclaim_refs:
                # Provably unreferenced outside this loop (the count
                # mirrors _measure_reclaim_refs): recycle exact Timeout /
                # Event instances, reusing the cleared callbacks list so
                # the pooled constructor skips that allocation too.
                cls = event.__class__
                if cls is Timeout:
                    if len(tpool) < _TIMEOUT_POOL_CAP:
                        callbacks.clear()
                        event.callbacks = callbacks
                        tpool.append(event)
                elif cls is Event:
                    if len(epool) < _TIMEOUT_POOL_CAP:
                        callbacks.clear()
                        event.callbacks = callbacks
                        epool.append(event)

    def _run_profiled(self, stop_at: float) -> None:
        """Instrumented run loop: per-event-type count/time accounting.

        Uses the injected timer (the sim layer never reads wall clocks
        itself) and skips timeout pooling so the recorded costs reflect
        the allocation behavior the breakdown is meant to expose.
        """
        prof = self._profile
        timer = prof["timer"]
        events = prof["events"]
        while True:
            entry = self._pop_next(stop_at)
            if entry is None:
                return
            self._now = entry[0]
            event = entry[2]
            callbacks, event.callbacks = event.callbacks, None
            start = timer()
            for callback in callbacks:
                callback(event)
            elapsed = timer() - start
            key = type(event).__name__
            stats = events.get(key)
            if stats is None:
                events[key] = [1, elapsed]
            else:
                stats[0] += 1
                stats[1] += elapsed
            if not event._ok and not event.defused:
                raise event._value

    # -- profiling ------------------------------------------------------
    def enable_profile(self, timer: Callable[[], int]) -> None:
        """Turn on kernel profiling for subsequent :meth:`run` calls.

        ``timer`` is a nanosecond counter (e.g. ``time.perf_counter_ns``)
        injected by the host-side caller — the simulated layer does not
        read wall clocks itself.  Collects a per-event-type count/time
        breakdown and a timeout-delay histogram (the input that sized
        the timer wheel); read the result with :meth:`profile_report`.
        """
        self._profile = {
            "timer": timer,
            "events": {},
            "delays": [0] * (len(_DELAY_BIN_EDGES) + 1),
        }
        # Profiled runs dispatch through _run_profiled/_pop_next, which
        # never reclaim events, so draining the pools here guarantees
        # the pooled fast path in timeout() (which skips the profile
        # delay-histogram hook) stays cold while profiling.
        del self._timeout_pool[:]
        del self._event_pool[:]

    def _record_delay(self, delay: float) -> None:
        bins = self._profile["delays"]
        for i, edge in enumerate(_DELAY_BIN_EDGES):
            if delay < edge:
                bins[i] += 1
                return
        bins[-1] += 1

    def profile_report(self) -> Dict[str, Any]:
        """Snapshot of collected profile data as plain dicts."""
        prof = self._profile
        if prof is None:
            raise SimulationError("profiling is not enabled (call enable_profile)")
        event_types = {
            name: {"count": count, "total_ns": total_ns}
            for name, (count, total_ns) in sorted(prof["events"].items())
        }
        delay_bins = []
        lower = 0.0
        for edge, count in zip(_DELAY_BIN_EDGES, prof["delays"]):
            delay_bins.append({"ge_s": lower, "lt_s": edge, "count": count})
            lower = edge
        delay_bins.append({"ge_s": lower, "lt_s": None, "count": prof["delays"][-1]})
        return {"event_types": event_types, "timeout_delays": delay_bins}

    def _stop_callback(self, event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={self._pending_count()}>"
