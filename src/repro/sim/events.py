"""Composite events: wait for *all* or *any* of a set of events.

These mirror SimPy's condition events.  ``AllOf`` succeeds when every
constituent event has succeeded; ``AnyOf`` when at least one has.  Either
fails as soon as any constituent fails, propagating the exception.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from .core import Environment, Event

__all__ = ["Condition", "AllOf", "AnyOf"]


class Condition(Event):
    """An event triggered by a predicate over constituent events.

    The value of a condition is a dict mapping each *triggered* constituent
    event to its value, in trigger order, so callers can see exactly which
    events fired (useful with :class:`AnyOf`).
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: Environment,
        evaluate: Callable[[List[Event], int], bool],
        events: List[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.callbacks is None:
                # Already processed.
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> Dict[Event, Any]:
        # Only *processed* events count: a Timeout carries its value from
        # creation, so "triggered" alone would leak future events into the
        # result of an AnyOf that fired early.
        return {
            e: e.value
            for e in self._events
            if e.processed and e.triggered and e.ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Succeeds when every event in ``events`` has succeeded."""

    __slots__ = ()

    def __init__(self, env: Environment, events: List[Event]):
        super().__init__(env, lambda evts, count: count == len(evts), events)


class AnyOf(Condition):
    """Succeeds as soon as one event in ``events`` has succeeded."""

    __slots__ = ()

    def __init__(self, env: Environment, events: List[Event]):
        super().__init__(env, lambda evts, count: count >= 1, events)
