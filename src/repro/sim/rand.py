"""Deterministic random-number streams for the simulation.

Every stochastic component (storage latency jitter, cold starts, data
generation) draws from its own named stream so that adding a component, or
reordering draws inside one, never perturbs the others.  Streams are
derived from a single experiment seed via ``numpy.random.SeedSequence``
spawning, which guarantees independence.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of named, independent RNG streams under one master seed."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The same (seed, name) pair always yields the same stream, and
        distinct names yield statistically independent streams.
        """
        if name not in self._streams:
            # Derive a child seed from the master seed and a stable hash of
            # the name.  zlib.crc32 is deterministic across processes
            # (unlike hash()).
            child = np.random.SeedSequence([self.seed, zlib.crc32(name.encode())])
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fork(self, salt: int) -> "RandomStreams":
        """A new independent registry, e.g. for a repeated trial."""
        return RandomStreams(seed=zlib.crc32(f"{self.seed}:{salt}".encode()))

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
