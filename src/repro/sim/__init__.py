"""Deterministic discrete-event simulation kernel.

This subpackage is the substrate everything else runs on: a process-based
DES engine (:mod:`~repro.sim.core`), composite events
(:mod:`~repro.sim.events`), shared resources and buffers
(:mod:`~repro.sim.resources`), independent seeded RNG streams
(:mod:`~repro.sim.rand`) and trace collection (:mod:`~repro.sim.monitor`).
"""

from .core import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .events import AllOf, AnyOf, Condition
from .monitor import Monitor, Series, TraceEntry
from .rand import RandomStreams
from .resources import Container, Request, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "Condition",
    "AllOf",
    "AnyOf",
    "Resource",
    "Request",
    "Store",
    "Container",
    "RandomStreams",
    "Monitor",
    "Series",
    "TraceEntry",
]
