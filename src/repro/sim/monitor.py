"""Time-series trace collection for simulation runs.

A :class:`Monitor` records ``(sim_time, value)`` samples under named
series.  Experiment harnesses use it to collect loss curves, worker
counts, queue depths and cost over simulated time, and to compute summary
statistics without every component re-implementing bookkeeping.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Monitor", "Series", "TraceEntry"]

#: one traced ``record()`` call: (ordinal, series name, sim time, value)
TraceEntry = Tuple[int, str, float, float]

#: sentinel distinguishing "no default given" from ``default=None`` in
#: :meth:`Series.value_at`
_NO_SAMPLE = object()


@dataclass
class Series:
    """One named time series of (time, value) samples."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time {time} precedes last "
                f"sample at {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def last(self) -> Optional[Tuple[float, float]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.mean(self.values))

    def value_at(self, time: float, default=_NO_SAMPLE) -> float:
        """Step-function lookup: latest value recorded at or before ``time``.

        The series is a left-closed step function: a sample at exactly
        ``time`` counts ("at or before"), and the value holds until the
        next sample.  Queries *before the first sample* (including any
        query on an empty series) have no defined value: they raise
        :class:`ValueError` unless ``default`` is given, in which case
        ``default`` is returned as-is (``None`` is a valid default).
        """
        times = np.asarray(self.times)
        idx = int(np.searchsorted(times, time, side="right")) - 1
        if idx < 0:
            if default is not _NO_SAMPLE:
                return default
            raise ValueError(f"series {self.name!r} has no sample before {time}")
        return self.values[idx]

    def time_to_reach(self, threshold: float, descending: bool = True) -> Optional[float]:
        """First time the series crosses ``threshold``.

        With ``descending=True`` (the loss-curve convention), returns the
        first time a value <= threshold is recorded; otherwise >=.
        """
        for t, v in zip(self.times, self.values):
            if (v <= threshold) if descending else (v >= threshold):
                return t
        return None

    def integral(self) -> float:
        """Trapezoidal integral of the series over its time span."""
        if len(self.times) < 2:
            return 0.0
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.values, self.times))


class Monitor:
    """A registry of named series attached to a simulation run.

    With tracing enabled (``Monitor(trace=True)`` or
    :meth:`enable_trace`), every ``record()`` call is also appended — in
    call order, across all series — to an event trace that
    :meth:`trace_digest` hashes bit-exactly.  Two runs of the same seed
    must produce identical digests; the determinism oracle in
    :mod:`repro.analysis.determinism` is built on this hook.
    """

    def __init__(self, trace: bool = False):
        self._series: Dict[str, Series] = {}
        self._trace: Optional[List[TraceEntry]] = [] if trace else None

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).append(time, value)
        if self._trace is not None:
            self._trace.append((len(self._trace), name, float(time), float(value)))

    # -- trace hook ------------------------------------------------------
    def enable_trace(self) -> None:
        """Start tracing ``record()`` calls (idempotent)."""
        if self._trace is None:
            self._trace = []

    @property
    def tracing(self) -> bool:
        return self._trace is not None

    @property
    def trace(self) -> Sequence[TraceEntry]:
        """The ordered trace so far (empty when tracing is off)."""
        return tuple(self._trace) if self._trace is not None else ()

    def trace_digest(self) -> str:
        """SHA-256 over the trace, bit-exact in the float values.

        Floats are serialised with ``float.hex()`` so two runs only hash
        equal when every recorded sample is *bit*-identical — a formatted
        decimal would paper over last-ulp divergence, which is exactly
        what the determinism oracle exists to catch.
        """
        digest = hashlib.sha256()
        for ordinal, name, time, value in self.trace:
            digest.update(
                f"{ordinal}|{name}|{float(time).hex()}|{float(value).hex()}\n".encode()
            )
        return digest.hexdigest()

    def series(self, name: str) -> Series:
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def names(self) -> Sequence[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(s)}]" for n, s in sorted(self._series.items()))
        return f"<Monitor {parts}>"
