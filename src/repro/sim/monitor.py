"""Time-series trace collection for simulation runs.

A :class:`Monitor` records ``(sim_time, value)`` samples under named
series.  Experiment harnesses use it to collect loss curves, worker
counts, queue depths and cost over simulated time, and to compute summary
statistics without every component re-implementing bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Monitor", "Series"]


@dataclass
class Series:
    """One named time series of (time, value) samples."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time {time} precedes last "
                f"sample at {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def last(self) -> Optional[Tuple[float, float]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.mean(self.values))

    def value_at(self, time: float) -> float:
        """Step-function lookup: latest value recorded at or before ``time``."""
        times = np.asarray(self.times)
        idx = int(np.searchsorted(times, time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"series {self.name!r} has no sample before {time}")
        return self.values[idx]

    def time_to_reach(self, threshold: float, descending: bool = True) -> Optional[float]:
        """First time the series crosses ``threshold``.

        With ``descending=True`` (the loss-curve convention), returns the
        first time a value <= threshold is recorded; otherwise >=.
        """
        for t, v in zip(self.times, self.values):
            if (v <= threshold) if descending else (v >= threshold):
                return t
        return None

    def integral(self) -> float:
        """Trapezoidal integral of the series over its time span."""
        if len(self.times) < 2:
            return 0.0
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.values, self.times))


class Monitor:
    """A registry of named series attached to a simulation run."""

    def __init__(self):
        self._series: Dict[str, Series] = {}

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).append(time, value)

    def series(self, name: str) -> Series:
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def names(self) -> Sequence[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(s)}]" for n, s in sorted(self._series.items()))
        return f"<Monitor {parts}>"
