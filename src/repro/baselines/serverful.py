"""The serverful baseline: distributed PyTorch-like DDP training on VMs.

Models the paper's comparison system (§6.1): PyTorch v1.8.1 on CPU across
B1.4x8 instances, one rank per core, Gloo **ring all-reduce** for gradient
exchange, mini-batches downloaded from the object store.  Step semantics
are synchronous data parallelism: every rank computes a gradient on its
own mini-batch, gradients are averaged with an all-reduce, and every
replica applies the same optimizer step (replicas stay bit-identical).

Simulated-time model per step (see :class:`repro.calibration.Calibration`):
dense-kernel compute + per-batch sparse-handling overhead + a dense
optimizer pass over the full tensors + the ring all-reduce wall time with
per-VM NIC sharing.  The arithmetic itself is exact numpy, so the loss
trajectory is real — with one rank and the same seed it is bit-identical
to an MLLess worker's (the paper's sanity check).

Following the paper's conservative accounting, VM leases are opened at
*compute start* (boot time is excluded from both the clock and the bill).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from ..calibration import Calibration, DEFAULT_CALIBRATION
from ..core.history import RunResult
from ..ml.data.dataset import Dataset
from ..ml.models.base import Model
from ..ml.optim.base import Optimizer
from ..ml.parameters import ModelUpdate
from ..pricing import CostMeter, PRICING
from ..sim import Environment, Monitor, RandomStreams
from ..storage import ObjectStore
from ..vm import ring_allreduce_time, tree_allreduce_time
from ..vm.instance import VMInstance

__all__ = ["ServerfulConfig", "ServerfulTrainer"]

import numpy as np


@dataclass
class ServerfulConfig:
    """One serverful training run."""

    model: Model
    make_optimizer: Callable[[], Optimizer]
    dataset: Dataset
    n_ranks: int
    target_loss: Optional[float] = None
    max_steps: int = 5000
    max_time_s: float = 3600.0
    seed: int = 0
    calibration: Calibration = DEFAULT_CALIBRATION
    instance_type: str = "B1.4x8"
    collective: str = "ring"

    def __post_init__(self):
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.collective not in ("ring", "tree"):
            raise ValueError(f"unknown collective {self.collective!r}")
        if self.n_ranks > len(self.dataset):
            raise ValueError(
                f"{self.n_ranks} ranks but only {len(self.dataset)} batches"
            )

    @property
    def ranks_per_vm(self) -> int:
        return PRICING[self.instance_type].vcpus

    @property
    def n_vms(self) -> int:
        return math.ceil(self.n_ranks / self.ranks_per_vm)


class ServerfulTrainer:
    """Runs one synchronous data-parallel job on a simulated VM cluster."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        cos: ObjectStore,
        meter: Optional[CostMeter] = None,
        bucket: str = "training-data",
    ):
        self.env = env
        self.streams = streams
        self.cos = cos
        self.meter = meter if meter is not None else CostMeter()
        self.bucket = bucket
        self.result: Optional[RunResult] = None

    def run(self, config: ServerfulConfig) -> RunResult:
        done = self.env.process(self.run_process(config), name="serverful")
        self.env.run(until=done)
        if not done.ok:
            raise done.value
        assert self.result is not None
        return self.result

    def run_process(self, config: ServerfulConfig) -> Generator:
        monitor = Monitor()
        batch_keys = config.dataset.stage(self.cos, self.bucket)
        partitions = config.dataset.partition(config.n_ranks)

        # Boot the cluster; leases open only once compute starts.
        instances = [
            VMInstance(self.env, self.streams, config.instance_type, f"vm-{i}")
            for i in range(config.n_vms)
        ]
        boot_start = self.env.now
        boots = [self.env.process(vm.boot()) for vm in instances]
        yield self.env.all_of(boots)
        setup_duration = self.env.now - boot_start
        leases = [
            self.meter.lease(config.instance_type, self.env.now)
            for _ in instances
        ]

        started_at = self.env.now
        monitor.record("workers", started_at, config.n_ranks)
        rng = np.random.default_rng(config.seed)
        params = config.model.init_params(rng)
        optimizer = config.make_optimizer()
        calib = config.calibration
        nic_bps = instances[0].itype.nic_bps
        effective_bw = nic_bps / min(config.ranks_per_vm, config.n_ranks)
        allreduce_time = (
            ring_allreduce_time if config.collective == "ring" else tree_allreduce_time
        )

        converged = False
        final_loss = None
        last_barrier = self.env.now
        t = 0
        while t < config.max_steps:
            t += 1
            # Parallel mini-batch fetches (one per rank) from the object store.
            fetches = [
                self.env.process(
                    self.cos.get(
                        self.bucket,
                        batch_keys[partitions[r][(t - 1) % len(partitions[r])]],
                    )
                )
                for r in range(config.n_ranks)
            ]
            fetched = yield self.env.all_of(fetches)
            batches = [fetched[f] for f in fetches]

            # Per-rank dense compute: ranks run on separate cores in
            # parallel, so wall time is one rank's step time.
            slowest = max(
                calib.serverful_step_seconds(
                    config.model.dense_step_flops(b),
                    config.model.sparse_entries(b),
                    params.n_parameters,
                    cores=1,
                )
                for b in batches
            )
            yield self.env.timeout(slowest)

            losses: List[float] = []
            grads = []
            for b in batches:
                loss, grad = config.model.gradient(params, b)
                losses.append(loss)
                grads.append(grad)
            # n-way merge: bit-identical to the pairwise fold (both sum
            # each index's contributions in rank order from zero).
            avg_grad = ModelUpdate.merge_many(grads).scale(1.0 / config.n_ranks)

            # Gradient all-reduce over the full dense tensors (what a dense
            # framework moves), with ranks sharing each VM's NIC.
            if config.n_ranks > 1:
                yield self.env.timeout(
                    allreduce_time(
                        config.model.dense_gradient_bytes(),
                        config.n_ranks,
                        effective_bw,
                    )
                )

            update = optimizer.step(params, avg_grad, t)
            params.apply(update)

            now = self.env.now
            mean_loss = float(np.mean(losses))
            monitor.record("loss", now, mean_loss)
            monitor.record("loss_by_step", t, mean_loss)
            monitor.record("step_duration", t, now - last_barrier)
            last_barrier = now
            final_loss = mean_loss

            if config.target_loss is not None and mean_loss <= config.target_loss:
                converged = True
                break
            if now - started_at >= config.max_time_s:
                break

        finished_at = self.env.now
        for lease in leases:
            self.meter.release(lease, finished_at)

        self.result = RunResult(
            system="serverful",
            monitor=monitor,
            meter=self.meter,
            started_at=started_at,
            finished_at=finished_at,
            setup_duration=setup_duration,
            converged=converged,
            final_loss=final_loss,
            total_steps=t,
        )
        return self.result
