"""The PyWren-IBM baseline: non-specialized serverless ML training.

Per the paper (§6.1): "we leverage the map phase to process mini-batches
in parallel and reduce tasks to aggregate the local updates.  All
communication is done through IBM COS, including the sharing of updates,
to keep its pure serverless, general-purpose architecture."

Every training iteration is therefore one map-reduce job:

* ``P`` map activations each download the **full current model** plus one
  mini-batch from the object store, compute a gradient at the generic
  pure-Python rate, and write it back to the object store;
* one reduce activation downloads the ``P`` gradients, averages them, runs
  the optimizer, and writes the new model to the object store.

The two structural causes of its Fig. 6 slowness — slow-storage-only
communication and no specialization for iterative ML — fall straight out
of this construction; nothing is artificially penalized beyond the
calibrated generic-runtime constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

import numpy as np

from ..calibration import Calibration, DEFAULT_CALIBRATION
from ..core.history import RunResult
from ..faas import FaaSPlatform, FunctionSpec, InvocationContext
from ..ml.data.dataset import Dataset
from ..ml.models.base import Model
from ..ml.optim.base import Optimizer
from ..pricing import CostMeter
from ..sim import Environment, Monitor
from ..storage import ObjectStore

__all__ = ["PyWrenMLConfig", "PyWrenMLTrainer"]

_STATE_BUCKET = "pywren-ml-state"


@dataclass
class PyWrenMLConfig:
    """One PyWren-style training run."""

    model: Model
    make_optimizer: Callable[[], Optimizer]
    dataset: Dataset
    n_workers: int
    target_loss: Optional[float] = None
    max_steps: int = 2000
    max_time_s: float = 3600.0
    seed: int = 0
    calibration: Calibration = DEFAULT_CALIBRATION
    memory_mb: int = 2048

    def __post_init__(self):
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.n_workers > len(self.dataset):
            raise ValueError(
                f"{self.n_workers} workers but only {len(self.dataset)} batches"
            )


def _densify(grad, params) -> Dict[str, np.ndarray]:
    """A non-specialized framework serializes gradients as dense tensors."""
    dense: Dict[str, np.ndarray] = {}
    for name, _tensor in params:
        buf = np.zeros(params[name].shape)
        if name in grad:
            grad[name].apply_to(buf)
        dense[name] = buf
    return dense


def _grad_map_handler(ctx: InvocationContext, payload: Dict[str, Any]) -> Generator:
    """Map task: model + batch from COS -> dense gradient to COS."""
    trainer: "PyWrenMLTrainer" = payload["trainer"]
    config: PyWrenMLConfig = payload["config"]
    calib = config.calibration
    params = yield from trainer.cos.get(_STATE_BUCKET, payload["model_key"])
    batch = yield from trainer.cos.get(trainer.bucket, payload["batch_key"])
    yield from ctx.compute(
        calib.pywren_task_seconds(config.model.sparse_step_flops(batch))
    )
    loss, grad = config.model.gradient(params, batch)
    yield from trainer.cos.put(
        _STATE_BUCKET, payload["grad_key"], _densify(grad, params)
    )
    return loss


def _grad_reduce_handler(
    ctx: InvocationContext, payload: Dict[str, Any]
) -> Generator:
    """Reduce task: gradients from COS -> averaged step -> new model to COS."""
    trainer: "PyWrenMLTrainer" = payload["trainer"]
    config: PyWrenMLConfig = payload["config"]
    calib = config.calibration
    params = yield from trainer.cos.get(_STATE_BUCKET, payload["model_key"])
    dense_sum: Dict[str, np.ndarray] = {}
    for key in payload["grad_keys"]:
        dense = yield from trainer.cos.get(_STATE_BUCKET, key)
        for name, arr in dense.items():
            if name in dense_sum:
                dense_sum[name] = dense_sum[name] + arr
            else:
                dense_sum[name] = arr
    n_params = sum(a.size for a in dense_sum.values())
    yield from ctx.compute(calib.pywren_task_seconds(2.0 * n_params))
    scale = 1.0 / len(payload["grad_keys"])
    from ..ml.parameters import ModelUpdate
    from ..ml.sparse import SparseDelta

    avg = ModelUpdate(
        {
            name: SparseDelta.from_dense(arr * scale)
            for name, arr in dense_sum.items()
        }
    )
    optimizer: Optimizer = payload["optimizer"]
    update = optimizer.step(params, avg, payload["step"])
    params.apply(update)
    yield from trainer.cos.put(_STATE_BUCKET, payload["out_model_key"], params)
    return None


class PyWrenMLTrainer:
    """Iterative map-reduce training driver."""

    def __init__(
        self,
        env: Environment,
        platform: FaaSPlatform,
        cos: ObjectStore,
        meter: Optional[CostMeter] = None,
        bucket: str = "training-data",
    ):
        self.env = env
        self.platform = platform
        self.cos = cos
        self.bucket = bucket
        self.meter = meter if meter is not None else CostMeter()
        if self.meter.faas is None:
            self.meter.faas = platform.billing
        self.cos.create_bucket(_STATE_BUCKET)
        self.result: Optional[RunResult] = None

    def run(self, config: PyWrenMLConfig) -> RunResult:
        done = self.env.process(self.run_process(config), name="pywren-ml")
        self.env.run(until=done)
        if not done.ok:
            raise done.value
        assert self.result is not None
        return self.result

    def run_process(self, config: PyWrenMLConfig) -> Generator:
        if not self.platform.is_registered("pywren-ml-map"):
            self.platform.register(
                FunctionSpec(
                    "pywren-ml-map", _grad_map_handler, memory_mb=config.memory_mb
                )
            )
            self.platform.register(
                FunctionSpec(
                    "pywren-ml-reduce",
                    _grad_reduce_handler,
                    memory_mb=config.memory_mb,
                )
            )

        monitor = Monitor()
        batch_keys = config.dataset.stage(self.cos, self.bucket)
        partitions = config.dataset.partition(config.n_workers)

        rng = np.random.default_rng(config.seed)
        params = config.model.init_params(rng)
        # The driver lives outside the data center; it seeds the initial
        # model into the object store once (charged on first map GET).
        model_key = "model/step-00000"
        self.cos.preload(_STATE_BUCKET, model_key, params)
        optimizer = config.make_optimizer()

        started_at = self.env.now
        monitor.record("workers", started_at, config.n_workers)
        converged = False
        final_loss = None
        last_barrier = self.env.now

        t = 0
        while t < config.max_steps:
            t += 1
            map_acts = []
            for r in range(config.n_workers):
                batch_idx = partitions[r][(t - 1) % len(partitions[r])]
                payload = {
                    "trainer": self,
                    "config": config,
                    "model_key": model_key,
                    "batch_key": batch_keys[batch_idx],
                    "grad_key": f"grad/step-{t:05d}/rank-{r}",
                }
                map_acts.append(self.platform.invoke("pywren-ml-map", payload))
            yield self.env.all_of([a.process for a in map_acts])
            losses = [a.result() for a in map_acts]

            out_model_key = f"model/step-{t:05d}"
            reduce_payload = {
                "trainer": self,
                "config": config,
                "model_key": model_key,
                "grad_keys": [
                    f"grad/step-{t:05d}/rank-{r}" for r in range(config.n_workers)
                ],
                "out_model_key": out_model_key,
                "optimizer": optimizer,
                "step": t,
            }
            reduce_act = self.platform.invoke("pywren-ml-reduce", reduce_payload)
            yield reduce_act.process
            reduce_act.result()  # raise on failure
            model_key = out_model_key
            params = self.cos.peek(_STATE_BUCKET, model_key)

            now = self.env.now
            mean_loss = float(np.mean(losses))
            monitor.record("loss", now, mean_loss)
            monitor.record("loss_by_step", t, mean_loss)
            monitor.record("step_duration", t, now - last_barrier)
            last_barrier = now
            final_loss = mean_loss

            if config.target_loss is not None and mean_loss <= config.target_loss:
                converged = True
                break
            if now - started_at >= config.max_time_s:
                break

        self.result = RunResult(
            system="pywren",
            monitor=monitor,
            meter=self.meter,
            started_at=started_at,
            finished_at=self.env.now,
            converged=converged,
            final_loss=final_loss,
            total_steps=t,
        )
        return self.result
