"""Baseline systems: serverful (PyTorch-like) and PyWren-style trainers."""

from .pywren_ml import PyWrenMLConfig, PyWrenMLTrainer
from .serverful import ServerfulConfig, ServerfulTrainer

__all__ = [
    "ServerfulConfig",
    "ServerfulTrainer",
    "PyWrenMLConfig",
    "PyWrenMLTrainer",
]
