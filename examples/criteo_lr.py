"""Sparse logistic regression on Criteo-like CTR data (Table 1, row 1).

Trains the paper's LR workload with Adam under BSP and under ISP at
several significance thresholds, reproducing in miniature the Fig. 4a
finding: the sparsity of CTR data already filters communication, so the
significance filter adds only a modest improvement for LR.

    python examples/criteo_lr.py
"""

from repro import JobConfig, run_mlless
from repro.ml.data import CriteoSpec, criteo_like
from repro.ml.models import LogisticRegression
from repro.ml.optim import Adam


def main():
    spec = CriteoSpec(
        n_samples=24_000, n_hash_buckets=20_000, batch_size=500
    )
    dataset = criteo_like(spec, seed=1)
    n_features = spec.n_numeric + spec.n_hash_buckets
    print(f"dataset: {dataset} ({n_features} hashed features)")
    print(f"batch density: {dataset[0].X.density:.4f}\n")

    baseline_time = None
    print(f"{'v':>5} {'exec (s)':>9} {'steps':>6} {'bce':>7} {'norm':>6}")
    for v in (0.0, 0.3, 0.7):
        config = JobConfig(
            model=LogisticRegression(n_features, l2=1e-5),
            make_optimizer=lambda: Adam(lr=0.02),
            dataset=dataset,
            n_workers=24,
            significance_v=v,
            target_loss=0.45,
            max_steps=600,
            seed=7,
        )
        result = run_mlless(config)
        if v == 0.0:
            baseline_time = result.exec_time
        print(
            f"{v:>5.1f} {result.exec_time:>9.1f} {result.total_steps:>6d} "
            f"{result.final_loss:>7.4f} "
            f"{result.exec_time / baseline_time:>6.2f}"
        )
    print("\n(norm = execution time normalized to the BSP run, as in Fig. 4a)")


if __name__ == "__main__":
    main()
