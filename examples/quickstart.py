"""Quickstart: train a matrix-factorization model with MLLess.

Runs a small PMF job on synthetic MovieLens-like data across 8 serverless
workers with the ISP significance filter enabled, then prints the loss
trajectory, the execution time, and the itemized bill.

    python examples/quickstart.py
    python examples/quickstart.py --backend local
    python examples/quickstart.py --backend procs
    python examples/quickstart.py --faults chaos
    python examples/quickstart.py --report /tmp/quickstart.json
    python examples/quickstart.py --trace /tmp/quickstart-trace.json

``--backend local`` runs the same training logic for real: one thread
per worker, real queues, wall-clock time — no simulation, no bill.
``--backend procs`` goes one further: one OS *process* per role with
gradients in shared memory, so workers use real cores in parallel.

The ``--trace`` file is Chrome trace-event JSON: drag it into
https://ui.perfetto.dev to see every activation, step, barrier and
storage request on the simulated timeline.  The lossless dump lands next
to it at ``<PATH>.jsonl`` for ``python -m repro.trace summary/cost``.
"""

import argparse
import json

from repro import FAULT_PROFILES, JobConfig, run_mlless
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD


def build_parser():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--faults", choices=["off"] + sorted(FAULT_PROFILES), default="off",
        help="inject a named fault profile (seed-deterministic)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a JSON run report (summary + extras) to PATH",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace: Chrome trace JSON at PATH (Perfetto), "
        "lossless JSONL at PATH.jsonl",
    )
    parser.add_argument(
        "--backend", choices=["sim", "local", "procs"], default="sim",
        help="execution backend: 'sim' = discrete-event simulation "
        "(default), 'local' = real threads + wall-clock time, "
        "'procs' = one OS process per role + shared-memory gradients",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    faults = None if args.faults == "off" else FAULT_PROFILES[args.faults]
    if args.backend != "sim" and faults is not None:
        raise SystemExit(
            f"--backend {args.backend} cannot inject faults (sim-only)"
        )
    if args.backend != "sim" and args.trace is not None:
        raise SystemExit(f"--backend {args.backend} does not support --trace")

    spec = MovieLensSpec(
        n_users=500, n_movies=400, n_ratings=40_000, batch_size=500
    )
    dataset = movielens_like(spec, seed=1)
    print(f"dataset: {dataset}")

    config = JobConfig(
        model=PMF(spec.n_users, spec.n_movies, rank=8, l2=0.02,
                  rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(
            lr=InverseSqrtLR(8.0), momentum=0.9, nesterov=True
        ),
        dataset=dataset,
        n_workers=8,
        significance_v=0.7,     # the ISP significance filter
        target_loss=0.70,       # stop at RMSE 0.70
        max_steps=500,
        seed=42,
        faults=faults,
    )
    tracer = None
    if args.trace is not None:
        from repro.trace import Tracer

        tracer = Tracer()
    result = run_mlless(config, tracer=tracer, backend=args.backend)

    seconds_kind = "simulated" if args.backend == "sim" else "real wall-clock"
    print(f"\nconverged: {result.converged} in {result.total_steps} steps")
    print(f"execution time: {result.exec_time:.1f} {seconds_kind} seconds")
    print(f"mean step duration: {result.mean_step_duration() * 1000:.0f} ms")

    times, losses = result.losses()
    print("\nloss trajectory (every ~10th step):")
    for i in range(0, len(times), max(1, len(times) // 10)):
        print(f"  t={times[i] - result.started_at:7.2f}s  rmse={losses[i]:.4f}")

    if args.backend != "sim":
        print(f"\nno bill: the {args.backend} backend runs on your own "
              "machine (cost metering is sim-only)")
    else:
        print(f"\ntotal cost: ${result.total_cost:.5f}")
        for component, cost in sorted(result.meter.breakdown().items()):
            print(f"  {component:<10s} ${cost:.5f}")
        print(f"Perf/$: {result.perf_per_dollar:,.0f}")

    if faults is not None:
        injected = int(result.extras.get("faults_injected", 0))
        recovered = int(result.extras.get("faults_recovered", 0))
        print(f"faults injected: {injected}, recoveries: {recovered}")

    trace_section = None
    if tracer is not None:
        from repro.experiments.report import render_table
        from repro.trace import CostLedger
        from repro.trace_cli import write_run_trace

        billing = result.meter.faas
        ledger = CostLedger.from_trace(tracer, billing)
        print()
        print(render_table(ledger.category_table(),
                           "FaaS cost attribution by category"))
        reconciled = ledger.reconcile()
        print(f"attributed: {100 * reconciled['attributed_fraction']:.2f}% "
              f"of billed GB-s (ledger error "
              f"{reconciled['abs_error']:.2e})")
        chrome_path, jsonl_path = write_run_trace(
            tracer, args.trace, billing=billing
        )
        print(f"trace written to {chrome_path} "
              f"(open in https://ui.perfetto.dev); JSONL at {jsonl_path}")
        trace_section = {
            "chrome_trace": chrome_path,
            "jsonl": jsonl_path,
            "attributed_fraction": reconciled["attributed_fraction"],
            "cost_by_category": {
                cat: round(entry["cost"], 10)
                for cat, entry in sorted(ledger.by_category().items())
            },
        }

    if args.report is not None:
        report = {
            "summary": result.summary(),
            "extras": {k: v for k, v in sorted(result.extras.items())},
            "backend": args.backend,
            "faults_profile": args.faults,
            "loss_trajectory": [
                [round(t - result.started_at, 6), loss]
                for t, loss in zip(times, losses)
            ],
            "cost_breakdown": {
                k: round(v, 8) for k, v in sorted(result.meter.breakdown().items())
            },
        }
        if trace_section is not None:
            report["trace"] = trace_section
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=float)
            fh.write("\n")
        print(f"report written to {args.report}")


if __name__ == "__main__":
    main()
