"""Quickstart: train a matrix-factorization model with MLLess.

Runs a small PMF job on synthetic MovieLens-like data across 8 serverless
workers with the ISP significance filter enabled, then prints the loss
trajectory, the execution time, and the itemized bill.

    python examples/quickstart.py
"""

from repro import JobConfig, run_mlless
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD


def main():
    spec = MovieLensSpec(
        n_users=500, n_movies=400, n_ratings=40_000, batch_size=500
    )
    dataset = movielens_like(spec, seed=1)
    print(f"dataset: {dataset}")

    config = JobConfig(
        model=PMF(spec.n_users, spec.n_movies, rank=8, l2=0.02,
                  rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(
            lr=InverseSqrtLR(8.0), momentum=0.9, nesterov=True
        ),
        dataset=dataset,
        n_workers=8,
        significance_v=0.7,     # the ISP significance filter
        target_loss=0.70,       # stop at RMSE 0.70
        max_steps=500,
        seed=42,
    )
    result = run_mlless(config)

    print(f"\nconverged: {result.converged} in {result.total_steps} steps")
    print(f"execution time: {result.exec_time:.1f} simulated seconds")
    print(f"mean step duration: {result.mean_step_duration() * 1000:.0f} ms")

    times, losses = result.losses()
    print("\nloss trajectory (every ~10th step):")
    for i in range(0, len(times), max(1, len(times) // 10)):
        print(f"  t={times[i] - result.started_at:7.2f}s  rmse={losses[i]:.4f}")

    print(f"\ntotal cost: ${result.total_cost:.5f}")
    for component, cost in sorted(result.meter.breakdown().items()):
        print(f"  {component:<10s} ${cost:.5f}")
    print(f"Perf/$: {result.perf_per_dollar:,.0f}")


if __name__ == "__main__":
    main()
