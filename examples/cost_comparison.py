"""FaaS vs IaaS cost-efficiency: the paper's headline question.

Trains the same PMF model to the same RMSE target with three systems —
MLLess (+ISP +auto-tuner), PyTorch-like serverful DDP on VMs, and a
PyWren-style map-reduce trainer — and compares execution time, cost, and
the loss reachable under fixed budgets (Figs. 6 and 7 in miniature).

    python examples/cost_comparison.py
"""

from repro import AutoTunerConfig, JobConfig, build_world, run_mlless
from repro.baselines import (
    PyWrenMLConfig,
    PyWrenMLTrainer,
    ServerfulConfig,
    ServerfulTrainer,
)
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD

TARGET = 0.70
SEED = 9


def model(spec):
    return PMF(spec.n_users, spec.n_movies, rank=12, l2=0.02, rating_offset=3.5)


def optimizer():
    return MomentumSGD(lr=InverseSqrtLR(12.0), momentum=0.9, nesterov=True)


def main():
    spec = MovieLensSpec(
        n_users=1_000, n_movies=1_500, n_ratings=80_000, batch_size=500
    )
    dataset = movielens_like(spec, seed=1)
    print(f"dataset: {dataset}, target RMSE {TARGET}\n")
    results = {}

    config = JobConfig(
        model=model(spec), make_optimizer=optimizer, dataset=dataset,
        n_workers=12, significance_v=0.7, target_loss=TARGET,
        max_steps=1000, seed=SEED,
        autotuner=AutoTunerConfig(enabled=True, epoch_s=5.0, delta_s=2.5),
    )
    results["MLLess + All"] = run_mlless(config)

    world = build_world(seed=SEED)
    serverful = ServerfulTrainer(world.env, world.streams, world.cos,
                                 meter=world.meter)
    results["PyTorch-like"] = serverful.run(
        ServerfulConfig(
            model=model(spec), make_optimizer=optimizer, dataset=dataset,
            n_ranks=12, target_loss=TARGET, max_steps=1000, seed=SEED,
        )
    )

    world = build_world(seed=SEED)
    pywren = PyWrenMLTrainer(world.env, world.platform, world.cos,
                             meter=world.meter)
    results["PyWren-like"] = pywren.run(
        PyWrenMLConfig(
            model=model(spec), make_optimizer=optimizer, dataset=dataset,
            n_workers=12, target_loss=TARGET, max_steps=30, seed=SEED,
        )
    )

    print(f"{'system':<14} {'exec (s)':>9} {'steps':>6} {'rmse':>7} "
          f"{'cost ($)':>9} {'converged':>10}")
    for name, r in results.items():
        print(f"{name:<14} {r.exec_time:>9.1f} {r.total_steps:>6d} "
              f"{r.final_loss:>7.4f} {r.total_cost:>9.5f} "
              f"{str(r.converged):>10}")

    mll = results["MLLess + All"]
    pt = results["PyTorch-like"]
    if mll.converged and pt.converged:
        print(f"\nMLLess is {pt.exec_time / mll.exec_time:.1f}x faster and "
              f"{pt.total_cost / mll.total_cost:.1f}x cheaper than the "
              f"serverful baseline (paper: ~15x / ~6.3x at full scale)")

    print("\nbest RMSE reachable under fixed budgets (Fig. 7):")
    budgets = [0.005, 0.01, 0.02, 0.05]
    header = "".join(f"{f'${b}':>10}" for b in budgets)
    print(f"{'system':<14}{header}")
    for name, r in results.items():
        cells = ""
        for budget in budgets:
            best = r.best_loss_within_budget(budget)
            cells += f"{'-' if best is None else f'{best:.3f}':>10}"
        print(f"{name:<14}{cells}")


if __name__ == "__main__":
    main()
