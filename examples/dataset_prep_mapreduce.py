"""Dataset preparation with PyWren-style map-reduce (§3.2).

The paper normalizes its datasets by chaining two serverless map-reduce
jobs: one computing per-feature min/max, one applying min-max scaling.
This example runs that exact pipeline on the simulated FaaS platform and
reports what it cost.

    python examples/dataset_prep_mapreduce.py
"""

from repro.experiments.common import build_world
from repro.mapreduce import PyWrenExecutor, normalize_via_mapreduce
from repro.ml.data import CriteoSpec, criteo_like


def main():
    spec = CriteoSpec(n_samples=8_000, n_hash_buckets=5_000, batch_size=500)
    dataset = criteo_like(spec, seed=3)
    print(f"dataset: {dataset} in {len(dataset)} mini-batches")

    world = build_world(seed=3)
    executor = PyWrenExecutor(world.platform, world.cos)

    job = world.env.process(
        normalize_via_mapreduce(executor, dataset, dense_cols=spec.n_numeric)
    )
    world.env.run(until=job)
    normalized, stats = job.value

    print(f"\nnormalized dataset: {normalized}")
    print("per-feature ranges of the numeric block (first 5):")
    for i in range(5):
        print(f"  feature {i}: [{stats.minimum[i]:.4f}, {stats.maximum[i]:.4f}]")

    sample = normalized[0]
    numeric = sample.X.data[sample.X.indices < spec.n_numeric]
    print(f"\nscaled numeric values now span "
          f"[{numeric.min():.3f}, {numeric.max():.3f}]")

    billing = world.platform.billing
    print(f"\nmap-reduce activations: {len(billing.records)} "
          f"({billing.total_gb_seconds():.1f} GB-s)")
    print(f"preparation cost: ${billing.total_cost():.5f} "
          f"in {world.env.now:.1f} simulated seconds")


if __name__ == "__main__":
    main()
