"""PMF on MovieLens-like data with the scale-in auto-tuner (§4.2).

Runs the same job with the tuner off and on, then prints the worker-pool
trajectory and the Perf/$ comparison — the Fig. 5 experiment in
miniature.  Watch the pool shrink after the learning curve passes its
knee.

    python examples/movielens_autotuner.py
"""

from repro import AutoTunerConfig, JobConfig, run_mlless
from repro.ml.data import MovieLensSpec, movielens_like
from repro.ml.models import PMF
from repro.ml.optim import InverseSqrtLR, MomentumSGD


def run(dataset, spec, autotune):
    config = JobConfig(
        model=PMF(spec.n_users, spec.n_movies, rank=12, l2=0.02,
                  rating_offset=3.5),
        make_optimizer=lambda: MomentumSGD(
            lr=InverseSqrtLR(12.0), momentum=0.9, nesterov=True
        ),
        dataset=dataset,
        n_workers=12,
        significance_v=0.7,
        # Deep target: the tuner only acts after the learning curve's
        # knee, so the run must continue well past it.
        target_loss=0.63,
        max_steps=800,
        seed=5,
        autotuner=AutoTunerConfig(
            enabled=autotune, epoch_s=4.0, delta_s=2.0, s_threshold=0.2,
            min_workers=3,
        ),
    )
    return run_mlless(config)


def main():
    spec = MovieLensSpec(
        n_users=1_000, n_movies=1_500, n_ratings=80_000, batch_size=500
    )
    dataset = movielens_like(spec, seed=1)
    print(f"dataset: {dataset}\n")

    off = run(dataset, spec, autotune=False)
    on = run(dataset, spec, autotune=True)

    print("worker-pool trajectory (auto-tuner on):")
    times, counts = on.monitor.series("workers").as_arrays()
    for t, c in zip(times, counts):
        print(f"  t={t - on.started_at:7.2f}s  workers={int(c)}")

    print(f"\n{'':>14} {'tuner off':>12} {'tuner on':>12}")
    print(f"{'exec time (s)':>14} {off.exec_time:>12.1f} {on.exec_time:>12.1f}")
    print(f"{'cost ($)':>14} {off.total_cost:>12.5f} {on.total_cost:>12.5f}")
    print(
        f"{'Perf/$':>14} {off.perf_per_dollar:>12,.0f} "
        f"{on.perf_per_dollar:>12,.0f}"
    )
    print(
        f"\nPerf/$ gain: {on.perf_per_dollar / off.perf_per_dollar:.2f}x "
        f"(the paper reports 1.4x-1.6x, Fig. 5)"
    )


if __name__ == "__main__":
    main()
